//! Offline stand-in for `criterion`.
//!
//! Benchmarks keep their upstream shape (`criterion_group!` /
//! `criterion_main!`, groups, `bench_with_input`, `Bencher::iter`) but
//! the statistical machinery is replaced by a short wall-clock loop that
//! prints a mean per benchmark. Under `cargo test` (cargo passes
//! `--test` to `harness = false` bench binaries) each benchmark body
//! runs exactly once as a smoke test.

use std::fmt;
use std::time::Instant;

/// Returns `true` when cargo invoked the bench binary in test mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Accepts `&str`, `String`, or [`BenchmarkId`] wherever upstream does.
pub trait IntoBenchmarkId {
    /// Rendered identifier.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration from the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher), sample_size: usize) {
    let iters = if test_mode() { 1 } else { sample_size.max(1) as u64 };
    let mut bencher = Bencher { iters, last_mean_ns: 0.0 };
    f(&mut bencher);
    if test_mode() {
        println!("bench {label}: ok (smoke)");
    } else {
        println!("bench {label}: {:.1} ns/iter (n={iters})", bencher.last_mean_ns);
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_one(&label, f, self.sample_size);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_one(&label, |b| f(b, input), self.sample_size);
        self
    }

    /// Ends the group (reporting no-op here).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream CLI-arg hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 20, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into_text(), f, 20);
        self
    }
}

/// Declares a group function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("inc", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // 1 warm-up + 3 timed iterations.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("alg", 25).to_string(), "alg/25");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
