//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this container, so the derives walk
//! the raw [`proc_macro::TokenTree`] stream by hand and emit impl source
//! as strings. Supported shapes — which cover every derive site in the
//! workspace — are non-generic structs with named fields, unit structs,
//! and non-generic enums whose variants are unit, newtype, or
//! struct-like. Serde attributes (`#[serde(...)]`) are not supported and
//! the workspace uses none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item a derive was placed on.
enum Item {
    /// `struct Name;` — no payload.
    UnitStruct { name: String },
    /// `struct Name { fields }`.
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { variants }`.
    Enum { name: String, variants: Vec<Variant> },
}

enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, Vec<String>),
}

/// Consumes leading `#[...]` attributes (incl. doc comments) and
/// visibility modifiers from the token iterator.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Extracts named-field identifiers from a brace-group body, tracking
/// angle-bracket depth so commas inside `BTreeMap<K, V>` don't split
/// fields.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return fields;
        };
        fields.push(name.to_string());
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    match tokens.next() {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item::Struct { name, fields: parse_named_fields(body.stream()) }
            } else {
                Item::Enum { name, variants: parse_variants(body.stream()) }
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Item::UnitStruct { name }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "serde stub derive: generic type `{name}` is unsupported \
             (the offline serde stand-in only derives concrete types)"
        ),
        other => panic!("serde stub derive: unexpected token after `{name}`: {other:?}"),
    }
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return variants;
        };
        let name = name.to_string();
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let TokenTree::Group(g) = tokens.next().unwrap() else { unreachable!() };
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let TokenTree::Group(g) = tokens.next().unwrap() else { unreachable!() };
                let payload_fields = count_tuple_fields(g.stream());
                assert!(
                    payload_fields == 1,
                    "serde stub derive: variant `{name}` has {payload_fields} unnamed \
                     fields; only newtype variants are supported"
                );
                variants.push(Variant::Newtype(name));
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Consume the trailing comma between variants, if present.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in group {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n\
             }}"
        ),
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(vec![{entries}])\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),"
                    ),
                    Variant::Newtype(v) => format!(
                        "{name}::{v}(__inner) => ::serde::Content::Map(vec![\
                         (\"{v}\".to_string(), ::serde::Serialize::to_content(__inner))]),"
                    ),
                    Variant::Struct(v, fields) => {
                        let bindings = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), \
                                     ::serde::Serialize::to_content({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {bindings} }} => ::serde::Content::Map(vec![\
                             (\"{v}\".to_string(), \
                             ::serde::Content::Map(vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{ {arms} }}\n\
                 }}\n}}"
            )
        }
    };
    body.parse().expect("serde stub derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(_content: &::serde::Content) -> Result<Self, String> {{\n\
             Ok({name})\n\
             }}\n}}"
        ),
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         content.get(\"{f}\").unwrap_or(&::serde::Content::Null))\
                         .map_err(|e| format!(\"{name}.{f}: {{e}}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> Result<Self, String> {{\n\
                 match content {{\n\
                 ::serde::Content::Map(_) => Ok({name} {{ {inits} }}),\n\
                 other => Err(format!(\"expected map for {name}, got {{other:?}}\")),\n\
                 }}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!("\"{v}\" => Ok({name}::{v}),")),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(v) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(__inner)\
                         .map_err(|e| format!(\"{name}::{v}: {{e}}\"))?)),"
                    )),
                    Variant::Struct(v, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(\
                                     __inner.get(\"{f}\")\
                                     .unwrap_or(&::serde::Content::Null))\
                                     .map_err(|e| format!(\"{name}::{v}.{f}: {{e}}\"))?,"
                                )
                            })
                            .collect();
                        Some(format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),"))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> Result<Self, String> {{\n\
                 match content {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(format!(\"unknown variant {{other:?}} for {name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\n\
                 other => Err(format!(\"unknown variant {{other:?}} for {name}\")),\n\
                 }}\n\
                 }},\n\
                 other => Err(format!(\"expected enum value for {name}, got {{other:?}}\")),\n\
                 }}\n}}\n}}"
            )
        }
    };
    body.parse().expect("serde stub derive: generated Deserialize impl must parse")
}
