//! Offline stand-in for `serde`.
//!
//! The real crate cannot be fetched in this container, and the workspace
//! only ever uses serde through `#[derive(Serialize, Deserialize)]` (no
//! attributes, no hand-written impls) plus `serde_json::{to_string,
//! to_string_pretty, from_str, Value}`. That narrow usage lets the data
//! model collapse to a single content tree: serializers build a
//! [`Content`], deserializers read one back. `serde_json` (the sibling
//! stub) renders and parses `Content` as standard JSON, keeping the wire
//! format byte-compatible with upstream serde's externally-tagged enum
//! convention so previously generated artifacts under `results/` remain
//! parseable.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the whole data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Content>),
    /// Key-ordered map (JSON object; insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key; `None` for non-maps or missing keys.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Sequence element by index.
    pub fn index(&self, i: usize) -> Option<&Content> {
        match self {
            Content::Seq(items) => items.get(i),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly for the magnitudes this
    /// workspace serializes).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Types renderable into a [`Content`] tree.
pub trait Serialize {
    /// Builds the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting the first structural mismatch.
    fn from_content(content: &Content) -> Result<Self, String>;
}

/// Owned-deserialization alias used by generic bounds in the wild.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match *content {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($t))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($t))),
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as $t),
                    ref other => Err(format!("expected {}, got {other:?}", stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match *content {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($t))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($t))),
                    Content::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    ref other => Err(format!("expected {}, got {other:?}", stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, String> {
        content.as_f64().ok_or_else(|| format!("expected f64, got {content:?}"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, String> {
        content
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| format!("expected f32, got {content:?}"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, got {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::Seq(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(format!(
                                "expected {expect}-tuple, got {} elements", items.len()
                            ));
                        }
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    other => Err(format!("expected tuple sequence, got {other:?}")),
                }
            }
        }
    )+};
}

impl_serde_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<K: ToString + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key =
                        k.parse().map_err(|_| format!("unparseable map key {k:?}"))?;
                    Ok((key, V::from_content(v)?))
                })
                .collect(),
            other => Err(format!("expected map, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        assert_eq!(Vec::<(usize, usize)>::from_content(&v.to_content()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_content(&o.to_content()), Ok(None));
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_content(&300u32.to_content()).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }
}
