//! Offline stand-in for `crossbeam`: just the scoped-thread entry point
//! this workspace uses, implemented over `std::thread::scope` (std's
//! scoped threads post-date crossbeam's API, which is why older code
//! reaches for the crate). Matching crossbeam, `scope` returns `Err`
//! instead of panicking when a spawned thread panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle for spawning threads that may borrow from the enclosing scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

// Manual impls: derive would bound them on the lifetimes' variance.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle
    /// (crossbeam convention) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope handle, joining every spawned thread before
/// returning. A panic in any thread (or in `f` itself) surfaces as
/// `Err` carrying the panic payload.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|inner| f(&Scope { inner }))
    }))
}

/// Compatibility alias: real crossbeam exposes this under
/// `crossbeam::thread::scope` as well.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }
}
