//! Offline stand-in for the `rand` crate.
//!
//! This container has no network access and no crates.io cache, so the real
//! `rand` cannot be fetched. This crate re-implements exactly the API subset
//! the workspace uses — `RngCore`, `SeedableRng` (with `seed_from_u64`),
//! the `Rng` extension trait (`random`, `random_range`, `random_bool`) and
//! `rngs::StdRng` — over a xoshiro256++ generator. Statistical quality is
//! comparable to the real `StdRng` for simulation purposes; streams are of
//! course different, so seeded results differ from runs made against the
//! upstream crate (but remain bit-reproducible per seed within this repo).

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme the
    /// real crate uses, so small seeds still decorrelate).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly from raw bits (the `StandardUniform`
/// distribution of the real crate, folded into one trait).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
    i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
    usize => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// 128-bit multiply-shift bounded sampling (Lemire, without the rejection
// loop — the residual bias is ≤ 2⁻⁶⁴, irrelevant for simulations).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = f64::draw(rng);
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// One uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random::<f64>() < p
    }

    /// Legacy 0.8 spelling of [`random`](Rng::random).
    fn r#gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Legacy 0.8 spelling of [`random_range`](Rng::random_range).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's stand-in for the real `StdRng`.
    /// Fast, 256-bit state, passes BigCrush; streams differ from upstream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A xoshiro all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias — the workspace never relies on `SmallRng`'s distinct stream.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..7u32);
            assert!((3..7).contains(&v));
            let w = rng.random_range(0..=4u64);
            assert!(w <= 4);
            let f = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.random_range(0..5usize);
            assert!(s < 5);
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
