//! Offline stand-in for `rayon`.
//!
//! Implements the subset the workspace uses — [`scope`], [`join`],
//! [`current_num_threads`], and `par_iter().map(..).collect::<Vec<_>>()`
//! via [`prelude`] — on a **persistent global thread pool** so fine-grained
//! fork-join calls do not pay a thread-spawn per invocation.
//!
//! Differences from upstream: no work stealing between arbitrary scopes
//! (instead, a thread blocked in [`scope`] drains the global queue while it
//! waits, which keeps nested scopes deadlock-free); chunking is contiguous
//! and deterministic. Thread count comes from `RAYON_NUM_THREADS` or
//! `std::thread::available_parallelism`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

struct Pool {
    state: Arc<PoolState>,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn configured_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        // One worker per logical CPU; the scope owner also executes jobs
        // while it waits, so even `threads == 1` makes progress.
        for _ in 0..threads.saturating_sub(1) {
            let state = Arc::clone(&state);
            std::thread::spawn(move || loop {
                let job = {
                    let mut queue = state.queue.lock().expect("pool queue poisoned");
                    loop {
                        if let Some(job) = queue.pop_front() {
                            break job;
                        }
                        queue = state
                            .work_ready
                            .wait(queue)
                            .expect("pool queue poisoned");
                    }
                };
                job();
            });
        }
        Pool { state, threads }
    })
}

/// Number of threads the pool schedules onto.
pub fn current_num_threads() -> usize {
    pool().threads
}

/// A fork-join scope: closures spawned on it may borrow from the enclosing
/// stack frame; [`scope`] does not return until every spawned task has
/// finished.
pub struct Scope<'env> {
    pending: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
    _marker: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns a task on the global pool.
    ///
    /// Matching rayon's API shape, the closure receives the scope handle
    /// (unused by simple fork-join callers).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let pending = Arc::clone(&self.pending);
        let panicked = Arc::clone(&self.panicked);
        let scope = Scope {
            pending: Arc::clone(&self.pending),
            panicked: Arc::clone(&self.panicked),
            _marker: std::marker::PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(|| f(&scope))).is_err() {
                panicked.store(true, Ordering::SeqCst);
            }
            pending.fetch_sub(1, Ordering::SeqCst);
        });
        // SAFETY: `scope` blocks until `pending` reaches zero, i.e. until
        // this job has run to completion, so every borrow inside the
        // closure outlives its use. The lifetime is erased only to store
        // the job in the 'static pool queue.
        let job: Job = unsafe { std::mem::transmute(job) };
        let state = &pool().state;
        state
            .queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        state.work_ready.notify_one();
    }
}

/// Runs `f` with a scope handle and blocks until every task spawned on the
/// scope has completed. While blocked, the calling thread executes queued
/// jobs itself, so nested scopes cannot deadlock the pool. Panics if any
/// task panicked.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        pending: Arc::new(AtomicUsize::new(0)),
        panicked: Arc::new(AtomicBool::new(false)),
        _marker: std::marker::PhantomData,
    };
    let result = f(&scope);
    // Drain: run queued jobs inline until our tasks are all done. The jobs
    // we execute may belong to other scopes — that only helps them finish.
    let state = &pool().state;
    while scope.pending.load(Ordering::SeqCst) != 0 {
        let job = state
            .queue
            .lock()
            .expect("pool queue poisoned")
            .pop_front();
        match job {
            Some(job) => job(),
            // Our tasks are in flight on workers: poll cheaply rather than
            // spin (a stub-grade stand-in for rayon's completion latch).
            None => std::thread::sleep(std::time::Duration::from_micros(50)),
        }
    }
    assert!(
        !scope.panicked.load(Ordering::SeqCst),
        "a rayon task panicked"
    );
    result
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("join closure completed"))
}

pub mod iter {
    //! The `ParallelIterator` subset: `par_iter().map(f).collect::<Vec<_>>()`.

    use super::scope;

    /// Types whose references can be iterated in parallel.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator.
        type Iter;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<'data, T>;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<'data, T>;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each item through `f`.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Collects into a container, preserving input order regardless of
        /// execution interleaving.
        pub fn collect<C, R>(self) -> C
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
            C: FromParallelIterator<R>,
        {
            let threads = super::current_num_threads();
            let n = self.items.len();
            if n == 0 {
                return C::from_ordered(Vec::new());
            }
            let chunks = threads.min(n).max(1);
            let chunk_len = n.div_ceil(chunks);
            let mut results: Vec<Vec<R>> = (0..chunks).map(|_| Vec::new()).collect();
            let f = &self.f;
            scope(|s| {
                for (slot, chunk) in results.iter_mut().zip(self.items.chunks(chunk_len)) {
                    s.spawn(move |_| *slot = chunk.iter().map(f).collect());
                }
            });
            C::from_ordered(results.into_iter().flatten().collect())
        }
    }

    /// Collection target for [`ParMap::collect`].
    pub trait FromParallelIterator<R> {
        /// Builds the container from items already in input order.
        fn from_ordered(items: Vec<R>) -> Self;
    }

    impl<R> FromParallelIterator<R> for Vec<R> {
        fn from_ordered(items: Vec<R>) -> Self {
            items
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching upstream.
    pub use crate::iter::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_scopes_complete() {
        let outer: Vec<usize> = (0..8usize).collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..50usize).collect::<Vec<_>>()
                    .par_iter()
                    .map(|&j| i * 100 + j)
                    .collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0..8).map(|i| (0..50).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(outer, expect);
    }

    #[test]
    fn scoped_borrow_is_visible_after_scope() {
        let mut out = vec![0usize; 4];
        super::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn task_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            })
        });
        assert!(result.is_err());
    }
}
