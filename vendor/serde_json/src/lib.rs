//! Offline stand-in for `serde_json`: renders and parses the serde
//! stub's [`Content`] tree as standard JSON (externally-tagged enums,
//! `null` for `Option::None`), so artifacts written by either the real
//! crate or this one stay interchangeable for the shapes the workspace
//! serializes.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Parse or structure error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding of any [`Serialize`] value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Two-space-indented JSON encoding.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_content(&content).map_err(Error)
}

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Integral floats keep a `.0` marker, matching upstream output.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&v.to_string());
        }
    } else {
        // JSON has no NaN/Inf; upstream writes null here too.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{literal}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Content::Null),
            Some(b't') => self.eat_literal("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this repo's data.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| Content::I64(-(v as i64)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

/// Dynamically-typed JSON value supporting `value["key"][0]` chains and
/// numeric comparisons, as used by the workspace's table tests.
///
/// `repr(transparent)` licenses the `&Content → &Value` reborrow in the
/// `Index` impls below.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(pub Content);

static NULL_VALUE: Value = Value(Content::Null);

impl Value {
    /// Numeric view of the underlying content.
    pub fn as_f64(&self) -> Option<f64> {
        self.0.as_f64()
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array length, if this is an array.
    pub fn as_array_len(&self) -> Option<usize> {
        match &self.0 {
            Content::Seq(items) => Some(items.len()),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, String> {
        Ok(Value(content.clone()))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self.0.get(key) {
            // SAFETY: Value is repr(transparent) over Content.
            Some(content) => unsafe { &*(content as *const Content as *const Value) },
            None => &NULL_VALUE,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self.0.index(i) {
            Some(content) => unsafe { &*(content as *const Content as *const Value) },
            None => &NULL_VALUE,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self.0, Content::U64(v) if v == *other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&self.0, &mut out, None, 0);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_typed_values() {
        let v = vec![(1usize, 2.5f64), (3, 4.0)];
        let text = to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_indexing_matches_table_test_usage() {
        let v: Value = from_str(r#"{"alg":[{"mean":10.0},{"mean":11.5}]}"#).unwrap();
        assert_eq!(v["alg"][0]["mean"], 10.0);
        assert_eq!(v["alg"][1]["mean"], 11.5);
        assert_eq!(v["missing"][7], Value(Content::Null));
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tünïcode".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn negative_and_float_numbers_parse() {
        let xs: Vec<i64> = from_str("[-3, 0, 9]").unwrap();
        assert_eq!(xs, vec![-3, 0, 9]);
        let f: f64 = from_str("2.5e2").unwrap();
        assert_eq!(f, 250.0);
    }
}
