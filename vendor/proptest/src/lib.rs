//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `prop_map` /
//! `prop_flat_map`, `collection::{vec, btree_set}`, and the `ANY`
//! constants under `num::*` / `bool`. Differences from upstream: cases
//! are drawn from a fixed per-test seed (deterministic across runs,
//! overridable via `PROPTEST_SEED`), and failing inputs are reported but
//! **not shrunk**.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates one value per test case from a seeded RNG.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Post-processes generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform draw over a type's full domain (`num::u64::ANY` etc.).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyValue<T>(pub std::marker::PhantomData<T>);

    impl<T: rand::Standard> Strategy for AnyValue<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident $idx:tt),+)),+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A 0),
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4),
        (A 0, B 1, C 2, D 3, E 4, F 5)
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start) }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end().saturating_add(1) }
        }
    }

    /// `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values drawn from `element`. Duplicate draws
    /// collapse, so the realized size may fall below the target (same
    /// caveat as upstream).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`BTreeSetStrategy`].
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! any_modules {
    ($($mod_name:ident => $t:ty),+ $(,)?) => {$(
        pub mod $mod_name {
            //! `ANY` strategy for this primitive.

            /// Uniform draw over the full domain.
            pub const ANY: crate::strategy::AnyValue<$t> =
                crate::strategy::AnyValue(std::marker::PhantomData);
        }
    )+};
}

pub mod num {
    //! Numeric `ANY` strategies, one submodule per primitive.

    any_modules!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize,
        f32 => f32, f64 => f64,
    );
}

any_modules!(bool => bool);

pub mod test_runner {
    //! Case-count configuration and failure plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Upstream-compatible alias of [`fail`](Self::fail).
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Applies the `PROPTEST_CASES` env override, as upstream does.
    pub fn resolve_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
            .max(1)
    }

    /// Deterministic per-test RNG: FNV-1a of the test path, XORed with
    /// an optional `PROPTEST_SEED` override so reruns can explore new
    /// inputs without code changes.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let user: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        StdRng::seed_from_u64(hash ^ user)
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly at the use
/// site, matching upstream convention) that runs the body over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion worker for [`proptest!`] — one fn per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)) => {};
    (@config($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let mut rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                );
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n(no shrinking in the \
                         offline proptest stand-in; rerun with PROPTEST_SEED \
                         to vary inputs)",
                        case + 1,
                        cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
}

/// Asserts within a proptest body, failing the case (not the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), f in -1.0..1.0f64) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0usize..50, 3..7),
            s in crate::collection::btree_set(crate::num::u64::ANY, 0..10),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn maps_compose(x in (1usize..4).prop_map(|n| n * 2)) {
            prop_assert!(x == 2 || x == 4 || x == 6);
        }

        #[test]
        fn flat_maps_chain(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            let n = v.len();
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn failures_panic_with_case_context() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]

                #[allow(dead_code)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
