//! Offline stand-in for `parking_lot`: std locks behind parking_lot's
//! poison-free signatures (`lock()` returns the guard directly). Slower
//! than the real crate under contention, identical semantics for this
//! workspace's coarse-grained result collection.

/// Mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Reader-writer lock with parking_lot's poison-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared acquire.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Exclusive acquire.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die while holding");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
