//! Offline stand-in for `rand_chacha`: a genuine ChaCha block function
//! behind the workspace's `rand` stub traits. Output streams differ from
//! the upstream crate (different word ordering conventions), but the
//! generator is a real ChaCha — per-seed reproducibility and statistical
//! quality hold.

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key + constants + counter + nonce, per the ChaCha layout.
    state: [u32; 16],
    /// Current 64-byte block, as 16 output words.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    word: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // words 12..13: 64-bit block counter; 14..15: nonce (zero).
        ChaChaCore { state, block: [0; 16], word: 16 }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(self.state[i]);
        }
        // Increment the 64-bit counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(ChaChaCore<$rounds>);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_word()
            }
            fn next_u64(&mut self) -> u64 {
                let lo = self.0.next_word() as u64;
                let hi = self.0.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                $name(ChaChaCore::from_seed_bytes(seed))
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_seed_reproducible_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_ietf_test_vector_block_one() {
        // RFC 8439 §2.3.2 uses a nonzero nonce, which this wrapper fixes at
        // zero; instead sanity-check uniformity and the trait plumbing.
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        let mean: f64 =
            (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
