//! Quickstart: build a deployment, run every one-shot scheduler, then run a
//! full covering schedule — the 60-second tour of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rfid_core::{
    covering_schedule_with, AlgorithmKind, McsOptions, OneShotInput, SchedulerRegistry,
};
use rfid_examples::{describe_activation, describe_deployment};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet};
use rfid_obs::Recorder;

fn main() {
    // 1. A reproducible random deployment: 30 readers, 500 tags, Poisson
    //    radii with means λ_R = 12 and λ_r = 6 (the paper's general model —
    //    every reader gets its own interference/interrogation range).
    let scenario = Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 30,
        n_tags: 500,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 12.0,
            lambda_interrogation: 6.0,
        },
    };
    let deployment = scenario.generate(7);

    // 2. Derived structures: who can read what, who jams whom.
    let coverage = Coverage::build(&deployment);
    let graph = interference_graph(&deployment);
    describe_deployment(&deployment, &graph);

    // 3. One-shot scheduling: pick a feasible set of readers for a single
    //    time slot, maximising the number of well-covered tags. The
    //    registry maps algorithm names to constructors; the builder
    //    assembles the scheduler input.
    let registry = SchedulerRegistry::global();
    let unread = TagSet::all_unread(deployment.n_tags());
    let input = OneShotInput::builder(&deployment, &coverage, &graph)
        .unread(&unread)
        .build();
    // The exact solver is exponential — skip it beyond toy sizes.
    let lineup = || {
        registry
            .entries()
            .iter()
            .filter(|e| e.kind != AlgorithmKind::Exact)
    };
    println!("\none-shot schedules (fresh tag population):");
    for entry in lineup() {
        let mut scheduler = registry.instantiate(entry.kind, 1);
        let set = scheduler.schedule(&input);
        assert!(
            deployment.is_feasible(&set),
            "schedulers must avoid reader-tag collisions"
        );
        describe_activation(&input, entry.label, &set);
    }

    // 4. Covering schedule: iterate one-shot slots until every coverable
    //    tag has been read (the paper's MCS problem). A `Recorder`
    //    subscriber observes the run without changing the schedule.
    println!("\ncovering schedules (slots to read everything):");
    for entry in lineup() {
        let mut scheduler = registry.instantiate(entry.kind, 1);
        let recorder = Recorder::new();
        let run = covering_schedule_with(
            &deployment,
            &coverage,
            &graph,
            scheduler.as_mut(),
            &McsOptions::new().max_slots(100_000).subscriber(&recorder),
        )
        .expect("strict covering schedule diverged");
        let schedule = run.schedule;
        let snapshot = recorder.snapshot();
        println!(
            "  {:<18} {:>3} slots, {} tags served, {} unreachable, {} fallback slots observed",
            entry.label,
            schedule.size(),
            schedule.tags_served(),
            schedule.uncoverable.len(),
            snapshot.counter("mcs.fallback_slots"),
        );
    }
}
