//! Mobile readers — the dynamism that motivates the paper's location-free
//! algorithms ("the position of each reader is often highly dynamic").
//!
//! Eight short-range handheld readers sweep a 100×100 floor. A static
//! schedule can only ever serve the tags inside the initial interrogation
//! footprint; with movement, the same schedulers drain the whole floor.
//! The example also drops an SVG snapshot of the first epoch's activation
//! into `results/mobile_epoch0.svg`.
//!
//! ```text
//! cargo run --release --example mobile_readers
//! ```

use rfid_core::{make_scheduler, AlgorithmKind, OneShotInput};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet, WeightEvaluator};
use rfid_sim::{render_svg, MobilityModel, MobilitySim, RenderOptions};

fn main() {
    let scenario = Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 8,
        n_tags: 400,
        region_side: 100.0,
        radius_model: RadiusModel::Fixed {
            interference: 14.0,
            interrogation: 9.0,
        },
    };
    let initial = scenario.generate(11);
    let static_coverable = Coverage::build(&initial).coverable_count();
    println!(
        "floor: {} tags, 8 mobile readers; static footprint covers only {static_coverable} tags\n",
        initial.n_tags()
    );

    println!("| algorithm | model | epochs run | tags served | left unread |");
    println!("|---|---|---|---|---|");
    for kind in [
        AlgorithmKind::LocalGreedy,
        AlgorithmKind::Distributed,
        AlgorithmKind::HillClimbing,
    ] {
        for (name, model) in [
            ("waypoint v=8", MobilityModel::RandomWaypoint { speed: 8.0 }),
            ("walk σ=5", MobilityModel::RandomWalk { sigma: 5.0 }),
        ] {
            let sim = MobilitySim {
                initial: initial.clone(),
                model,
                slots_per_epoch: 2,
                max_epochs: 150,
                seed: 4,
            };
            let mut scheduler = make_scheduler(kind, 0);
            let report = sim.run(scheduler.as_mut());
            println!(
                "| {} | {name} | {} | {} | {} |",
                kind.label(),
                report.epochs.len(),
                report.total_served,
                report.remaining_unread
            );
        }
    }

    // Snapshot of epoch 0 under Algorithm 2.
    let coverage = Coverage::build(&initial);
    let graph = interference_graph(&initial);
    let unread = TagSet::all_unread(initial.n_tags());
    let input = OneShotInput::new(&initial, &coverage, &graph, &unread);
    let active = make_scheduler(AlgorithmKind::LocalGreedy, 0).schedule(&input);
    let served = WeightEvaluator::new(&coverage).well_covered(&active, &unread);
    let svg = render_svg(
        &initial,
        &coverage,
        &active,
        &served,
        &RenderOptions::default(),
    );
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/mobile_epoch0.svg", svg).expect("write svg");
    println!("\nwrote results/mobile_epoch0.svg (epoch-0 activation snapshot)");
    println!("every tag the static footprint misses is eventually served once readers move.");
}
