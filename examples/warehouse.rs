//! Warehouse dock scenario — the use case the paper's introduction
//! motivates ("supermarket or post office… multiple RFID readers in a given
//! region").
//!
//! Tags arrive clustered on pallets rather than uniformly; readers are
//! installed on a lattice. The example runs the full audited system
//! simulation (collision audit every slot + framed-ALOHA link layer inside
//! every slot) and reports how long the dock takes to inventory, both in
//! schedule slots and in link-layer micro-slots.
//!
//! ```text
//! cargo run --release --example warehouse
//! ```

use rfid_core::{make_scheduler, AlgorithmKind};
use rfid_model::{RadiusModel, Scenario, ScenarioKind};
use rfid_sim::{LinkLayer, SlotSimulator};

fn main() {
    // A 60×60 m dock: 16 ceiling readers on a lattice, 800 tags piled on
    // 6 pallet clusters.
    let scenario = Scenario {
        kind: ScenarioKind::ClusteredTags {
            clusters: 6,
            sigma: 4.0,
        },
        n_readers: 16,
        n_tags: 800,
        region_side: 60.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 8.0,
        },
    };
    println!("warehouse dock inventory — clustered tags, lattice-adjacent readers\n");
    println!(
        "| algorithm | slots | tags read | worst µ-slots/slot | total µ-slots | fallback slots |"
    );
    println!("|---|---|---|---|---|---|");
    for kind in AlgorithmKind::paper_lineup() {
        // Average over a few mornings (seeds).
        let mut slots = 0usize;
        let mut tags = 0usize;
        let mut worst = 0u64;
        let mut total_micro = 0u64;
        let mut fallbacks = 0usize;
        const MORNINGS: u64 = 5;
        for seed in 0..MORNINGS {
            let deployment = scenario.generate(seed);
            let mut sim = SlotSimulator::new(&deployment);
            sim.link_layer = LinkLayer::Aloha;
            sim.seed = seed;
            let mut scheduler = make_scheduler(kind, seed);
            let report = sim.run(scheduler.as_mut());
            assert!(
                report.link_layer_complete,
                "ALOHA must identify every well-covered tag"
            );
            slots += report.schedule.size();
            tags += report.schedule.tags_served();
            worst = worst.max(report.max_microslots_per_slot);
            total_micro += report.total_microslots;
            fallbacks += report.schedule.fallback_slots();
        }
        println!(
            "| {} | {:.1} | {:.0} | {} | {:.0} | {:.1} |",
            kind.label(),
            slots as f64 / MORNINGS as f64,
            tags as f64 / MORNINGS as f64,
            worst,
            total_micro as f64 / MORNINGS as f64,
            fallbacks as f64 / MORNINGS as f64,
        );
    }
    println!(
        "\nworst µ-slots/slot is the real slot length the paper's \"each active reader\n\
         reads ≥ 1 tag per slot\" assumption requires from the link layer."
    );
}
