//! Distributed scheduling demo — Algorithm 3 on the message-passing
//! substrate, with communication-cost accounting.
//!
//! Shows what "no central entity" costs: the same deployment is scheduled
//! by the centralized Algorithm 2 and by the distributed Algorithm 3 for
//! several values of the locality parameter `c`, reporting weight, rounds,
//! messages and bytes.
//!
//! ```text
//! cargo run --release --example distributed_demo
//! ```

use rfid_core::{DistributedScheduler, LocalGreedy, OneShotInput, OneShotScheduler};
use rfid_examples::describe_deployment;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet};

fn main() {
    let scenario = Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 50,
        n_tags: 1200,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    };
    let deployment = scenario.generate(2026);
    let coverage = Coverage::build(&deployment);
    let graph = interference_graph(&deployment);
    describe_deployment(&deployment, &graph);
    let unread = TagSet::all_unread(deployment.n_tags());
    let input = OneShotInput::new(&deployment, &coverage, &graph, &unread);

    // Centralized reference point (same ρ).
    let rho = 1.1;
    let central = LocalGreedy::new(rho, 4).schedule(&input);
    println!(
        "\ncentralized Algorithm 2 (ρ = {rho}): {} readers active, w = {}\n",
        central.len(),
        input.weight_of(&central)
    );

    println!("distributed Algorithm 3 (ρ = {rho}), varying locality c:");
    println!("| c | gather hops (2c+2) | active readers | w(X) | rounds | messages | bytes |");
    println!("|---|---|---|---|---|---|---|");
    for c in 1..=4u32 {
        let mut scheduler = DistributedScheduler::with_params(rho, c);
        let set = scheduler.schedule(&input);
        assert!(deployment.is_feasible(&set));
        let stats = scheduler.last_stats.expect("stats recorded");
        println!(
            "| {c} | {} | {} | {} | {} | {} | {} |",
            2 * c + 2,
            set.len(),
            input.weight_of(&set),
            stats.rounds,
            stats.messages,
            stats.bytes
        );
    }
    println!(
        "\neach reader only ever talks to interference-graph neighbours; a larger c\n\
         widens the gathered neighbourhood (better coordination, more traffic)."
    );
}
