//! Link-layer protocol stack comparison — the substrate below the
//! scheduler.
//!
//! The paper assumes tag–tag collisions are "successfully resolved through
//! certain link-layered protocol i.e., framed Aloha or tree-splitting".
//! This example measures those protocols head-to-head on growing tag
//! populations: micro-slots per identified tag, throughput, and time to
//! the *first* read (the quantity the paper's slot-sizing assumption
//! depends on).
//!
//! ```text
//! cargo run --release --example protocol_stack
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_protocols::{AntiCollisionProtocol, FramedAloha, QProtocol, TreeWalking};

fn main() {
    let populations = [1usize, 5, 20, 50, 100, 250, 500];
    const TRIALS: u64 = 10;

    println!("tag anti-collision protocols: micro-slots per tag (mean over {TRIALS} trials)\n");
    println!(
        "| tags | aloha (adaptive) | aloha (fixed 16) | tree-walking | gen2-q | first-read worst |"
    );
    println!("|---|---|---|---|---|---|");
    for &n in &populations {
        let tags: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let adaptive = FramedAloha::default();
        let fixed = FramedAloha {
            adaptive: false,
            ..Default::default()
        };
        let tree = TreeWalking::default();
        let q = QProtocol::default();
        let mut sums = [0.0f64; 4];
        let mut resolved = [true; 4];
        let mut first_worst = 0u64;
        for seed in 0..TRIALS {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let outcomes = [
                adaptive.inventory(&tags, &mut rng),
                fixed.inventory(&tags, &mut rng),
                tree.inventory(&tags, &mut rng),
                q.inventory(&tags, &mut rng),
            ];
            for (i, o) in outcomes.iter().enumerate() {
                // A fixed 16-slot frame genuinely starves on hundreds of
                // tags (singleton probability ≈ 0) — report DNF rather
                // than pretend; the adaptive protocols must always finish.
                resolved[i] &= o.unresolved.is_empty();
                sums[i] += o.total_slots as f64 / n as f64;
                if let Some(f) = o.slots_to_first_read() {
                    first_worst = first_worst.max(f);
                }
            }
        }
        assert!(
            resolved[0] && resolved[2] && resolved[3],
            "adaptive protocols must finish"
        );
        let cell = |i: usize| {
            if resolved[i] {
                format!("{:.2}", sums[i] / TRIALS as f64)
            } else {
                "DNF".into()
            }
        };
        println!(
            "| {n} | {} | {} | {} | {} | {first_worst} |",
            cell(0),
            cell(1),
            cell(2),
            cell(3),
        );
    }
    println!(
        "\nframed ALOHA peaks near the theoretical 1/e ≈ 0.37 tags per micro-slot\n\
         (≈ 2.7 µ-slots per tag); tree-walking pays for adjacent IDs but is fully\n\
         deterministic. \"first-read worst\" bounds how early in a slot the paper's\n\
         ≥ 1-tag guarantee kicks in."
    );
}
