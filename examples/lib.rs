//! Shared helpers for the runnable examples.
//!
//! Each example is a standalone binary (`cargo run --example <name>`); this
//! tiny library only hosts the pretty-printing they share.

use rfid_core::OneShotInput;
use rfid_model::{Deployment, ReaderId};

/// Prints a one-line summary of an activation set.
pub fn describe_activation(input: &OneShotInput<'_>, name: &str, set: &[ReaderId]) {
    println!(
        "  {name:<18} activates {:>2} readers, w(X) = {:>4}  {:?}",
        set.len(),
        input.weight_of(set),
        set
    );
}

/// Prints deployment-level statistics.
pub fn describe_deployment(d: &Deployment, graph: &rfid_graph::Csr) {
    let mean_interference: f64 =
        d.interference_radii().iter().sum::<f64>() / d.n_readers().max(1) as f64;
    let mean_interrogation: f64 =
        d.interrogation_radii().iter().sum::<f64>() / d.n_readers().max(1) as f64;
    println!(
        "deployment: {} readers, {} tags, region {:.0}×{:.0}, mean R = {mean_interference:.1}, mean r = {mean_interrogation:.1}, |E| = {}",
        d.n_readers(),
        d.n_tags(),
        d.region().width(),
        d.region().height(),
        graph.m(),
    );
}
