//! Imperfect RF site surveys — what happens when the interference graph
//! the location-free algorithms depend on is *measured wrong*.
//!
//! The paper's Algorithms 2/3 assume the interference graph "can be done by
//! a RF site survey using a localization device and radio signal strength
//! measurement device". This example corrupts the survey with controlled
//! false-negative (missed edge) and false-positive (phantom edge) rates and
//! audits the scheduled activations against the *true* collision model:
//! phantom edges only cost concurrency, missed edges cause real
//! reader–tag collisions at run time.
//!
//! ```text
//! cargo run --release --example site_survey
//! ```

use rfid_core::{LocalGreedy, OneShotInput, OneShotScheduler};
use rfid_model::{
    audit_activation, survey_impact, surveyed_interference_graph, Coverage, RadiusModel, Scenario,
    ScenarioKind, SurveyError, TagSet,
};

fn main() {
    let scenario = Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 50,
        n_tags: 1200,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    };
    const TRIALS: u64 = 10;
    println!("Algorithm 2 driven by an imperfect site survey (mean over {TRIALS} deployments)\n");
    println!("| FN rate | FP rate | missed edges | phantom edges | jammed readers | well-covered (Def. 1) |");
    println!("|---|---|---|---|---|---|");
    for &(fn_rate, fp_rate) in &[
        (0.0, 0.0),
        (0.0, 0.2),
        (0.0, 0.5),
        (0.1, 0.0),
        (0.25, 0.0),
        (0.5, 0.0),
        (0.25, 0.25),
    ] {
        let mut missed = 0usize;
        let mut phantom = 0usize;
        let mut jammed = 0usize;
        let mut well_covered = 0usize;
        for seed in 0..TRIALS {
            let d = scenario.generate(seed);
            let c = Coverage::build(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let surveyed = surveyed_interference_graph(
                &d,
                SurveyError {
                    false_negative: fn_rate,
                    false_positive: fp_rate,
                },
                seed ^ 0xbeef,
            );
            let impact = survey_impact(&d, &surveyed);
            missed += impact.missed_edges;
            phantom += impact.phantom_edges;
            // The scheduler believes the surveyed graph…
            let input = OneShotInput::new(&d, &c, &surveyed, &unread);
            let set = LocalGreedy::default().schedule(&input);
            // …but physics follows the true model.
            let audit = audit_activation(&d, &c, &set, &unread);
            jammed += audit.jammed.len();
            well_covered += audit.well_covered.len();
        }
        let n = TRIALS as f64;
        println!(
            "| {fn_rate} | {fp_rate} | {:.1} | {:.1} | {:.1} | {:.0} |",
            missed as f64 / n,
            phantom as f64 / n,
            jammed as f64 / n,
            well_covered as f64 / n
        );
    }
    println!(
        "\nfalse positives only shrink the schedule (lost concurrency); false negatives\n\
         jam readers at run time — survey *recall* is the safety-critical axis."
    );
}
