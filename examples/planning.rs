//! Deployment planning — from tag survey to running schedule.
//!
//! The paper's predecessors assume readers are "carefully deployed in a
//! planned fashion". This example does the planning: survey where tags
//! accumulate, place a reader budget with greedy max-coverage, then run
//! the scheduling stack on the planned deployment and print the
//! reader-major timetable.
//!
//! ```text
//! cargo run --release --example planning
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_core::{make_scheduler, AlgorithmKind};
use rfid_geometry::sampling::{clustered_points, uniform_points};
use rfid_geometry::Rect;
use rfid_model::interference::interference_graph;
use rfid_model::{deployment_stats, Coverage, RadiusModel};
use rfid_sim::{coverage_fraction, greedy_placement, Timetable};

fn main() {
    // 1. The tag survey: goods pile up on five staging areas of a 100×100
    //    floor.
    let region = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let staging = uniform_points(&mut rng, 5, region);
    let tags = clustered_points(&mut rng, 600, region, &staging, 5.0);

    // 2. Plan 10 readers with greedy max-coverage.
    let model = RadiusModel::PoissonPair {
        lambda_interference: 14.0,
        lambda_interrogation: 8.0,
    };
    let planned = greedy_placement(region, &tags, 10, model, 42);
    println!(
        "planned 10 readers over 600 clustered tags → {:.1}% coverage",
        100.0 * coverage_fraction(&planned)
    );

    // 3. Structural statistics of the plan.
    let coverage = Coverage::build(&planned);
    let graph = interference_graph(&planned);
    let stats = deployment_stats(&planned, &coverage, &graph);
    println!(
        "mean coverage {:.2} readers/tag, overlap fraction {:.2}, mean interference degree {:.2}\n",
        stats.mean_coverage, stats.overlap_fraction, stats.mean_degree
    );

    // 4. Schedule it and print the reader timetable.
    let mut scheduler = make_scheduler(AlgorithmKind::LocalGreedy, 0);
    let schedule = rfid_core::covering_schedule_with(
        &planned,
        &coverage,
        &graph,
        scheduler.as_mut(),
        &rfid_core::McsOptions::new().max_slots(100_000),
    )
    .expect("strict covering schedule diverged")
    .schedule;
    println!(
        "covering schedule: {} slots, {} tags served, {} unreachable",
        schedule.size(),
        schedule.tags_served(),
        schedule.uncoverable.len()
    );
    let table = Timetable::build(&schedule, planned.n_readers());
    println!("\nreader timetable (█ = active):");
    print!("{}", table.render_text());
    println!(
        "\nmean duty cycle {:.2}; greedy placement concentrates coverage so a\n\
         handful of well-placed readers drain the floor in very few slots —\n\
         idle rows are readers whose tags a neighbour serves first.",
        table.mean_duty_cycle()
    );
    assert_eq!(
        rfid_core::verify_covering_schedule(&planned, &schedule),
        Ok(())
    );
}
