//! Fault-tolerance demo — Algorithm 3 under injected faults.
//!
//! Runs the distributed scheduler through three fault regimes from one
//! seeded [`FaultPlan`] description: lossy links (ack/retransmit recovery),
//! a crash of the heaviest reader (watchdog suspicion + re-election), and
//! a total blackout (every message lost) — then drives a full covering
//! schedule through the crash-tolerant slot loop.
//!
//! ```text
//! cargo run --release --example chaos_demo
//! ```

use rfid_core::{DistributedScheduler, OneShotInput, OneShotScheduler, TraceEvent};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet, WeightEvaluator};
use rfid_netsim::FaultPlan;
use rfid_sim::SlotSimulator;

fn main() {
    let scenario = Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 30,
        n_tags: 400,
        region_side: 60.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 12.0,
            lambda_interrogation: 6.0,
        },
    };
    let deployment = scenario.generate(7);
    let coverage = Coverage::build(&deployment);
    let graph = interference_graph(&deployment);
    let unread = TagSet::all_unread(deployment.n_tags());
    let input = OneShotInput::new(&deployment, &coverage, &graph, &unread);

    // Fault-free reference.
    let clean = DistributedScheduler::default().schedule(&input);
    println!(
        "fault-free Algorithm 3: {} active, w = {}\n",
        clean.len(),
        input.weight_of(&clean)
    );

    // The heaviest reader is the likely head — the worst one to lose.
    let mut weights = WeightEvaluator::new(&coverage);
    let heaviest = (0..deployment.n_readers())
        .max_by_key(|&v| (weights.singleton_weight(v, &unread), v))
        .expect("non-empty deployment");

    let regimes = [
        ("20% message loss", FaultPlan::seeded(1).with_loss(0.2)),
        (
            "heaviest reader crashes at round 1",
            FaultPlan::seeded(2).with_crash(heaviest, 1),
        ),
        (
            "total blackout (100% loss)",
            FaultPlan::seeded(3).with_loss(1.0),
        ),
    ];
    println!("| regime | active | w(X) | rounds | retransmits | crashed | suspected | quiescent |");
    println!("|---|---|---|---|---|---|---|---|");
    for (label, plan) in regimes {
        let mut s = DistributedScheduler::default().with_faults(plan);
        let set = s.schedule(&input);
        assert!(
            deployment.is_feasible(&set),
            "{label}: infeasible activation"
        );
        let stats = s.last_stats.expect("stats recorded");
        let summary = s.last_summary.expect("summary recorded");
        println!(
            "| {label} | {} | {} | {} | {} | {} | {} | {} |",
            set.len(),
            input.weight_of(&set),
            stats.rounds,
            stats.retransmits,
            summary.crashed,
            summary.suspected,
            summary.quiescent
        );
    }

    // The crash regime, replayed for its recovery trace.
    let mut s =
        DistributedScheduler::default().with_faults(FaultPlan::seeded(2).with_crash(heaviest, 1));
    let set = s.schedule(&input);
    assert!(!set.contains(&heaviest), "a crashed reader must stay dark");
    println!("\nrecovery trace around the crash of reader {heaviest}:");
    for (round, event) in s.last_trace.expect("trace recorded") {
        match event {
            TraceEvent::TimeoutSuspect { node, suspect } if suspect == heaviest as u32 => {
                println!("  round {round:>3}: reader {node} suspects {suspect} (watchdog)")
            }
            TraceEvent::ReElected { node, deposed } if deposed == heaviest as u32 => {
                println!("  round {round:>3}: reader {node} re-elected over {deposed}")
            }
            _ => {}
        }
    }

    // Full covering schedule through the crash-tolerant slot loop.
    let sim = SlotSimulator::new(&deployment);
    let plan = FaultPlan::seeded(5)
        .with_loss(0.15)
        .with_crash(heaviest, 3)
        .with_crash((heaviest + 1) % deployment.n_readers(), 8);
    let mut s = DistributedScheduler::default().with_faults(plan);
    let rep = sim.run_resilient(&mut s);
    println!(
        "\nresilient covering schedule under loss + two crashes:\n  \
         {} slots, {} tags served, {} abandoned (no surviving coverer),\n  \
         {} RTc pairs repaired in-slot, {} crashed activations stripped",
        rep.report.schedule.slots.len(),
        rep.report.schedule.tags_served(),
        rep.abandoned_tags.len(),
        rep.repaired_pairs,
        rep.crashed_dropped
    );
}
