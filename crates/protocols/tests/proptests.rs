//! Property-based tests for the link-layer anti-collision protocols.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_protocols::{AntiCollisionProtocol, FramedAloha, QProtocol, TreeWalking};

fn arb_tags(max: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(proptest::num::u64::ANY, 0..max)
        .prop_map(|s| s.into_iter().collect())
}

/// Checks the universal protocol contract on one outcome.
fn check_contract(
    tags: &[u64],
    outcome: &rfid_protocols::InventoryOutcome,
) -> Result<(), TestCaseError> {
    prop_assert!(outcome.is_consistent());
    // reads ∪ unresolved == input population, disjointly
    let mut seen: Vec<u64> = outcome
        .reads
        .iter()
        .map(|&(t, _)| t)
        .chain(outcome.unresolved.iter().copied())
        .collect();
    seen.sort_unstable();
    let mut expect = tags.to_vec();
    expect.sort_unstable();
    prop_assert_eq!(seen, expect);
    // read slots strictly increase
    prop_assert!(outcome.reads.windows(2).all(|w| w[0].1 < w[1].1));
    // slot indices within total
    if let Some(&(_, last)) = outcome.reads.last() {
        prop_assert!(last < outcome.total_slots);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn aloha_contract(tags in arb_tags(150), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let o = FramedAloha::default().inventory(&tags, &mut rng);
        check_contract(&tags, &o)?;
        prop_assert!(o.unresolved.is_empty(), "adaptive ALOHA must finish on ≤150 tags");
    }

    #[test]
    fn tree_walking_contract(tags in arb_tags(150), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let o = TreeWalking::default().inventory(&tags, &mut rng);
        check_contract(&tags, &o)?;
        prop_assert!(o.unresolved.is_empty(), "tree walking always terminates");
        // deterministic: rng must not matter
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
        let o2 = TreeWalking::default().inventory(&tags, &mut rng2);
        prop_assert_eq!(o, o2);
    }

    #[test]
    fn q_protocol_contract(tags in arb_tags(120), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let o = QProtocol::default().inventory(&tags, &mut rng);
        check_contract(&tags, &o)?;
        prop_assert!(o.unresolved.is_empty(), "Q protocol must finish on ≤120 tags");
    }

    #[test]
    fn tree_walking_cost_bound(tags in arb_tags(200)) {
        // TWA on b-bit ids costs at most 2n−1 collision+singleton queries
        // plus at most (b+1) extra splits per adjacent pair; a loose but
        // instructive bound: total ≤ 1 + n·(2·64).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let o = TreeWalking::default().inventory(&tags, &mut rng);
        let n = tags.len() as u64;
        prop_assert!(o.total_slots <= 1 + n * 130);
        // and at least one query per tag
        prop_assert!(o.total_slots >= n.max(1));
    }

    #[test]
    fn aloha_first_read_is_fast(tags in arb_tags(60), seed in 0u64..200) {
        // The paper's slot-sizing assumption wants an early first read;
        // adaptive ALOHA delivers one within a small number of frames.
        if tags.is_empty() {
            return Ok(());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let o = FramedAloha::default().inventory(&tags, &mut rng);
        let first = o.slots_to_first_read().expect("non-empty population reads something");
        prop_assert!(first < 16 * 20, "first read took {first} micro-slots");
    }

    #[test]
    fn protocols_agree_on_the_population(tags in arb_tags(80), seed in 0u64..100) {
        // Different protocols, same identified set.
        let mut ids_by_protocol: Vec<Vec<u64>> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for o in [
            FramedAloha::default().inventory(&tags, &mut rng),
            TreeWalking::default().inventory(&tags, &mut rng),
            QProtocol::default().inventory(&tags, &mut rng),
        ] {
            let mut ids: Vec<u64> = o.reads.iter().map(|&(t, _)| t).collect();
            ids.sort_unstable();
            ids_by_protocol.push(ids);
        }
        prop_assert_eq!(&ids_by_protocol[0], &ids_by_protocol[1]);
        prop_assert_eq!(&ids_by_protocol[1], &ids_by_protocol[2]);
    }
}
