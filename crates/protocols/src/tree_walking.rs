//! Binary tree-walking / tree-splitting arbitration (paper refs \[16\], \[18\]).
//!
//! The reader queries ID prefixes depth-first: all tags whose ID extends the
//! queried prefix respond. An idle slot prunes the subtree, a singleton
//! identifies a tag, a collision splits the prefix into its two children.
//! Memoryless (Law–Lee–Siu): tags only compare the broadcast prefix with
//! their own ID, no per-tag state survives between queries.
//!
//! Deterministic — arbitration cost depends only on the ID population,
//! which makes this the reference protocol for the slot-sizing analysis.

use crate::inventory::{AntiCollisionProtocol, InventoryOutcome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Binary tree-walking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeWalking {
    /// ID width in bits (EPC-96 truncated to 64 here; tag ids are `u64`).
    pub id_bits: u32,
}

impl Default for TreeWalking {
    fn default() -> Self {
        TreeWalking { id_bits: 64 }
    }
}

impl AntiCollisionProtocol for TreeWalking {
    fn name(&self) -> &'static str {
        "tree-walking"
    }

    fn inventory<R: Rng + ?Sized>(&self, tags: &[u64], _rng: &mut R) -> InventoryOutcome {
        assert!(
            self.id_bits >= 1 && self.id_bits <= 64,
            "id_bits must be in 1..=64"
        );
        if self.id_bits < 64 {
            let mask = (1u64 << self.id_bits) - 1;
            for &t in tags {
                assert!(t <= mask, "tag id {t} wider than {} bits", self.id_bits);
            }
        }
        let mut ids: Vec<u64> = tags.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tags.len(), "tag ids must be unique");

        let mut outcome = InventoryOutcome {
            total_slots: 0,
            collision_slots: 0,
            idle_slots: 0,
            singleton_slots: 0,
            reads: Vec::with_capacity(ids.len()),
            unresolved: Vec::new(),
        };
        // DFS over (prefix, prefix_len); sorted ids allow subtree membership
        // testing by binary search on the value range.
        let mut stack: Vec<(u64, u32)> = vec![(0, 0)];
        while let Some((prefix, len)) = stack.pop() {
            // Range of ids with this prefix: [prefix << (b-len), (prefix+1) << (b-len)).
            let shift = self.id_bits - len;
            let lo = if shift == 64 { 0 } else { prefix << shift };
            let hi_excl = if shift == 64 {
                u64::MAX
            } else {
                ((prefix + 1) << shift).wrapping_sub(1)
            };
            let start = ids.partition_point(|&x| x < lo);
            let end = ids.partition_point(|&x| x <= hi_excl);
            let count = end - start;
            let slot_idx = outcome.total_slots;
            outcome.total_slots += 1;
            match count {
                0 => outcome.idle_slots += 1,
                1 => {
                    outcome.singleton_slots += 1;
                    outcome.reads.push((ids[start], slot_idx));
                }
                _ => {
                    outcome.collision_slots += 1;
                    debug_assert!(
                        len < self.id_bits,
                        "distinct ids must split before leaf depth"
                    );
                    // Push right child first so the left (0-)branch is
                    // explored first, matching the classic TWA order.
                    stack.push(((prefix << 1) | 1, len + 1));
                    stack.push((prefix << 1, len + 1));
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(tags: &[u64]) -> InventoryOutcome {
        let mut rng = StdRng::seed_from_u64(0);
        TreeWalking::default().inventory(tags, &mut rng)
    }

    #[test]
    fn empty_population_costs_one_idle_query() {
        let o = run(&[]);
        assert_eq!(o.total_slots, 1);
        assert_eq!(o.idle_slots, 1);
        assert!(o.is_consistent());
    }

    #[test]
    fn single_tag_costs_one_query() {
        let o = run(&[42]);
        assert_eq!(o.total_slots, 1);
        assert_eq!(o.reads, vec![(42, 0)]);
    }

    #[test]
    fn two_distant_tags_split_once() {
        // MSB differs → root collision, then two singletons.
        let o = run(&[0, 1u64 << 63]);
        assert_eq!(o.collision_slots, 1);
        assert_eq!(o.singleton_slots, 2);
        assert_eq!(o.idle_slots, 0);
        assert_eq!(o.total_slots, 3);
        // Left branch (0-prefix) read first.
        assert_eq!(o.reads[0].0, 0);
    }

    #[test]
    fn adjacent_ids_walk_to_the_bottom() {
        // IDs differing only in the last bit force a full-depth walk:
        // 64 collisions (prefix lengths 0..=63) + 2 singletons.
        let o = run(&[6, 7]);
        assert_eq!(o.collision_slots, 64);
        assert_eq!(o.singleton_slots, 2);
        assert!(o.is_consistent());
    }

    #[test]
    fn all_tags_identified_in_sorted_order_of_bit_paths() {
        let population: Vec<u64> = vec![5, 9, 1 << 40, 3, (1 << 40) + 12345, 17];
        let o = run(&population);
        assert!(o.unresolved.is_empty());
        let read_ids: Vec<u64> = o.reads.iter().map(|&(t, _)| t).collect();
        let mut expect = population.clone();
        expect.sort_unstable();
        // DFS with left-first order reads ids in increasing numeric order.
        assert_eq!(read_ids, expect);
        assert!(o.is_consistent());
    }

    #[test]
    fn is_fully_deterministic() {
        let population: Vec<u64> = (0..200u64)
            .map(|i| i * i * 2654435761 % (1 << 48))
            .collect();
        let a = run(&population);
        let b = run(&population);
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_id_space_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = TreeWalking { id_bits: 8 };
        let population: Vec<u64> = (0..50u64)
            .map(|i| i * 5 % 256)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let o = p.inventory(&population, &mut rng);
        assert_eq!(o.reads.len(), population.len());
        assert!(o.is_consistent());
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let _ = run(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn oversized_id_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = TreeWalking { id_bits: 8 }.inventory(&[300], &mut rng);
    }

    #[test]
    fn query_cost_scales_linearithmically() {
        // For n random 64-bit ids, expected queries ≈ 2.89 n (classic TWA
        // result); assert we stay within a generous band.
        let mut rng = StdRng::seed_from_u64(7);
        let population: Vec<u64> = (0..400)
            .map(|_| rand::Rng::random::<u64>(&mut rng))
            .collect();
        let o = run(&population);
        let per_tag = o.total_slots as f64 / 400.0;
        assert!(
            per_tag > 1.5 && per_tag < 4.5,
            "queries per tag = {per_tag}"
        );
    }
}
