//! Common interface and outcome accounting for tag inventory rounds.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of arbitrating one reader's tag population.
///
/// Time is measured in *micro-slots* — single response opportunities — the
/// common currency across ALOHA frames, tree queries and Gen-2 slots. The
/// scheduler-level "time slot" of the paper corresponds to however many
/// micro-slots the link layer needs (see `slots_to_first_read` for the
/// paper's ≥1-tag-per-slot assumption).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InventoryOutcome {
    /// Total micro-slots consumed until every tag was identified (or the
    /// protocol gave up; see `unresolved`).
    pub total_slots: u64,
    /// Micro-slots in which two or more tags collided.
    pub collision_slots: u64,
    /// Micro-slots in which no tag answered.
    pub idle_slots: u64,
    /// Micro-slots with exactly one responder (successful reads).
    pub singleton_slots: u64,
    /// Identified tags in read order, paired with the micro-slot index of
    /// their read.
    pub reads: Vec<(u64, u64)>,
    /// Tags left unidentified when the protocol hit its internal budget
    /// (empty in normal operation).
    pub unresolved: Vec<u64>,
}

impl InventoryOutcome {
    /// Micro-slot index of the first successful read, if any — the quantity
    /// behind the paper's slot-sizing assumption.
    pub fn slots_to_first_read(&self) -> Option<u64> {
        self.reads.first().map(|&(_, s)| s)
    }

    /// Throughput: identified tags per micro-slot.
    pub fn throughput(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.reads.len() as f64 / self.total_slots as f64
        }
    }

    /// Internal consistency: slot categories partition the total, reads are
    /// unique, reads + unresolved cover the input population (checked by
    /// callers in tests).
    pub fn is_consistent(&self) -> bool {
        if self.collision_slots + self.idle_slots + self.singleton_slots != self.total_slots {
            return false;
        }
        if self.singleton_slots as usize != self.reads.len() {
            return false;
        }
        let mut ids: Vec<u64> = self.reads.iter().map(|&(t, _)| t).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len() == self.reads.len()
    }
}

/// A tag anti-collision (inventory) protocol.
///
/// ```
/// use rand::SeedableRng;
/// use rfid_protocols::{AntiCollisionProtocol, FramedAloha};
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let outcome = FramedAloha::default().inventory(&[10, 20, 30], &mut rng);
/// assert_eq!(outcome.reads.len(), 3); // every tag identified
/// assert!(outcome.is_consistent());
/// ```
pub trait AntiCollisionProtocol {
    /// Human-readable protocol name for reports.
    fn name(&self) -> &'static str;

    /// Arbitrates the given tag population (unique ids) to identification.
    fn inventory<R: Rng + ?Sized>(&self, tags: &[u64], rng: &mut R) -> InventoryOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_check_catches_mismatches() {
        let good = InventoryOutcome {
            total_slots: 3,
            collision_slots: 1,
            idle_slots: 1,
            singleton_slots: 1,
            reads: vec![(7, 2)],
            unresolved: vec![],
        };
        assert!(good.is_consistent());
        let bad_total = InventoryOutcome {
            total_slots: 4,
            ..good.clone()
        };
        assert!(!bad_total.is_consistent());
        let dup_reads = InventoryOutcome {
            total_slots: 4,
            singleton_slots: 2,
            reads: vec![(7, 2), (7, 3)],
            ..good.clone()
        };
        assert!(!dup_reads.is_consistent());
    }

    #[test]
    fn first_read_and_throughput() {
        let o = InventoryOutcome {
            total_slots: 10,
            collision_slots: 4,
            idle_slots: 1,
            singleton_slots: 5,
            reads: vec![(1, 3), (2, 5), (3, 6), (4, 8), (5, 9)],
            unresolved: vec![],
        };
        assert_eq!(o.slots_to_first_read(), Some(3));
        assert!((o.throughput() - 0.5).abs() < 1e-12);
        let empty = InventoryOutcome {
            total_slots: 0,
            collision_slots: 0,
            idle_slots: 0,
            singleton_slots: 0,
            reads: vec![],
            unresolved: vec![],
        };
        assert_eq!(empty.slots_to_first_read(), None);
        assert_eq!(empty.throughput(), 0.0);
    }
}
