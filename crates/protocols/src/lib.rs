#![warn(missing_docs)]
//! # rfid-protocols
//!
//! Link-layer tag anti-collision substrate.
//!
//! The scheduling paper deliberately leaves tag–tag collisions (TTc) to the
//! link layer: *"TTc can be successfully resolved through certain
//! link-layered protocol i.e., framed Aloha or tree-splitting. In this work,
//! we will not put extra efforts to dealing with TTc."* (Section II). The
//! schedule-level model then assumes a time slot is long enough for an
//! active reader to read at least one well-covered tag.
//!
//! This crate implements the protocols that assumption rests on, so the
//! system simulator can (a) validate it and (b) report intra-slot costs:
//!
//! * [`aloha`] — framed-slotted ALOHA with Vogt-style frame adaptation
//!   (reference \[20\] of the paper),
//! * [`tree_walking`] — binary tree-walking / tree-splitting arbitration
//!   (references \[16\], \[18\]),
//! * [`binary_splitting`] — randomised coin-flip splitting with an
//!   adaptive pre-split (references \[16\], \[19\]),
//! * [`q_protocol`] — an EPCglobal Class-1 Gen-2 style Q algorithm
//!   (reference \[8\]),
//!
//! all behind the common [`AntiCollisionProtocol`] interface measured in
//! *micro-slots* (one tag response opportunity each).

pub mod aloha;
pub mod binary_splitting;
pub mod inventory;
pub mod q_protocol;
pub mod theory;
pub mod tree_walking;

pub use aloha::FramedAloha;
pub use binary_splitting::BinarySplitting;
pub use inventory::{AntiCollisionProtocol, InventoryOutcome};
pub use q_protocol::QProtocol;
pub use theory::{
    aloha_efficiency, aloha_expected_singletons, aloha_optimal_frame, splitting_expected_queries,
};
pub use tree_walking::TreeWalking;
