//! Framed-slotted ALOHA with Vogt-style backlog estimation (paper ref \[20\]).
//!
//! Tags pick a uniform slot in the current frame; singleton slots identify a
//! tag, collision slots defer their tags to the next frame. The next frame
//! size follows Vogt's estimate of the remaining population: identified
//! tags leave, and each collision slot hides at least two tags, so the
//! backlog lower bound is `2·collisions` (Vogt's ε-lower-bound); Schoute's
//! classic factor refines it to `2.39·collisions`. The frame is clamped to
//! `[min_frame, max_frame]`.

use crate::inventory::{AntiCollisionProtocol, InventoryOutcome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Framed-slotted ALOHA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FramedAloha {
    /// First frame size (Gen-2 deployments often start at 16).
    pub initial_frame: usize,
    /// Adapt frame sizes with Schoute's 2.39 × collision estimate; when
    /// `false`, the frame size stays fixed (pure slotted ALOHA behaviour).
    pub adaptive: bool,
    /// Lower frame bound for the adaptive mode.
    pub min_frame: usize,
    /// Upper frame bound for the adaptive mode.
    pub max_frame: usize,
    /// Safety budget: give up (report `unresolved`) after this many frames.
    pub max_frames: usize,
}

impl Default for FramedAloha {
    fn default() -> Self {
        FramedAloha {
            initial_frame: 16,
            adaptive: true,
            min_frame: 4,
            max_frame: 1024,
            max_frames: 256,
        }
    }
}

impl AntiCollisionProtocol for FramedAloha {
    fn name(&self) -> &'static str {
        if self.adaptive {
            "framed-aloha-adaptive"
        } else {
            "framed-aloha-fixed"
        }
    }

    fn inventory<R: Rng + ?Sized>(&self, tags: &[u64], rng: &mut R) -> InventoryOutcome {
        assert!(self.initial_frame >= 1, "frame size must be ≥ 1");
        assert!(
            self.min_frame >= 1 && self.min_frame <= self.max_frame,
            "bad frame bounds"
        );
        let mut outcome = InventoryOutcome {
            total_slots: 0,
            collision_slots: 0,
            idle_slots: 0,
            singleton_slots: 0,
            reads: Vec::with_capacity(tags.len()),
            unresolved: Vec::new(),
        };
        let mut backlog: Vec<u64> = tags.to_vec();
        let mut frame = self.initial_frame;
        let mut frames_run = 0usize;
        while !backlog.is_empty() {
            if frames_run >= self.max_frames {
                outcome.unresolved = backlog;
                break;
            }
            frames_run += 1;
            // slot → responders
            let mut slots: Vec<Vec<u64>> = vec![Vec::new(); frame];
            for &t in &backlog {
                slots[rng.random_range(0..frame)].push(t);
            }
            let mut next_backlog = Vec::new();
            let mut collisions = 0u64;
            for slot in slots {
                let idx = outcome.total_slots;
                outcome.total_slots += 1;
                match slot.len() {
                    0 => outcome.idle_slots += 1,
                    1 => {
                        outcome.singleton_slots += 1;
                        outcome.reads.push((slot[0], idx));
                    }
                    _ => {
                        outcome.collision_slots += 1;
                        collisions += 1;
                        next_backlog.extend(slot);
                    }
                }
            }
            backlog = next_backlog;
            if self.adaptive {
                // Schoute: E[tags per colliding slot] ≈ 2.39.
                let estimate = (2.39 * collisions as f64).ceil() as usize;
                frame = estimate.clamp(self.min_frame, self.max_frame);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tags(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 31 + 5).collect()
    }

    #[test]
    fn empty_population_costs_nothing() {
        let mut rng = StdRng::seed_from_u64(0);
        let o = FramedAloha::default().inventory(&[], &mut rng);
        assert_eq!(o.total_slots, 0);
        assert!(o.reads.is_empty());
        assert!(o.is_consistent());
    }

    #[test]
    fn single_tag_reads_in_first_frame() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = FramedAloha::default().inventory(&[99], &mut rng);
        assert_eq!(o.reads.len(), 1);
        assert_eq!(o.reads[0].0, 99);
        assert!(o.total_slots <= 16);
        assert!(o.is_consistent());
    }

    #[test]
    fn all_tags_identified_exactly_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let population = tags(120);
        let o = FramedAloha::default().inventory(&population, &mut rng);
        assert!(o.unresolved.is_empty());
        assert!(o.is_consistent());
        let mut read_ids: Vec<u64> = o.reads.iter().map(|&(t, _)| t).collect();
        read_ids.sort_unstable();
        let mut expect = population.clone();
        expect.sort_unstable();
        assert_eq!(read_ids, expect);
    }

    #[test]
    fn adaptive_beats_fixed_small_frame_on_large_population() {
        let population = tags(300);
        let adaptive = FramedAloha::default();
        let fixed = FramedAloha {
            adaptive: false,
            initial_frame: 16,
            ..Default::default()
        };
        let mut total_a = 0u64;
        let mut total_f = 0u64;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            total_a += adaptive.inventory(&population, &mut rng).total_slots;
            let mut rng = StdRng::seed_from_u64(seed);
            let of = fixed.inventory(&population, &mut rng);
            total_f += of.total_slots + of.unresolved.len() as u64 * 100; // penalty if stuck
        }
        assert!(
            total_a < total_f,
            "adaptive {total_a} should beat fixed-16 {total_f} on 300 tags"
        );
    }

    #[test]
    fn throughput_near_theoretical_optimum() {
        // Well-tuned framed ALOHA peaks at 1/e ≈ 0.368 tags/slot.
        let population = tags(500);
        let mut rng = StdRng::seed_from_u64(3);
        let o = FramedAloha {
            initial_frame: 512,
            ..Default::default()
        }
        .inventory(&population, &mut rng);
        let thr = o.throughput();
        assert!(
            thr > 0.25 && thr < 0.45,
            "throughput {thr} out of expected band"
        );
    }

    #[test]
    fn slot_budget_reports_unresolved() {
        let population = tags(50);
        let mut rng = StdRng::seed_from_u64(4);
        let crippled = FramedAloha {
            initial_frame: 2,
            adaptive: false,
            min_frame: 2,
            max_frame: 2,
            max_frames: 3,
        };
        let o = crippled.inventory(&population, &mut rng);
        assert!(!o.unresolved.is_empty());
        assert_eq!(
            o.unresolved.len() + o.reads.len(),
            population.len(),
            "every tag is either read or unresolved"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let population = tags(80);
        let p = FramedAloha::default();
        let a = p.inventory(&population, &mut StdRng::seed_from_u64(9));
        let b = p.inventory(&population, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
