//! Randomised binary splitting (Hush–Wood \[16\] analysis; adaptive variant
//! per Myung–Lee \[19\]).
//!
//! Unlike tree *walking* (which splits on ID bits), binary splitting is
//! memory-based: colliding tags flip a fair coin; heads stay in the
//! current contention group, tails defer behind it. The reader needs no ID
//! structure at all, and the expected cost is ≈ 2.88 slots per tag
//! regardless of ID distribution — adjacent IDs cost nothing extra, which
//! is exactly where tree walking hurts.
//!
//! The adaptive variant seeds the first round by splitting the initial
//! population into `2^⌈log₂ n̂⌉` groups when an estimate `n̂` of the
//! population is available (we use the previous inventory's size), skipping
//! the guaranteed-collision top of the tree.

use crate::inventory::{AntiCollisionProtocol, InventoryOutcome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Randomised binary-splitting arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinarySplitting {
    /// Pre-split the initial population into this many groups (1 = classic
    /// Hush–Wood; an adaptive reader passes its population estimate
    /// rounded to a power of two).
    pub initial_groups: usize,
    /// Safety budget on total slots.
    pub max_slots: u64,
}

impl Default for BinarySplitting {
    fn default() -> Self {
        BinarySplitting {
            initial_groups: 1,
            max_slots: 1 << 22,
        }
    }
}

impl BinarySplitting {
    /// Adaptive pre-split for an estimated population of `estimate` tags.
    pub fn adaptive(estimate: usize) -> Self {
        BinarySplitting {
            initial_groups: estimate.max(1).next_power_of_two(),
            max_slots: 1 << 22,
        }
    }
}

impl AntiCollisionProtocol for BinarySplitting {
    fn name(&self) -> &'static str {
        "binary-splitting"
    }

    fn inventory<R: Rng + ?Sized>(&self, tags: &[u64], rng: &mut R) -> InventoryOutcome {
        assert!(self.initial_groups >= 1, "initial_groups must be ≥ 1");
        let mut outcome = InventoryOutcome {
            total_slots: 0,
            collision_slots: 0,
            idle_slots: 0,
            singleton_slots: 0,
            reads: Vec::with_capacity(tags.len()),
            unresolved: Vec::new(),
        };
        // LIFO stack of contention groups; the paper's counter-based
        // description is equivalent (a tag's counter is its group depth).
        let mut stack: Vec<Vec<u64>> = Vec::new();
        if self.initial_groups == 1 {
            stack.push(tags.to_vec());
        } else {
            let mut groups = vec![Vec::new(); self.initial_groups];
            for &t in tags {
                groups[rng.random_range(0..self.initial_groups)].push(t);
            }
            // Push in reverse so group 0 is answered first.
            for g in groups.into_iter().rev() {
                stack.push(g);
            }
        }
        while let Some(group) = stack.pop() {
            if outcome.total_slots >= self.max_slots {
                outcome.unresolved.extend(group);
                for g in stack.drain(..) {
                    outcome.unresolved.extend(g);
                }
                break;
            }
            let slot_idx = outcome.total_slots;
            outcome.total_slots += 1;
            match group.len() {
                0 => outcome.idle_slots += 1,
                1 => {
                    outcome.singleton_slots += 1;
                    outcome.reads.push((group[0], slot_idx));
                }
                _ => {
                    outcome.collision_slots += 1;
                    let mut stay = Vec::new();
                    let mut defer = Vec::new();
                    for t in group {
                        if rng.random::<bool>() {
                            stay.push(t);
                        } else {
                            defer.push(t);
                        }
                    }
                    stack.push(defer);
                    stack.push(stay);
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tags(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn identifies_everyone() {
        let mut rng = StdRng::seed_from_u64(0);
        let population = tags(200);
        let o = BinarySplitting::default().inventory(&population, &mut rng);
        assert!(o.unresolved.is_empty());
        assert!(o.is_consistent());
        let mut ids: Vec<u64> = o.reads.iter().map(|&(t, _)| t).collect();
        ids.sort_unstable();
        assert_eq!(ids, population);
    }

    #[test]
    fn empty_population_costs_at_most_initial_probes() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = BinarySplitting::default().inventory(&[], &mut rng);
        assert_eq!(o.total_slots, 1); // one idle probe of the root group
        assert_eq!(o.idle_slots, 1);
        let o = BinarySplitting::adaptive(8).inventory(&[], &mut rng);
        assert_eq!(o.total_slots, 8);
    }

    #[test]
    fn cost_is_near_theory() {
        // Hush–Wood: expected ≈ 2.88 slots/tag for large n.
        let mut rng = StdRng::seed_from_u64(2);
        let population = tags(600);
        let o = BinarySplitting::default().inventory(&population, &mut rng);
        let per_tag = o.total_slots as f64 / 600.0;
        assert!((2.2..3.6).contains(&per_tag), "slots per tag = {per_tag}");
    }

    #[test]
    fn insensitive_to_adjacent_ids_unlike_tree_walking() {
        use crate::tree_walking::TreeWalking;
        // Adjacent IDs: worst case for TWA, irrelevant for splitting.
        let population: Vec<u64> = (1000..1064).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let split = BinarySplitting::default().inventory(&population, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let walk = TreeWalking::default().inventory(&population, &mut rng);
        assert!(
            split.total_slots < walk.total_slots,
            "splitting ({}) should beat tree walking ({}) on adjacent ids",
            split.total_slots,
            walk.total_slots
        );
    }

    #[test]
    fn adaptive_presplit_helps_large_populations() {
        let population = tags(500);
        let mut total_plain = 0u64;
        let mut total_adaptive = 0u64;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            total_plain += BinarySplitting::default()
                .inventory(&population, &mut rng)
                .total_slots;
            let mut rng = StdRng::seed_from_u64(seed);
            total_adaptive += BinarySplitting::adaptive(500)
                .inventory(&population, &mut rng)
                .total_slots;
        }
        assert!(
            total_adaptive < total_plain,
            "adaptive {total_adaptive} should beat plain {total_plain}"
        );
    }

    #[test]
    fn budget_reports_unresolved() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = BinarySplitting {
            initial_groups: 1,
            max_slots: 10,
        };
        let population = tags(100);
        let o = p.inventory(&population, &mut rng);
        assert_eq!(o.reads.len() + o.unresolved.len(), 100);
        assert!(o.total_slots <= 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let population = tags(80);
        let p = BinarySplitting::default();
        let a = p.inventory(&population, &mut StdRng::seed_from_u64(9));
        let b = p.inventory(&population, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
