//! EPCglobal Class-1 Generation-2 style Q algorithm (paper ref \[8\]).
//!
//! Gen-2 inventories tags with dynamically sized slotted rounds: each tag
//! draws a 15-bit slot counter from `[0, 2^Q − 1]`; the reader issues
//! `QueryRep` commands that decrement every counter, tags answer at zero.
//! The reader nudges a floating-point shadow `Q_fp` up by `c` on collision
//! slots and down by `c` on idle slots; whenever `round(Q_fp)` changes it
//! issues `QueryAdjust` and all unresolved tags re-draw. This adaptive loop
//! is the "dense reading mode" machinery the paper cites when discussing
//! multi-channel RTc elimination.

use crate::inventory::{AntiCollisionProtocol, InventoryOutcome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gen-2 Q algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QProtocol {
    /// Initial Q (Gen-2 default 4 → 16-slot rounds).
    pub initial_q: f64,
    /// Adjustment step `c` (standard suggests 0.1 ≤ c ≤ 0.5).
    pub c: f64,
    /// Q ceiling (15 in the standard).
    pub max_q: f64,
    /// Safety budget on total slots before reporting `unresolved`.
    pub max_slots: u64,
}

impl Default for QProtocol {
    fn default() -> Self {
        QProtocol {
            initial_q: 4.0,
            c: 0.3,
            max_q: 15.0,
            max_slots: 1 << 20,
        }
    }
}

impl AntiCollisionProtocol for QProtocol {
    fn name(&self) -> &'static str {
        "gen2-q"
    }

    fn inventory<R: Rng + ?Sized>(&self, tags: &[u64], rng: &mut R) -> InventoryOutcome {
        assert!(self.c > 0.0 && self.c <= 1.0, "c must be in (0, 1]");
        assert!(
            self.initial_q >= 0.0 && self.initial_q <= self.max_q,
            "bad initial Q"
        );
        let mut outcome = InventoryOutcome {
            total_slots: 0,
            collision_slots: 0,
            idle_slots: 0,
            singleton_slots: 0,
            reads: Vec::with_capacity(tags.len()),
            unresolved: Vec::new(),
        };
        let mut q_fp = self.initial_q;
        let mut q = q_fp.round().clamp(0.0, self.max_q) as u32;
        // (tag, slot_counter) of unresolved tags.
        let mut pending: Vec<(u64, u32)> = Vec::new();
        let draw = |rng: &mut R, q: u32| -> u32 {
            if q == 0 {
                0
            } else {
                rng.random_range(0..(1u32 << q))
            }
        };
        for &t in tags {
            pending.push((t, draw(rng, q)));
        }
        while !pending.is_empty() {
            if outcome.total_slots >= self.max_slots {
                outcome.unresolved = pending.into_iter().map(|(t, _)| t).collect();
                break;
            }
            let slot_idx = outcome.total_slots;
            outcome.total_slots += 1;
            let responders: Vec<u64> = pending
                .iter()
                .filter(|&&(_, c)| c == 0)
                .map(|&(t, _)| t)
                .collect();
            match responders.len() {
                0 => {
                    outcome.idle_slots += 1;
                    q_fp = (q_fp - self.c).max(0.0);
                }
                1 => {
                    outcome.singleton_slots += 1;
                    outcome.reads.push((responders[0], slot_idx));
                    pending.retain(|&(t, _)| t != responders[0]);
                }
                _ => {
                    outcome.collision_slots += 1;
                    q_fp = (q_fp + self.c).min(self.max_q);
                }
            }
            let new_q = q_fp.round().clamp(0.0, self.max_q) as u32;
            if new_q != q {
                // QueryAdjust: unresolved tags re-draw from the new window.
                q = new_q;
                for p in &mut pending {
                    p.1 = draw(rng, q);
                }
            } else {
                // QueryRep: decrement; tags that answered with a collision
                // re-draw (they lost arbitration), others count down.
                for p in &mut pending {
                    if p.1 == 0 {
                        p.1 = draw(rng, q);
                    } else {
                        p.1 -= 1;
                    }
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tags(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 7919 + 13).collect()
    }

    #[test]
    fn empty_population() {
        let mut rng = StdRng::seed_from_u64(0);
        let o = QProtocol::default().inventory(&[], &mut rng);
        assert_eq!(o.total_slots, 0);
        assert!(o.is_consistent());
    }

    #[test]
    fn identifies_everyone() {
        let mut rng = StdRng::seed_from_u64(1);
        let population = tags(200);
        let o = QProtocol::default().inventory(&population, &mut rng);
        assert!(o.unresolved.is_empty());
        assert!(o.is_consistent());
        let mut ids: Vec<u64> = o.reads.iter().map(|&(t, _)| t).collect();
        ids.sort_unstable();
        let mut expect = population.clone();
        expect.sort_unstable();
        assert_eq!(ids, expect);
    }

    #[test]
    fn q_adapts_to_large_populations() {
        // Starting at Q=4 (16 slots) with 500 tags, the adaptive loop must
        // still finish with sane throughput.
        let mut rng = StdRng::seed_from_u64(2);
        let o = QProtocol::default().inventory(&tags(500), &mut rng);
        assert!(o.unresolved.is_empty());
        let thr = o.throughput();
        assert!(thr > 0.15 && thr < 0.6, "throughput {thr}");
    }

    #[test]
    fn single_tag_fast_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let o = QProtocol::default().inventory(&[5], &mut rng);
        assert_eq!(o.reads.len(), 1);
        // With Q=4 the lone tag answers within one 16-slot window, and idle
        // slots shrink Q — identification should be quick.
        assert!(o.total_slots <= 32, "took {} slots", o.total_slots);
    }

    #[test]
    fn budget_reports_unresolved() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = QProtocol {
            max_slots: 5,
            ..Default::default()
        };
        let population = tags(100);
        let o = p.inventory(&population, &mut rng);
        assert_eq!(o.reads.len() + o.unresolved.len(), population.len());
        assert!(o.total_slots <= 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let population = tags(60);
        let p = QProtocol::default();
        let a = p.inventory(&population, &mut StdRng::seed_from_u64(5));
        let b = p.inventory(&population, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "c must be")]
    fn zero_c_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = QProtocol {
            c: 0.0,
            ..Default::default()
        }
        .inventory(&[1], &mut rng);
    }
}
