//! Closed-form expectations for the anti-collision protocols.
//!
//! The simulators in this crate are validated against the classic analyses
//! the paper's references derive: framed-ALOHA slot-occupancy formulas
//! (Vogt \[20\]), the optimal frame size, and the expected query cost of
//! randomised binary splitting (Hush–Wood \[16\]). Tests cross-check the
//! Monte-Carlo protocols against these formulas — if the simulation and
//! the theory drift apart, one of them is wrong.

/// Expected number of slots with exactly one responder when `n` tags pick
/// uniformly among `f` slots: `n · (1 − 1/f)^{n−1}`.
pub fn aloha_expected_singletons(n: usize, f: usize) -> f64 {
    assert!(f >= 1, "frame size must be ≥ 1");
    if n == 0 {
        return 0.0;
    }
    n as f64 * (1.0 - 1.0 / f as f64).powi(n as i32 - 1)
}

/// Expected number of empty slots: `f · (1 − 1/f)^n`.
pub fn aloha_expected_idle(n: usize, f: usize) -> f64 {
    assert!(f >= 1);
    f as f64 * (1.0 - 1.0 / f as f64).powi(n as i32)
}

/// Expected number of collision slots: `f − idle − singletons`.
pub fn aloha_expected_collisions(n: usize, f: usize) -> f64 {
    f as f64 - aloha_expected_idle(n, f) - aloha_expected_singletons(n, f)
}

/// Per-frame efficiency `singletons / f`; maximised near `f = n` at
/// `≈ 1/e` for large `n`.
pub fn aloha_efficiency(n: usize, f: usize) -> f64 {
    aloha_expected_singletons(n, f) / f as f64
}

/// The frame size in `[min_f, max_f]` maximising per-slot *efficiency*
/// (identified tags per spent slot) for a backlog of `n` tags — the
/// quantity Vogt-style estimators chase. The classic result: `f ≈ n`,
/// with peak efficiency `1/e`.
pub fn aloha_optimal_frame(n: usize, min_f: usize, max_f: usize) -> usize {
    assert!(min_f >= 1 && min_f <= max_f);
    (min_f..=max_f)
        .max_by(|&a, &b| {
            aloha_efficiency(n, a)
                .partial_cmp(&aloha_efficiency(n, b))
                .expect("finite")
        })
        .expect("non-empty range")
}

/// Expected total queries of randomised binary splitting on `n ≥ 0` tags,
/// via the classic recurrence
/// `T(n) = 1 + Σ_k C(n,k) 2^{-n} (T(k) + T(n−k))` for `n ≥ 2`,
/// `T(0) = T(1) = 1`. Asymptotically `≈ 2.885·n`.
pub fn splitting_expected_queries(n: usize) -> f64 {
    // Solve the recurrence bottom-up. The self-referencing k = 0 and
    // k = n terms are moved to the left-hand side:
    // T(n)(1 − 2^{1−n}) = 1 + Σ_{k=1}^{n−1} C(n,k) 2^{-n} (T(k) + T(n−k)).
    let mut t = vec![0.0f64; n.max(1) + 1];
    t[0] = 1.0;
    if n >= 1 {
        t[1] = 1.0;
    }
    for m in 2..=n {
        // binomial coefficients row m
        let mut binom = vec![0.0f64; m + 1];
        binom[0] = 1.0;
        for k in 1..=m {
            binom[k] = binom[k - 1] * (m - k + 1) as f64 / k as f64;
        }
        let p = 0.5f64.powi(m as i32);
        // k = 0 and k = m each contribute (T(0) + T(m)): the T(m) parts
        // move to the left-hand side, the T(0) parts stay on the right.
        let mut rhs = 1.0 + 2.0 * p * t[0];
        for k in 1..m {
            rhs += binom[k] * p * (t[k] + t[m - k]);
        }
        let self_coeff = 1.0 - 2.0 * p;
        t[m] = rhs / self_coeff;
    }
    t[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::AntiCollisionProtocol;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aloha_slot_categories_sum_to_frame() {
        for &(n, f) in &[(10usize, 16usize), (100, 64), (5, 5), (0, 8)] {
            let total = aloha_expected_idle(n, f)
                + aloha_expected_singletons(n, f)
                + aloha_expected_collisions(n, f);
            assert!((total - f as f64).abs() < 1e-9, "n={n} f={f}");
        }
    }

    #[test]
    fn aloha_efficiency_peaks_near_frame_equals_n() {
        let n = 100;
        let best = aloha_optimal_frame(n, 1, 400);
        // theory: optimum at f ≈ n (exactly n for the singleton count when
        // continuous; integer optimum within ±1)
        assert!(
            (best as i64 - n as i64).abs() <= 1,
            "optimal frame {best} for n={n}"
        );
        let eff = aloha_efficiency(n, best);
        assert!(
            (eff - (-1.0f64).exp()).abs() < 0.01,
            "peak efficiency {eff} ≉ 1/e"
        );
    }

    #[test]
    fn simulation_matches_aloha_formula() {
        // One frame of fixed-size ALOHA: singleton count should match the
        // closed form within Monte-Carlo noise.
        let n = 60;
        let f = 64;
        let tags: Vec<u64> = (0..n as u64).collect();
        let proto = crate::FramedAloha {
            initial_frame: f,
            adaptive: false,
            min_frame: f,
            max_frame: f,
            max_frames: 1,
        };
        let mut singles = 0.0;
        const RUNS: u64 = 300;
        for seed in 0..RUNS {
            let mut rng = StdRng::seed_from_u64(seed);
            let o = proto.inventory(&tags, &mut rng);
            singles += o.singleton_slots as f64;
        }
        let mean = singles / RUNS as f64;
        let expect = aloha_expected_singletons(n, f);
        assert!(
            (mean - expect).abs() < 0.05 * expect + 0.5,
            "simulated {mean} vs theoretical {expect}"
        );
    }

    #[test]
    fn splitting_recurrence_base_cases_and_growth() {
        assert_eq!(splitting_expected_queries(0), 1.0);
        assert_eq!(splitting_expected_queries(1), 1.0);
        // T(2) = 1 + ¼(T0+T2) + ½(T1+T1) + ¼(T2+T0) = 2.5 + T2/2 → T2 = 5.
        assert!((splitting_expected_queries(2) - 5.0).abs() < 1e-9);
        // Asymptotic slope ≈ 2.885 n
        let t100 = splitting_expected_queries(100);
        assert!(
            (t100 / 100.0 - 2.885).abs() < 0.05,
            "T(100)/100 = {} (expected ≈ 2.885)",
            t100 / 100.0
        );
    }

    #[test]
    fn simulation_matches_splitting_recurrence() {
        let n = 40;
        let tags: Vec<u64> = (0..n as u64).collect();
        let proto = crate::BinarySplitting::default();
        let mut total = 0.0;
        const RUNS: u64 = 200;
        for seed in 0..RUNS {
            let mut rng = StdRng::seed_from_u64(seed);
            total += proto.inventory(&tags, &mut rng).total_slots as f64;
        }
        let mean = total / RUNS as f64;
        let expect = splitting_expected_queries(n);
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "simulated {mean} vs recurrence {expect}"
        );
    }
}
