//! The synchronous network executor.

use crate::message::{Envelope, Payload};
use crate::node::{Node, Outbox};
use crate::stats::NetStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_graph::Csr;

/// A lock-step network of homogeneous nodes over a fixed topology.
pub struct Network<N: Node> {
    topology: Csr,
    nodes: Vec<N>,
    /// Messages in flight, each with its delivery round (next round by
    /// default; later under the delay model).
    in_flight: Vec<(u64, Envelope<N::Msg>)>,
    stats: NetStats,
    /// Optional unreliable-link model: each message is independently
    /// dropped at delivery time with this probability.
    loss: Option<(f64, StdRng)>,
    /// Optional asynchrony model: each message is delayed by an extra
    /// uniform 0..=max rounds.
    delay: Option<(u64, StdRng)>,
}

impl<N: Node> Network<N> {
    /// Builds a network; `nodes[i]` runs on topology node `i`.
    pub fn new(topology: Csr, nodes: Vec<N>) -> Self {
        assert_eq!(topology.n(), nodes.len(), "one node per topology vertex");
        Network {
            topology,
            nodes,
            in_flight: Vec::new(),
            stats: NetStats::default(),
            loss: None,
            delay: None,
        }
    }

    /// Enables the unreliable-link model: every message is dropped
    /// independently with probability `p` (seeded — reproducible). Dropped
    /// messages still count in [`NetStats::messages`] (the sender paid for
    /// them) and are tallied in [`NetStats::dropped`].
    pub fn with_loss(mut self, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss = Some((p, StdRng::seed_from_u64(seed)));
        self
    }

    /// Enables bounded asynchrony: each message is independently delayed
    /// by an extra `0..=max_extra` rounds beyond the synchronous one
    /// (seeded — reproducible). `max_extra = 0` is the synchronous model.
    pub fn with_delay(mut self, max_extra: u64, seed: u64) -> Self {
        self.delay = Some((max_extra, StdRng::seed_from_u64(seed)));
        self
    }

    /// Immutable access to the node states (for result extraction).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Consumes the network, returning node states and accumulated stats.
    pub fn into_parts(self) -> (Vec<N>, NetStats) {
        (self.nodes, self.stats)
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// `true` iff every node is done and no messages are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.nodes.iter().all(|n| n.is_done())
    }

    /// Executes one synchronous round: deliver in-flight messages, step all
    /// nodes in id order, collect their outboxes.
    pub fn run_round(&mut self) {
        let round = self.stats.rounds;
        // Partition in-flight messages into per-node inboxes, sorted by
        // sender for determinism. The loss model drops at delivery.
        let mut inboxes: Vec<Vec<Envelope<N::Msg>>> = vec![Vec::new(); self.nodes.len()];
        let mut still_flying = Vec::new();
        for (due, env) in self.in_flight.drain(..) {
            if due > round {
                still_flying.push((due, env));
                continue;
            }
            if let Some((p, rng)) = &mut self.loss {
                if rng.random::<f64>() < *p {
                    self.stats.dropped += 1;
                    continue;
                }
            }
            inboxes[env.to].push(env);
        }
        for ib in &mut inboxes {
            ib.sort_by_key(|e| e.from);
        }
        let mut next_flight = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let neighbors: Vec<usize> =
                self.topology.neighbors(i).iter().map(|&t| t as usize).collect();
            let mut outbox = Outbox::new(i, neighbors);
            node.step(round, &inboxes[i], &mut outbox);
            let sent = outbox.take();
            for env in sent {
                self.stats.messages += 1;
                self.stats.bytes += env.msg.size_bytes() as u64;
                let extra = match &mut self.delay {
                    Some((max, rng)) if *max > 0 => rng.random_range(0..=*max),
                    _ => 0,
                };
                next_flight.push((round + 1 + extra, env));
            }
        }
        self.in_flight = next_flight;
        self.in_flight.extend(still_flying);
        self.stats.rounds += 1;
    }

    /// Runs rounds until quiescence or `max_rounds`, returning the number of
    /// rounds executed in this call.
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> u64 {
        let start = self.stats.rounds;
        while !self.is_quiescent() && self.stats.rounds - start < max_rounds {
            self.run_round();
        }
        self.stats.rounds - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node floods the maximum id it has heard of; classic leader
    /// election by flooding. Terminates when no new information arrives
    /// for one round after startup.
    struct MaxFlood {
        best: u32,
        changed: bool,
        started: bool,
    }

    impl Node for MaxFlood {
        type Msg = u32;

        fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            let mut changed = !self.started;
            self.started = true;
            for env in inbox {
                if env.msg > self.best {
                    self.best = env.msg;
                    changed = true;
                }
            }
            if changed {
                out.broadcast(self.best);
            }
            self.changed = changed;
        }

        fn is_done(&self) -> bool {
            self.started && !self.changed
        }
    }

    fn flood_network(topology: Csr) -> Network<MaxFlood> {
        let nodes = (0..topology.n())
            .map(|i| MaxFlood { best: i as u32, changed: false, started: false })
            .collect();
        Network::new(topology, nodes)
    }

    #[test]
    fn flooding_elects_global_max_on_path() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut net = flood_network(g);
        let rounds = net.run_until_quiescent(100);
        assert!(net.is_quiescent());
        for n in net.nodes() {
            assert_eq!(n.best, 4);
        }
        // Diameter 4 path: information needs ≥ 5 rounds (1 to start + 4 hops).
        assert!(rounds >= 5 && rounds <= 10, "rounds = {rounds}");
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let mut net = flood_network(g);
        net.run_until_quiescent(100);
        assert_eq!(net.nodes()[0].best, 1);
        assert_eq!(net.nodes()[1].best, 1);
        assert_eq!(net.nodes()[2].best, 3);
        assert_eq!(net.nodes()[3].best, 3);
    }

    #[test]
    fn stats_accumulate() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let mut net = flood_network(g);
        net.run_until_quiescent(100);
        let s = net.stats();
        assert!(s.messages > 0);
        assert_eq!(s.bytes, s.messages * 4); // u32 payloads
        assert!(s.rounds > 0);
    }

    #[test]
    fn round_budget_is_respected() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let mut net = flood_network(g);
        let ran = net.run_until_quiescent(1);
        assert_eq!(ran, 1);
        assert!(!net.is_quiescent());
    }

    #[test]
    fn isolated_node_terminates_immediately() {
        let g = Csr::from_edges(1, &[]);
        let mut net = flood_network(g);
        let rounds = net.run_until_quiescent(10);
        assert!(net.is_quiescent());
        assert_eq!(rounds, 2); // start round + quiet round
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use crate::node::{Node, Outbox};

    /// Node that broadcasts a fixed number of pings and counts receipts.
    struct Pinger {
        to_send: u32,
        received: u32,
    }

    impl Node for Pinger {
        type Msg = u32;
        fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            self.received += inbox.len() as u32;
            if self.to_send > 0 {
                self.to_send -= 1;
                out.broadcast(1);
            }
        }
        fn is_done(&self) -> bool {
            self.to_send == 0
        }
    }

    fn pair_network(loss: Option<(f64, u64)>) -> Network<Pinger> {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let nodes = vec![Pinger { to_send: 200, received: 0 }, Pinger { to_send: 0, received: 0 }];
        let net = Network::new(g, nodes);
        match loss {
            Some((p, seed)) => net.with_loss(p, seed),
            None => net,
        }
    }

    #[test]
    fn no_loss_delivers_everything() {
        let mut net = pair_network(None);
        net.run_until_quiescent(500);
        assert_eq!(net.nodes()[1].received, 200);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn full_loss_delivers_nothing() {
        let mut net = pair_network(Some((1.0, 0)));
        net.run_until_quiescent(500);
        assert_eq!(net.nodes()[1].received, 0);
        assert_eq!(net.stats().dropped, net.stats().messages);
    }

    #[test]
    fn partial_loss_drops_roughly_p() {
        let mut net = pair_network(Some((0.3, 42)));
        net.run_until_quiescent(500);
        let received = net.nodes()[1].received;
        assert!(
            (100..=180).contains(&received),
            "expected ≈140 of 200 pings, got {received}"
        );
        assert_eq!(net.stats().dropped + received as u64, net.stats().messages);
    }

    #[test]
    fn loss_is_reproducible_per_seed() {
        let run = |seed| {
            let mut net = pair_network(Some((0.5, seed)));
            net.run_until_quiescent(500);
            net.nodes()[1].received
        };
        assert_eq!(run(7), run(7));
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use crate::node::{Node, Outbox};

    /// Sends one burst at round 0; receiver records arrival rounds.
    struct Burst {
        sent: bool,
        arrivals: Vec<u64>,
    }

    impl Node for Burst {
        type Msg = u32;
        fn step(&mut self, round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            for _ in inbox {
                self.arrivals.push(round);
            }
            if !self.sent && out.me() == 0 {
                self.sent = true;
                for _ in 0..50 {
                    out.broadcast(1);
                }
            } else {
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    fn burst_pair(delay: Option<(u64, u64)>) -> Network<Burst> {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let nodes = vec![
            Burst { sent: false, arrivals: vec![] },
            Burst { sent: false, arrivals: vec![] },
        ];
        let net = Network::new(g, nodes);
        match delay {
            Some((max, seed)) => net.with_delay(max, seed),
            None => net,
        }
    }

    #[test]
    fn synchronous_delivery_is_next_round() {
        let mut net = burst_pair(None);
        net.run_until_quiescent(20);
        assert_eq!(net.nodes()[1].arrivals.len(), 50);
        assert!(net.nodes()[1].arrivals.iter().all(|&r| r == 1));
    }

    #[test]
    fn delayed_delivery_spreads_but_loses_nothing() {
        let mut net = burst_pair(Some((4, 9)));
        net.run_until_quiescent(50);
        let arrivals = &net.nodes()[1].arrivals;
        assert_eq!(arrivals.len(), 50, "bounded delay must not lose messages");
        assert!(arrivals.iter().all(|&r| (1..=5).contains(&r)), "{arrivals:?}");
        // with 50 messages and 5 buckets, at least two distinct rounds
        let distinct: std::collections::BTreeSet<u64> = arrivals.iter().copied().collect();
        assert!(distinct.len() >= 2, "delay jitter should spread arrivals");
    }

    #[test]
    fn zero_extra_delay_equals_synchronous() {
        let mut a = burst_pair(None);
        a.run_until_quiescent(20);
        let mut b = burst_pair(Some((0, 1)));
        b.run_until_quiescent(20);
        assert_eq!(a.nodes()[1].arrivals, b.nodes()[1].arrivals);
    }

    #[test]
    fn quiescence_waits_for_delayed_messages() {
        let mut net = burst_pair(Some((4, 3)));
        // after one round, messages may still be in flight
        net.run_round();
        net.run_round();
        let early = net.nodes()[1].arrivals.len();
        net.run_until_quiescent(50);
        assert!(net.is_quiescent());
        assert!(net.nodes()[1].arrivals.len() >= early);
        assert_eq!(net.nodes()[1].arrivals.len(), 50);
    }
}
