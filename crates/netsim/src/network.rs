//! The synchronous network executor.

use crate::faults::FaultPlan;
use crate::message::{Envelope, Payload};
use crate::node::{Node, Outbox};
use crate::stats::NetStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_graph::Csr;

/// A lock-step network of homogeneous nodes over a fixed topology.
pub struct Network<N: Node> {
    topology: Csr,
    nodes: Vec<N>,
    /// Messages in flight, each with its delivery round (next round by
    /// default; later under the delay model).
    in_flight: Vec<(u64, Envelope<N::Msg>)>,
    stats: NetStats,
    /// Optional unreliable-link model: each message is independently
    /// dropped at delivery time with this probability.
    loss: Option<(f64, StdRng)>,
    /// Optional asynchrony model: each message is delayed by an extra
    /// uniform 0..=max rounds.
    delay: Option<(u64, StdRng)>,
    /// Optional fault plan driving crashes and partitions (loss/delay
    /// from a plan are installed into the two fields above).
    plan: Option<FaultPlan>,
    /// `crashed[i]` once node `i` has crash-stopped.
    crashed: Vec<bool>,
}

impl<N: Node> Network<N> {
    /// Builds a network; `nodes[i]` runs on topology node `i`.
    pub fn new(topology: Csr, nodes: Vec<N>) -> Self {
        assert_eq!(topology.n(), nodes.len(), "one node per topology vertex");
        let crashed = vec![false; nodes.len()];
        Network {
            topology,
            nodes,
            in_flight: Vec::new(),
            stats: NetStats::default(),
            loss: None,
            delay: None,
            plan: None,
            crashed,
        }
    }

    /// Enables the unreliable-link model: every message is dropped
    /// independently with probability `p` (seeded — reproducible). Dropped
    /// messages still count in [`NetStats::messages`] (the sender paid for
    /// them) and are tallied in [`NetStats::dropped`].
    pub fn with_loss(mut self, p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.loss = Some((p, StdRng::seed_from_u64(seed)));
        self
    }

    /// Enables bounded asynchrony: each message is independently delayed
    /// by an extra `0..=max_extra` rounds beyond the synchronous one
    /// (seeded — reproducible). `max_extra = 0` is the synchronous model.
    pub fn with_delay(mut self, max_extra: u64, seed: u64) -> Self {
        self.delay = Some((max_extra, StdRng::seed_from_u64(seed)));
        self
    }

    /// Installs a unified [`FaultPlan`]: its loss and delay knobs are
    /// wired to the same seeded models as [`with_loss`](Self::with_loss) /
    /// [`with_delay`](Self::with_delay) (derived from the plan seed), and
    /// its crashes and partitions are consulted every round. Installing
    /// [`FaultPlan::none()`] leaves execution byte-identical to an
    /// unfaulted network.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if plan.loss() > 0.0 {
            self = self.with_loss(plan.loss(), plan.seed());
        }
        if plan.max_delay() > 0 {
            // Decorrelate the delay stream from the loss stream.
            self = self.with_delay(plan.max_delay(), plan.seed() ^ 0x9E37_79B9_7F4A_7C15);
        }
        self.plan = Some(plan);
        self
    }

    /// Immutable access to the node states (for result extraction).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Ids of nodes that have crash-stopped so far, ascending.
    pub fn crashed_nodes(&self) -> Vec<usize> {
        self.crashed
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.then_some(i))
            .collect()
    }

    /// Consumes the network, returning node states and accumulated stats.
    /// Messages still in flight (execution cut off mid-delivery) are
    /// accounted as dropped rather than silently leaked, so
    /// `messages == delivered + dropped` always holds for the caller.
    pub fn into_parts(mut self) -> (Vec<N>, NetStats) {
        self.stats.dropped += self.in_flight.len() as u64;
        self.in_flight.clear();
        (self.nodes, self.stats)
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// `true` iff no messages are in flight and every node has either
    /// terminated its protocol or crash-stopped (a crashed node can never
    /// become done, so it must not block quiescence).
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty()
            && self
                .nodes
                .iter()
                .enumerate()
                .all(|(i, n)| self.crashed[i] || n.is_done())
    }

    /// Executes one synchronous round: deliver in-flight messages, step all
    /// nodes in id order, collect their outboxes.
    pub fn run_round(&mut self) {
        let round = self.stats.rounds;
        // Crash-stop nodes whose scheduled round has arrived, before any
        // delivery: a node crashing at round r neither steps in round r
        // nor receives the messages due then.
        if let Some(plan) = &self.plan {
            for i in 0..self.nodes.len() {
                if !self.crashed[i] && plan.is_crashed(i, round) {
                    self.crashed[i] = true;
                    self.stats.crashed += 1;
                }
            }
        }
        // Partition in-flight messages into per-node inboxes, sorted by
        // sender for determinism. Crashes, partitions and the loss model
        // all drop at delivery time.
        let mut inboxes: Vec<Vec<Envelope<N::Msg>>> = vec![Vec::new(); self.nodes.len()];
        let mut still_flying = Vec::new();
        for (due, env) in self.in_flight.drain(..) {
            if due > round {
                still_flying.push((due, env));
                continue;
            }
            if self.crashed[env.to]
                || self
                    .plan
                    .as_ref()
                    .is_some_and(|plan| plan.severed(env.from, env.to, round))
            {
                self.stats.dropped += 1;
                continue;
            }
            if let Some((p, rng)) = &mut self.loss {
                if rng.random::<f64>() < *p {
                    self.stats.dropped += 1;
                    continue;
                }
            }
            inboxes[env.to].push(env);
        }
        for ib in &mut inboxes {
            ib.sort_by_key(|e| e.from);
        }
        let mut next_flight = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if self.crashed[i] {
                continue;
            }
            let neighbors: Vec<usize> = self
                .topology
                .neighbors(i)
                .iter()
                .map(|&t| t as usize)
                .collect();
            let mut outbox = Outbox::new(i, neighbors);
            node.step(round, &inboxes[i], &mut outbox);
            let (sent, retransmits) = outbox.take();
            self.stats.retransmits += retransmits;
            for env in sent {
                self.stats.messages += 1;
                self.stats.bytes += env.msg.size_bytes() as u64;
                let extra = match &mut self.delay {
                    Some((max, rng)) if *max > 0 => rng.random_range(0..=*max),
                    _ => 0,
                };
                next_flight.push((round + 1 + extra, env));
            }
        }
        self.in_flight = next_flight;
        self.in_flight.extend(still_flying);
        self.stats.rounds += 1;
    }

    /// Runs rounds until quiescence or `max_rounds`, returning the number of
    /// rounds executed in this call.
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> u64 {
        let start = self.stats.rounds;
        while !self.is_quiescent() && self.stats.rounds - start < max_rounds {
            self.run_round();
        }
        self.stats.rounds - start
    }

    /// [`run_until_quiescent`](Self::run_until_quiescent) wrapped in a
    /// `net.run` span, reporting this call's [`NetStats`] delta to `sub`
    /// as `net.*` counters. Execution is bit-identical with or without a
    /// subscriber — the instrumentation only reads the accounting.
    pub fn run_until_quiescent_observed(
        &mut self,
        max_rounds: u64,
        sub: Option<&dyn rfid_obs::Subscriber>,
    ) -> u64 {
        let _span = rfid_obs::span!(sub, "net.run");
        let before = self.stats;
        let ran = self.run_until_quiescent(max_rounds);
        self.stats.delta_since(&before).report_to(sub);
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node floods the maximum id it has heard of; classic leader
    /// election by flooding. Terminates when no new information arrives
    /// for one round after startup. (`pub(super)` so the fault tests can
    /// reuse the same workload.)
    pub(super) struct MaxFlood {
        pub(super) best: u32,
        changed: bool,
        started: bool,
    }

    impl Node for MaxFlood {
        type Msg = u32;

        fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            let mut changed = !self.started;
            self.started = true;
            for env in inbox {
                if env.msg > self.best {
                    self.best = env.msg;
                    changed = true;
                }
            }
            if changed {
                out.broadcast(self.best);
            }
            self.changed = changed;
        }

        fn is_done(&self) -> bool {
            self.started && !self.changed
        }
    }

    pub(super) fn flood_network(topology: Csr) -> Network<MaxFlood> {
        let nodes = (0..topology.n())
            .map(|i| MaxFlood {
                best: i as u32,
                changed: false,
                started: false,
            })
            .collect();
        Network::new(topology, nodes)
    }

    #[test]
    fn flooding_elects_global_max_on_path() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut net = flood_network(g);
        let rounds = net.run_until_quiescent(100);
        assert!(net.is_quiescent());
        for n in net.nodes() {
            assert_eq!(n.best, 4);
        }
        // Diameter 4 path: information needs ≥ 5 rounds (1 to start + 4 hops).
        assert!((5..=10).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let mut net = flood_network(g);
        net.run_until_quiescent(100);
        assert_eq!(net.nodes()[0].best, 1);
        assert_eq!(net.nodes()[1].best, 1);
        assert_eq!(net.nodes()[2].best, 3);
        assert_eq!(net.nodes()[3].best, 3);
    }

    #[test]
    fn stats_accumulate() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let mut net = flood_network(g);
        net.run_until_quiescent(100);
        let s = net.stats();
        assert!(s.messages > 0);
        assert_eq!(s.bytes, s.messages * 4); // u32 payloads
        assert!(s.rounds > 0);
    }

    #[test]
    fn round_budget_is_respected() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let mut net = flood_network(g);
        let ran = net.run_until_quiescent(1);
        assert_eq!(ran, 1);
        assert!(!net.is_quiescent());
    }

    #[test]
    fn isolated_node_terminates_immediately() {
        let g = Csr::from_edges(1, &[]);
        let mut net = flood_network(g);
        let rounds = net.run_until_quiescent(10);
        assert!(net.is_quiescent());
        assert_eq!(rounds, 2); // start round + quiet round
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::FaultPlan;

    use super::tests::flood_network;

    fn path5() -> Csr {
        Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn none_plan_is_bit_identical_to_unfaulted_run() {
        let mut plain = flood_network(path5());
        plain.run_until_quiescent(100);
        let mut faulted = flood_network(path5()).with_faults(FaultPlan::none());
        faulted.run_until_quiescent(100);
        assert_eq!(plain.stats(), faulted.stats());
        for (a, b) in plain.nodes().iter().zip(faulted.nodes()) {
            assert_eq!(a.best, b.best);
        }
    }

    #[test]
    fn crashed_node_stops_stepping_and_receiving() {
        // Crash the max-id node before it can announce itself: the rest
        // of the path must still quiesce, electing the surviving max.
        let plan = FaultPlan::none().with_crash(4, 0);
        let mut net = flood_network(path5()).with_faults(plan);
        net.run_until_quiescent(100);
        assert!(net.is_quiescent(), "crashed node must not block quiescence");
        assert_eq!(net.crashed_nodes(), vec![4]);
        assert_eq!(net.stats().crashed, 1);
        for n in &net.nodes()[..4] {
            assert_eq!(n.best, 3, "survivors elect the surviving max");
        }
    }

    #[test]
    fn late_crash_drops_pending_deliveries_to_the_dead_node() {
        // Node 4 crashes at round 2: messages already addressed to it
        // get dropped at delivery, and dropped accounting stays exact.
        let plan = FaultPlan::none().with_crash(4, 2);
        let mut net = flood_network(path5()).with_faults(plan);
        net.run_until_quiescent(100);
        assert!(net.is_quiescent());
        let delivered: u64 = net.stats().messages - net.stats().dropped;
        assert!(net.stats().dropped > 0, "the dead node had mail pending");
        assert!(delivered > 0);
    }

    #[test]
    fn partition_blocks_traffic_until_it_heals() {
        // MaxFlood only re-sends on change, so it cannot survive a cut;
        // use a node that stubbornly re-broadcasts for a fixed number of
        // rounds — long enough to outlive the partition window.
        struct Chatty {
            best: u32,
            rounds_left: u32,
        }
        impl Node for Chatty {
            type Msg = u32;
            fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
                for env in inbox {
                    self.best = self.best.max(env.msg);
                }
                if self.rounds_left > 0 {
                    self.rounds_left -= 1;
                    out.broadcast(self.best);
                }
            }
            fn is_done(&self) -> bool {
                self.rounds_left == 0
            }
        }
        let nodes = (0..5)
            .map(|i| Chatty {
                best: i,
                rounds_left: 12,
            })
            .collect();
        let plan = FaultPlan::none().with_partition([0, 1, 2], [3, 4], 0, 5);
        let mut net = Network::new(path5(), nodes).with_faults(plan);
        for _ in 0..4 {
            net.run_round();
        }
        assert!(
            net.nodes()[..3].iter().all(|n| n.best <= 2),
            "no cross-cut information while partitioned"
        );
        net.run_until_quiescent(100);
        assert!(net.is_quiescent());
        for n in net.nodes() {
            assert_eq!(n.best, 4, "partition healed, flood completes");
        }
        assert!(net.stats().dropped > 0, "cut messages are accounted");
    }

    #[test]
    fn permanent_partition_still_quiesces_with_split_results() {
        let plan = FaultPlan::none().with_partition([0, 1, 2], [3, 4], 0, u64::MAX);
        let mut net = flood_network(path5()).with_faults(plan);
        net.run_until_quiescent(200);
        assert!(net.is_quiescent());
        assert!(net.nodes()[..3].iter().all(|n| n.best == 2));
        assert!(net.nodes()[3..].iter().all(|n| n.best == 4));
    }

    #[test]
    fn every_sent_message_is_delivered_or_dropped() {
        struct Receipts {
            received: u64,
            sent: bool,
        }
        impl Node for Receipts {
            type Msg = u32;
            fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
                self.received += inbox.len() as u64;
                if !self.sent {
                    self.sent = true;
                    for _ in 0..40 {
                        out.broadcast(1);
                    }
                }
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = (0..3)
            .map(|_| Receipts {
                received: 0,
                sent: false,
            })
            .collect();
        let plan = FaultPlan::seeded(11)
            .with_loss(0.4)
            .with_delay(3)
            .with_crash(2, 2)
            .with_partition([0], [1], 4, 6);
        let mut net = Network::new(g, nodes).with_faults(plan);
        // Cut the run short deliberately: into_parts must still account
        // for messages left in flight.
        net.run_until_quiescent(4);
        let received_so_far: u64 = net.nodes().iter().map(|n| n.received).sum();
        let (nodes, stats) = net.into_parts();
        let received: u64 = nodes.iter().map(|n| n.received).sum();
        assert_eq!(received, received_so_far);
        assert_eq!(
            stats.messages,
            received + stats.dropped,
            "no message may leak: sent == delivered + dropped"
        );
    }

    #[test]
    fn identical_plans_replay_identical_executions() {
        let plan = || {
            FaultPlan::seeded(99)
                .with_loss(0.25)
                .with_delay(2)
                .with_crash(3, 4)
                .with_partition([0, 1], [2], 2, 5)
        };
        let run = || {
            let mut net = flood_network(path5()).with_faults(plan());
            net.run_until_quiescent(300);
            let bests: Vec<u32> = net.nodes().iter().map(|n| n.best).collect();
            let (_, stats) = net.into_parts();
            (bests, stats)
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use crate::node::{Node, Outbox};

    /// Node that broadcasts a fixed number of pings and counts receipts.
    struct Pinger {
        to_send: u32,
        received: u32,
    }

    impl Node for Pinger {
        type Msg = u32;
        fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            self.received += inbox.len() as u32;
            if self.to_send > 0 {
                self.to_send -= 1;
                out.broadcast(1);
            }
        }
        fn is_done(&self) -> bool {
            self.to_send == 0
        }
    }

    fn pair_network(loss: Option<(f64, u64)>) -> Network<Pinger> {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let nodes = vec![
            Pinger {
                to_send: 200,
                received: 0,
            },
            Pinger {
                to_send: 0,
                received: 0,
            },
        ];
        let net = Network::new(g, nodes);
        match loss {
            Some((p, seed)) => net.with_loss(p, seed),
            None => net,
        }
    }

    #[test]
    fn no_loss_delivers_everything() {
        let mut net = pair_network(None);
        net.run_until_quiescent(500);
        assert_eq!(net.nodes()[1].received, 200);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn full_loss_delivers_nothing() {
        let mut net = pair_network(Some((1.0, 0)));
        net.run_until_quiescent(500);
        assert_eq!(net.nodes()[1].received, 0);
        assert_eq!(net.stats().dropped, net.stats().messages);
    }

    #[test]
    fn partial_loss_drops_roughly_p() {
        let mut net = pair_network(Some((0.3, 42)));
        net.run_until_quiescent(500);
        let received = net.nodes()[1].received;
        assert!(
            (100..=180).contains(&received),
            "expected ≈140 of 200 pings, got {received}"
        );
        assert_eq!(net.stats().dropped + received as u64, net.stats().messages);
    }

    #[test]
    fn loss_is_reproducible_per_seed() {
        let run = |seed| {
            let mut net = pair_network(Some((0.5, seed)));
            net.run_until_quiescent(500);
            net.nodes()[1].received
        };
        assert_eq!(run(7), run(7));
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use crate::node::{Node, Outbox};

    /// Sends one burst at round 0; receiver records arrival rounds.
    struct Burst {
        sent: bool,
        arrivals: Vec<u64>,
    }

    impl Node for Burst {
        type Msg = u32;
        fn step(&mut self, round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            for _ in inbox {
                self.arrivals.push(round);
            }
            if !self.sent && out.me() == 0 {
                self.sent = true;
                for _ in 0..50 {
                    out.broadcast(1);
                }
            } else {
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    fn burst_pair(delay: Option<(u64, u64)>) -> Network<Burst> {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let nodes = vec![
            Burst {
                sent: false,
                arrivals: vec![],
            },
            Burst {
                sent: false,
                arrivals: vec![],
            },
        ];
        let net = Network::new(g, nodes);
        match delay {
            Some((max, seed)) => net.with_delay(max, seed),
            None => net,
        }
    }

    #[test]
    fn synchronous_delivery_is_next_round() {
        let mut net = burst_pair(None);
        net.run_until_quiescent(20);
        assert_eq!(net.nodes()[1].arrivals.len(), 50);
        assert!(net.nodes()[1].arrivals.iter().all(|&r| r == 1));
    }

    #[test]
    fn delayed_delivery_spreads_but_loses_nothing() {
        let mut net = burst_pair(Some((4, 9)));
        net.run_until_quiescent(50);
        let arrivals = &net.nodes()[1].arrivals;
        assert_eq!(arrivals.len(), 50, "bounded delay must not lose messages");
        assert!(
            arrivals.iter().all(|&r| (1..=5).contains(&r)),
            "{arrivals:?}"
        );
        // with 50 messages and 5 buckets, at least two distinct rounds
        let distinct: std::collections::BTreeSet<u64> = arrivals.iter().copied().collect();
        assert!(distinct.len() >= 2, "delay jitter should spread arrivals");
    }

    #[test]
    fn zero_extra_delay_equals_synchronous() {
        let mut a = burst_pair(None);
        a.run_until_quiescent(20);
        let mut b = burst_pair(Some((0, 1)));
        b.run_until_quiescent(20);
        assert_eq!(a.nodes()[1].arrivals, b.nodes()[1].arrivals);
    }

    #[test]
    fn quiescence_waits_for_delayed_messages() {
        let mut net = burst_pair(Some((4, 3)));
        // after one round, messages may still be in flight
        net.run_round();
        net.run_round();
        let early = net.nodes()[1].arrivals.len();
        net.run_until_quiescent(50);
        assert!(net.is_quiescent());
        assert!(net.nodes()[1].arrivals.len() >= early);
        assert_eq!(net.nodes()[1].arrivals.len(), 50);
    }
}
