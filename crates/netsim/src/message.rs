//! Message envelopes and payload sizing.

/// A payload that knows its approximate wire size, so [`NetStats`](crate::NetStats)
/// (crate::NetStats) can report communication volume in bytes rather than
/// just message counts.
///
/// The default implementation charges the in-memory size of the value; for
/// payloads holding collections, override with the serialized size (the
/// distributed scheduler counts one `u32` per carried reader/tag id).
pub trait Payload: Clone {
    /// Approximate size of this payload on the wire, in bytes.
    fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

impl Payload for () {}
impl Payload for u32 {}
impl Payload for u64 {}
impl Payload for (u32, u32) {}
impl Payload for Vec<u32> {
    fn size_bytes(&self) -> usize {
        4 * self.len()
    }
}
impl Payload for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// A delivered message: who sent it, who receives it, and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node id.
    pub from: usize,
    /// Receiving node id.
    pub to: usize,
    /// The payload.
    pub msg: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizing_charges_memory_size() {
        assert_eq!(7u32.size_bytes(), 4);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn vec_sizing_charges_elements() {
        assert_eq!(vec![1u32, 2, 3].size_bytes(), 12);
        assert_eq!(Vec::<u32>::new().size_bytes(), 0);
    }

    #[test]
    fn string_sizing_charges_bytes() {
        assert_eq!("hello".to_string().size_bytes(), 5);
    }
}
