#![warn(missing_docs)]
//! # rfid-netsim
//!
//! Synchronous message-passing network simulator — the substrate Algorithm 3
//! (distributed scheduling without location information) executes on.
//!
//! The paper's distributed algorithm is round-based: readers exchange
//! messages with their *interference-graph neighbours* (collecting
//! `(2c+2)`-hop neighbourhood information, announcing `RESULT(Γ_r̄)` within a
//! bounded number of hops, recolouring). This crate models exactly that:
//!
//! * a fixed topology ([`rfid_graph::Csr`]) — one node per reader;
//! * lock-step rounds: every node consumes its inbox, updates state and
//!   emits messages to direct neighbours, which arrive next round;
//! * deterministic delivery (nodes stepped in id order, inboxes sorted);
//! * message/byte accounting ([`NetStats`]) so the experiment harness can
//!   report communication cost alongside schedule quality.
//!
//! Multi-hop primitives (flooding with TTL) are provided as reusable
//! payload-agnostic helpers; protocol logic itself lives with its algorithm
//! in `rfid-core::distributed`.

//! ## Fault injection
//!
//! [`FaultPlan`] unifies message loss, bounded delay, crash-stop node
//! failures and transient partitions behind one seeded, reproducible
//! description consulted by [`Network::run_round`]; see the
//! [`faults`] module for exact semantics.

pub mod faults;
pub mod message;
pub mod network;
pub mod node;
pub mod stats;

pub use faults::{FaultPlan, Partition};
pub use message::{Envelope, Payload};
pub use network::Network;
pub use node::{Node, Outbox};
pub use stats::NetStats;
