//! The node behaviour trait and per-round outbox.

use crate::message::{Envelope, Payload};

/// Messages a node queues during one round; they are delivered to direct
/// topology neighbours at the start of the next round.
#[derive(Debug)]
pub struct Outbox<M> {
    node: usize,
    neighbors: Vec<usize>,
    queued: Vec<Envelope<M>>,
    retransmits: u64,
}

impl<M: Payload> Outbox<M> {
    pub(crate) fn new(node: usize, neighbors: Vec<usize>) -> Self {
        Outbox {
            node,
            neighbors,
            queued: Vec::new(),
            retransmits: 0,
        }
    }

    /// This node's id.
    pub fn me(&self) -> usize {
        self.node
    }

    /// Direct neighbours in the topology, sorted ascending.
    pub fn neighbors(&self) -> &[usize] {
        &self.neighbors
    }

    /// Sends `msg` to a *direct neighbour*. Multi-hop dissemination must be
    /// built from per-hop sends (that is the cost model the paper's
    /// distributed algorithm pays).
    ///
    /// # Panics
    /// If `to` is not a direct neighbour.
    pub fn send(&mut self, to: usize, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "node {} cannot send to non-neighbor {}",
            self.node,
            to
        );
        self.queued.push(Envelope {
            from: self.node,
            to,
            msg,
        });
    }

    /// Sends `msg` to every direct neighbour.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.queued.push(Envelope {
                from: self.node,
                to,
                msg: msg.clone(),
            });
        }
    }

    /// Declares that one of the messages queued this round is a
    /// retransmission, so the network can account it in
    /// [`NetStats::retransmits`](crate::NetStats).
    pub fn note_retransmit(&mut self) {
        self.retransmits += 1;
    }

    pub(crate) fn take(self) -> (Vec<Envelope<M>>, u64) {
        (self.queued, self.retransmits)
    }
}

/// Behaviour of one node in the synchronous network.
///
/// Each round the simulator calls [`step`](Node::step) with the messages
/// that arrived this round (sent by neighbours last round). A node signals
/// completion via [`is_done`](Node::is_done); the network is *quiescent*
/// when every node is done and no messages are in flight.
pub trait Node {
    /// Message type exchanged by this protocol.
    type Msg: Payload;

    /// Consumes this round's inbox and queues outgoing messages.
    /// `inbox` is sorted by sender id for determinism.
    fn step(&mut self, round: u64, inbox: &[Envelope<Self::Msg>], out: &mut Outbox<Self::Msg>);

    /// `true` when the node has terminated its protocol. Default: never —
    /// run with a round budget instead.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut ob: Outbox<u32> = Outbox::new(0, vec![1, 3]);
        assert_eq!(ob.me(), 0);
        ob.send(3, 42);
        ob.broadcast(7);
        ob.note_retransmit();
        let (msgs, retransmits) = ob.take();
        assert_eq!(retransmits, 1);
        assert_eq!(msgs.len(), 3);
        assert_eq!(
            msgs[0],
            Envelope {
                from: 0,
                to: 3,
                msg: 42
            }
        );
        assert_eq!(
            msgs[1],
            Envelope {
                from: 0,
                to: 1,
                msg: 7
            }
        );
        assert_eq!(
            msgs[2],
            Envelope {
                from: 0,
                to: 3,
                msg: 7
            }
        );
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_stranger_panics() {
        let mut ob: Outbox<u32> = Outbox::new(0, vec![1]);
        ob.send(2, 1);
    }
}
