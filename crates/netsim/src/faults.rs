//! Seeded, reproducible fault injection.
//!
//! A [`FaultPlan`] unifies every way this simulator can misbehave —
//! probabilistic message loss, bounded delivery delay, crash-stop node
//! failures, and transient link partitions — behind one description that
//! [`Network::with_faults`](crate::Network::with_faults) consults during
//! execution. The plan is pure data: the same plan (including its seed)
//! replays the exact same fault schedule, which is what makes chaos runs
//! debuggable and the determinism tests possible.
//!
//! Fault semantics:
//!
//! * **Loss** — each message is dropped independently with probability
//!   `loss` at delivery time (tallied in [`NetStats::dropped`](crate::NetStats)).
//! * **Delay** — each message is delayed an extra uniform `0..=max_delay`
//!   rounds beyond the synchronous next-round delivery.
//! * **Crash** — a node scheduled to crash at round `r` executes rounds
//!   `0..r`, then never steps again (crash-stop, no recovery). Messages
//!   delivered to it at round `>= r` are dropped; messages it sent before
//!   crashing still fly.
//! * **Partition** — while a partition window `[from, until)` is active,
//!   messages *delivered* across the cut (either direction) are dropped.
//!   Partitions heal: at round `until` the link carries traffic again.

use std::collections::{BTreeMap, BTreeSet};

/// A transient cut between two node groups during a round window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub group_a: BTreeSet<usize>,
    /// The other side. Nodes in neither group are unaffected.
    pub group_b: BTreeSet<usize>,
    /// First round (inclusive) during which the cut drops messages.
    pub from: u64,
    /// First round (exclusive) at which the cut has healed.
    pub until: u64,
}

impl Partition {
    /// `true` iff a message `a → b` (or `b → a`) crossing at `round` is cut.
    pub fn severs(&self, a: usize, b: usize, round: u64) -> bool {
        if round < self.from || round >= self.until {
            return false;
        }
        (self.group_a.contains(&a) && self.group_b.contains(&b))
            || (self.group_a.contains(&b) && self.group_b.contains(&a))
    }
}

/// A complete, seeded description of the faults one execution suffers.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    loss: f64,
    max_delay: u64,
    /// node id → round at which it crash-stops.
    crashes: BTreeMap<usize, u64>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// The fault-free plan: running a network with it is byte-identical
    /// to running without any plan at all.
    pub fn none() -> Self {
        FaultPlan::seeded(0)
    }

    /// An empty plan carrying a seed for whatever faults get added.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            max_delay: 0,
            crashes: BTreeMap::new(),
            partitions: Vec::new(),
        }
    }

    /// Adds independent per-message loss with probability `p`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.loss = p;
        self
    }

    /// Adds uniform extra delivery delay of `0..=max_extra` rounds.
    pub fn with_delay(mut self, max_extra: u64) -> Self {
        self.max_delay = max_extra;
        self
    }

    /// Schedules `node` to crash-stop at `round` (keeps the earliest
    /// round if scheduled twice).
    pub fn with_crash(mut self, node: usize, round: u64) -> Self {
        let entry = self.crashes.entry(node).or_insert(round);
        *entry = (*entry).min(round);
        self
    }

    /// Schedules a transient partition between `group_a` and `group_b`
    /// over the round window `[from, until)`.
    pub fn with_partition(
        mut self,
        group_a: impl IntoIterator<Item = usize>,
        group_b: impl IntoIterator<Item = usize>,
        from: u64,
        until: u64,
    ) -> Self {
        let group_a: BTreeSet<usize> = group_a.into_iter().collect();
        let group_b: BTreeSet<usize> = group_b.into_iter().collect();
        assert!(
            group_a.is_disjoint(&group_b),
            "partition groups must be disjoint"
        );
        self.partitions.push(Partition {
            group_a,
            group_b,
            from,
            until,
        });
        self
    }

    /// Seed for the plan's loss/delay randomness.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-message loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Maximum extra delivery delay in rounds.
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }

    /// Scheduled crashes as `(node, round)` pairs, ascending by node.
    pub fn crashes(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.crashes.iter().map(|(&n, &r)| (n, r))
    }

    /// Scheduled partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Round at which `node` crash-stops, if scheduled.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes.get(&node).copied()
    }

    /// `true` iff `node` has crash-stopped by `round` (inclusive: a node
    /// crashing at round `r` no longer steps *in* round `r`).
    pub fn is_crashed(&self, node: usize, round: u64) -> bool {
        self.crash_round(node).is_some_and(|r| round >= r)
    }

    /// `true` iff a message `from → to` delivered at `round` is cut by an
    /// active partition.
    pub fn severed(&self, from: usize, to: usize, round: u64) -> bool {
        self.partitions.iter().any(|p| p.severs(from, to, round))
    }

    /// `true` iff this plan can prevent any message from arriving —
    /// protocols use this to decide whether reliability machinery
    /// (acks, retransmission, failure detection) is worth paying for.
    pub fn can_lose_messages(&self) -> bool {
        self.loss > 0.0 || !self.crashes.is_empty() || !self.partitions.is_empty()
    }

    /// `true` iff this plan changes execution at all relative to a
    /// fault-free synchronous run.
    pub fn is_none(&self) -> bool {
        !self.can_lose_messages() && self.max_delay == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.can_lose_messages());
        assert!(!p.is_crashed(0, u64::MAX));
        assert!(!p.severed(0, 1, 0));
    }

    #[test]
    fn crash_semantics_are_inclusive_at_the_crash_round() {
        let p = FaultPlan::none().with_crash(3, 5);
        assert!(!p.is_crashed(3, 4));
        assert!(p.is_crashed(3, 5));
        assert!(p.is_crashed(3, 6));
        assert!(!p.is_crashed(2, 100));
        assert_eq!(p.crash_round(3), Some(5));
        assert!(p.can_lose_messages());
    }

    #[test]
    fn double_crash_keeps_the_earliest_round() {
        let p = FaultPlan::none().with_crash(1, 9).with_crash(1, 4);
        assert_eq!(p.crash_round(1), Some(4));
    }

    #[test]
    fn partitions_cut_both_directions_and_heal() {
        let p = FaultPlan::none().with_partition([0, 1], [2], 3, 6);
        assert!(!p.severed(0, 2, 2), "not yet active");
        assert!(p.severed(0, 2, 3));
        assert!(p.severed(2, 1, 5), "cut is symmetric");
        assert!(!p.severed(0, 2, 6), "healed at `until`");
        assert!(!p.severed(0, 1, 4), "same side unaffected");
        assert!(!p.severed(0, 7, 4), "outsiders unaffected");
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_partition_groups_are_rejected() {
        let _ = FaultPlan::none().with_partition([0, 1], [1, 2], 0, 5);
    }

    #[test]
    fn delay_alone_is_not_lossy() {
        let p = FaultPlan::seeded(7).with_delay(3);
        assert!(!p.can_lose_messages());
        assert!(!p.is_none());
        assert_eq!(p.max_delay(), 3);
        assert_eq!(p.seed(), 7);
    }
}
