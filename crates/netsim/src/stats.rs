//! Communication accounting.

use serde::{Deserialize, Serialize};

/// Cumulative cost of a network execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Synchronous rounds executed.
    pub rounds: u64,
    /// Point-to-point messages sent (a broadcast to `d` neighbours counts
    /// `d` messages — that is the energy model RFID reader networks care
    /// about).
    pub messages: u64,
    /// Total payload volume per [`Payload::size_bytes`](crate::Payload).
    pub bytes: u64,
    /// Messages that were sent but never delivered — lost by the
    /// unreliable-link model, cut by a partition, addressed to a crashed
    /// node, or still in flight when the execution was cut off (0 on
    /// reliable networks). Dropped messages are included in
    /// `messages`/`bytes`: the sender paid for them.
    pub dropped: u64,
    /// Nodes that crash-stopped during the execution (each counted once).
    pub crashed: u64,
    /// Messages re-sent by a reliability layer after a missing ack; a
    /// subset of `messages` (every retransmission is also a send).
    pub retransmits: u64,
}

impl NetStats {
    /// Merges stats from another execution (e.g. parallel components).
    pub fn merge(&mut self, other: &NetStats) {
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.dropped += other.dropped;
        self.crashed += other.crashed;
        self.retransmits += other.retransmits;
    }

    /// The per-field difference `self − earlier` (saturating), for
    /// reporting just the cost of one execution window.
    pub fn delta_since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            rounds: self.rounds.saturating_sub(earlier.rounds),
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            crashed: self.crashed.saturating_sub(earlier.crashed),
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
        }
    }

    /// Bumps the `net.*` counters on `sub` by this record's values.
    /// Observation only — never changes execution.
    pub fn report_to(&self, sub: Option<&dyn rfid_obs::Subscriber>) {
        rfid_obs::counter!(sub, "net.rounds", self.rounds);
        rfid_obs::counter!(sub, "net.messages", self.messages);
        rfid_obs::counter!(sub, "net.bytes", self.bytes);
        rfid_obs::counter!(sub, "net.dropped", self.dropped);
        rfid_obs::counter!(sub, "net.crashed", self.crashed);
        rfid_obs::counter!(sub, "net.retransmits", self.retransmits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_max_rounds_and_sums_volume() {
        let mut a = NetStats {
            rounds: 5,
            messages: 10,
            bytes: 40,
            dropped: 1,
            crashed: 1,
            retransmits: 4,
        };
        let b = NetStats {
            rounds: 8,
            messages: 3,
            bytes: 12,
            dropped: 2,
            crashed: 0,
            retransmits: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            NetStats {
                rounds: 8,
                messages: 13,
                bytes: 52,
                dropped: 3,
                crashed: 1,
                retransmits: 5,
            }
        );
    }
}
