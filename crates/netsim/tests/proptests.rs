//! Property-based tests for the synchronous network simulator.

use proptest::prelude::*;
use rfid_graph::Csr;
use rfid_netsim::{Envelope, Network, Node, Outbox};

/// Echo node: forwards every first-seen token; floods its own id once.
struct Gossip {
    id: u32,
    seen: std::collections::BTreeSet<u32>,
    started: bool,
    idle: bool,
}

impl Node for Gossip {
    type Msg = u32;

    fn step(&mut self, _round: u64, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
        let mut fresh = Vec::new();
        if !self.started {
            self.started = true;
            fresh.push(self.id);
            self.seen.insert(self.id);
        }
        for env in inbox {
            if self.seen.insert(env.msg) {
                fresh.push(env.msg);
            }
        }
        self.idle = fresh.is_empty();
        for f in fresh {
            out.broadcast(f);
        }
    }

    fn is_done(&self) -> bool {
        self.started && self.idle
    }
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = Csr> {
    (1usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..3 * n).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
            Csr::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flooding over any topology terminates and delivers exactly the
    /// component's ids to every node.
    #[test]
    fn gossip_reaches_exactly_the_component(g in arb_graph(24)) {
        let nodes: Vec<Gossip> = (0..g.n())
            .map(|i| Gossip { id: i as u32, seen: Default::default(), started: false, idle: false })
            .collect();
        let mut net = Network::new(g.clone(), nodes);
        // diameter ≤ n, plus start/quiesce slack
        let rounds = net.run_until_quiescent(g.n() as u64 + 5);
        prop_assert!(net.is_quiescent(), "did not converge in {rounds} rounds");
        let (labels, _) = rfid_graph::connected_components(&g);
        for (v, node) in net.nodes().iter().enumerate() {
            let expect: std::collections::BTreeSet<u32> = (0..g.n())
                .filter(|&u| labels[u] == labels[v])
                .map(|u| u as u32)
                .collect();
            prop_assert_eq!(&node.seen, &expect, "node {}", v);
        }
    }

    /// Message accounting: bytes = 4 × messages for u32 payloads, and the
    /// message count equals Σ (tokens a node first-saw) × degree.
    #[test]
    fn stats_are_exact_for_gossip(g in arb_graph(16)) {
        let nodes: Vec<Gossip> = (0..g.n())
            .map(|i| Gossip { id: i as u32, seen: Default::default(), started: false, idle: false })
            .collect();
        let mut net = Network::new(g.clone(), nodes);
        net.run_until_quiescent(g.n() as u64 + 5);
        let stats = *net.stats();
        prop_assert_eq!(stats.bytes, 4 * stats.messages);
        let expected_msgs: u64 = net
            .nodes()
            .iter()
            .enumerate()
            .map(|(v, node)| node.seen.len() as u64 * g.degree(v) as u64)
            .sum();
        prop_assert_eq!(stats.messages, expected_msgs);
    }

    /// Round budgets are respected exactly.
    #[test]
    fn round_budget_is_exact(g in arb_graph(12), budget in 0u64..4) {
        let nodes: Vec<Gossip> = (0..g.n())
            .map(|i| Gossip { id: i as u32, seen: Default::default(), started: false, idle: false })
            .collect();
        let mut net = Network::new(g, nodes);
        let ran = net.run_until_quiescent(budget);
        prop_assert!(ran <= budget);
    }
}
