//! `rfid_obs` — the workspace's tracing/metrics facade.
//!
//! Every layer of the scheduler stack (one-shot schedulers, the MCS
//! drivers, the network simulator) emits spans, events, counters and
//! histograms through a single [`Subscriber`] trait object threaded in by
//! the caller. The design mirrors the `tracing` facade pattern but is
//! deliberately dependency-free so it can sit underneath every crate in
//! the workspace (including `rfid-netsim`, which has no `serde`):
//!
//! * **Instrumentation sites** call the [`span!`], [`event!`],
//!   [`counter!`] and [`histogram!`] macros with an
//!   `Option<&dyn Subscriber>`. With `None` (or a subscriber whose
//!   [`Subscriber::enabled`] is `false`) each macro reduces to a single
//!   predictable branch — the no-op path costs nothing measurable and, by
//!   the determinism contract (DESIGN.md §8), **must not** influence any
//!   scheduling decision.
//! * **Collection** happens in a [`Recorder`]: thread-safe counters,
//!   log₂-bucketed histograms, per-span wall-time totals and an optional
//!   bounded event log. [`Recorder::snapshot`] returns a
//!   [`MetricsSnapshot`] with `BTreeMap`-sorted keys, so two runs of a
//!   deterministic workload produce byte-identical snapshot JSON (wall
//!   times excluded — see [`MetricsSnapshot::to_json`]).
//! * **Per-slot records**: the MCS drivers fill [`SlotMetrics`] rows
//!   (feasible-set size, tags served, fallback flag, wall time) exported
//!   via [`slot_metrics_to_csv`] / [`slot_metrics_to_json`].
//!
//! The determinism contract: subscribers observe; they never steer.
//! Instrumented code must produce bit-identical outputs whether a
//! subscriber is attached or not (enforced by differential proptests in
//! `tests/observability.rs`).

#![warn(missing_docs)]

mod json;
mod recorder;
mod slot;
mod subscriber;

pub use recorder::{HistogramSnapshot, MetricsSnapshot, Recorder, SpanSnapshot};
pub use slot::{slot_metrics_to_csv, slot_metrics_to_json, SlotMetrics};
pub use subscriber::{EventRecord, NoopSubscriber, SpanGuard, Subscriber, Value};

/// Filters a subscriber handle down to `Some` only when it is both
/// present and enabled. The macros route through this so a disabled
/// subscriber costs one branch, exactly like an absent one.
#[inline]
pub fn active(sub: Option<&dyn Subscriber>) -> Option<&dyn Subscriber> {
    match sub {
        Some(s) if s.enabled() => Some(s),
        _ => None,
    }
}

/// Opens a wall-clock span: `let _g = span!(sub, "mcs.slot");`.
///
/// The returned [`SpanGuard`] reports its elapsed nanoseconds to
/// [`Subscriber::span_close`] on drop. Bind it to a named `_`-prefixed
/// variable — a bare `span!(...)` expression drops immediately and times
/// nothing.
#[macro_export]
macro_rules! span {
    ($sub:expr, $name:expr) => {
        $crate::SpanGuard::enter($sub, $name)
    };
}

/// Emits a structured event: `event!(sub, "net.crash", "node" => v);`.
#[macro_export]
macro_rules! event {
    ($sub:expr, $name:expr $(, $key:literal => $value:expr)* $(,)?) => {
        if let Some(s) = $crate::active($sub) {
            s.event($name, &[$(($key, $crate::Value::from($value))),*]);
        }
    };
}

/// Adds `delta` (default 1) to a named monotone counter.
#[macro_export]
macro_rules! counter {
    ($sub:expr, $name:expr) => {
        $crate::counter!($sub, $name, 1u64)
    };
    ($sub:expr, $name:expr, $delta:expr) => {
        if let Some(s) = $crate::active($sub) {
            s.counter($name, $delta as u64);
        }
    };
}

/// Records one observation into a named log₂-bucketed histogram.
#[macro_export]
macro_rules! histogram {
    ($sub:expr, $name:expr, $value:expr) => {
        if let Some(s) = $crate::active($sub) {
            s.histogram($name, $value as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_reach_an_attached_recorder() {
        let rec = Recorder::with_events();
        let sub: Option<&dyn Subscriber> = Some(&rec);
        {
            let _g = span!(sub, "test.span");
            counter!(sub, "test.count", 3);
            counter!(sub, "test.count", 4);
            histogram!(sub, "test.histo", 17);
            event!(sub, "test.event", "reader" => 5usize, "ok" => true);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter("test.count"), 7);
        assert_eq!(snap.histograms["test.histo"].count, 1);
        assert_eq!(snap.histograms["test.histo"].sum, 17);
        assert_eq!(snap.spans["test.span"].count, 1);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.event");
        assert_eq!(events[0].fields[0], ("reader".into(), Value::U64(5)));
    }

    #[test]
    fn none_and_noop_subscribers_are_inert() {
        let none: Option<&dyn Subscriber> = None;
        counter!(none, "x", 1);
        event!(none, "x");
        let noop = NoopSubscriber;
        let sub: Option<&dyn Subscriber> = Some(&noop);
        // `active` filters the disabled subscriber out before any call.
        assert!(active(sub).is_none());
        counter!(sub, "x", 1);
        let _g = span!(sub, "x");
    }

    #[test]
    fn snapshot_json_is_deterministic_across_insertion_orders() {
        let make = |flip: bool| {
            let rec = Recorder::new();
            let sub: Option<&dyn Subscriber> = Some(&rec);
            if flip {
                counter!(sub, "b", 2);
                counter!(sub, "a", 1);
            } else {
                counter!(sub, "a", 1);
                counter!(sub, "b", 2);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(make(false), make(true));
    }
}
