//! The collecting subscriber and its deterministic snapshots.

use crate::json;
use crate::subscriber::{EventRecord, Subscriber, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Events kept by [`Recorder::with_events`] before older ones are
/// counted-but-dropped. Bounds memory on pathological workloads while
/// keeping every event of a normal schedule run.
const EVENT_LOG_CAP: usize = 1 << 16;

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
const N_BUCKETS: usize = 65;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStat>,
    events: Vec<EventRecord>,
    events_dropped: u64,
}

#[derive(Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
    }
}

#[derive(Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    total_nanos: u64,
}

/// The in-memory collecting [`Subscriber`]: thread-safe counters,
/// histograms, span totals and (optionally) a bounded event log.
///
/// Everything except wall-clock span durations is a pure function of the
/// instrumented computation, so deterministic workloads produce identical
/// [`MetricsSnapshot`]s run to run.
#[derive(Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
    record_events: bool,
}

impl Recorder {
    /// A recorder collecting counters, histograms and span totals.
    /// Individual events are counted (`events_seen`) but not stored.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Like [`new`](Self::new), but also keeps the first
    /// `EVENT_LOG_CAP` individual events for trace output.
    pub fn with_events() -> Self {
        Recorder {
            inner: Mutex::default(),
            record_events: true,
        }
    }

    /// A sorted, self-consistent copy of everything collected so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("recorder poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, h)| {
                    (
                        k.to_string(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0 } else { h.min },
                            max: h.max,
                            // Only non-empty buckets, as (bucket upper
                            // bound, count) pairs.
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, &c)| c > 0)
                                .map(|(i, &c)| {
                                    let upper = if i == 0 {
                                        0
                                    } else {
                                        1u64.checked_shl(i as u32).map_or(u64::MAX, |b| b - 1)
                                    };
                                    (upper, c)
                                })
                                .collect(),
                        },
                    )
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&k, s)| {
                    (
                        k.to_string(),
                        SpanSnapshot {
                            count: s.count,
                            total_nanos: s.total_nanos,
                        },
                    )
                })
                .collect(),
        }
    }

    /// The stored events, in emission order (empty unless built by
    /// [`with_events`](Self::with_events)).
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner.lock().expect("recorder poisoned").events.clone()
    }

    /// Events not stored because the log cap was reached.
    pub fn events_dropped(&self) -> u64 {
        self.inner.lock().expect("recorder poisoned").events_dropped
    }
}

impl Subscriber for Recorder {
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry("events_seen").or_default() += 1;
        if self.record_events {
            if inner.events.len() < EVENT_LOG_CAP {
                inner.events.push(EventRecord {
                    name: name.to_string(),
                    fields: fields
                        .iter()
                        .map(|&(k, ref v)| (k.to_string(), v.clone()))
                        .collect(),
                });
            } else {
                inner.events_dropped += 1;
            }
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name).or_default() += delta;
    }

    fn histogram(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.histograms.entry(name).or_default().record(value);
    }

    fn span_close(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let stat = inner.spans.entry(name).or_default();
        stat.count += 1;
        stat.total_nanos = stat.total_nanos.saturating_add(nanos);
    }
}

/// Aggregate of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty log₂ buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Aggregate of one span name at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Closures observed.
    pub count: u64,
    /// Total wall-clock nanoseconds (saturating). Wall time is
    /// measurement, not behaviour: it is excluded from determinism
    /// comparisons and from [`MetricsSnapshot::to_json`] by default.
    pub total_nanos: u64,
}

/// A sorted copy of a [`Recorder`]'s state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl MetricsSnapshot {
    /// The named counter's total, or 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Deterministic JSON rendering: keys sorted, wall-clock span
    /// durations replaced by closure counts only, so two runs of the same
    /// deterministic workload serialize byte-identically.
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// JSON rendering including wall-clock span totals
    /// (`span_total_nanos`) — for human-facing reports, not for
    /// determinism comparisons.
    pub fn to_json_with_timings(&self) -> String {
        self.render(true)
    }

    fn render(&self, timings: bool) -> String {
        let mut out = String::from("{");
        json::push_key(&mut out, "counters");
        out.push('{');
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        out.push('}');
        out.push(',');
        json::push_key(&mut out, "histograms");
        out.push('{');
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                json::array_of(h.buckets.iter().map(|(u, c)| format!("[{u},{c}]")))
            ));
        }
        out.push('}');
        out.push(',');
        json::push_key(&mut out, "spans");
        out.push('{');
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, k);
            if timings {
                out.push_str(&format!(
                    "{{\"count\":{},\"total_nanos\":{}}}",
                    s.count, s.total_nanos
                ));
            } else {
                out.push_str(&format!("{{\"count\":{}}}", s.count));
            }
        }
        out.push('}');
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let rec = Recorder::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            rec.histogram("h", v);
        }
        let snap = rec.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0 → [0,0]; 1 → (0,1]; 2,3 → (1,3]; 4 → (3,7]; 1000 → (511,1023].
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
    }

    #[test]
    fn snapshot_json_omits_wall_time_unless_asked() {
        let rec = Recorder::new();
        rec.span_close("s", 123);
        let snap = rec.snapshot();
        assert!(!snap.to_json().contains("total_nanos"));
        assert!(snap.to_json_with_timings().contains("\"total_nanos\":123"));
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let rec = Recorder::with_events();
        for _ in 0..3 {
            rec.event("e", &[]);
        }
        assert_eq!(rec.events().len(), 3);
        assert_eq!(rec.events_dropped(), 0);
        assert_eq!(rec.snapshot().counter("events_seen"), 3);
    }
}
