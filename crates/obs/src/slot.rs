//! Per-slot metric records produced by the MCS drivers.

use crate::json;

/// What one covering-schedule slot did, as observed by the driver.
///
/// Everything except `wall_nanos` is a pure function of the schedule
/// (so it reconciles exactly with `CoveringSchedule` totals and is safe
/// to compare across runs); `wall_nanos` is measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMetrics {
    /// Slot index within the schedule (0-based activation order).
    pub slot: usize,
    /// Size of the activated feasible scheduling set.
    pub active_readers: usize,
    /// Well-covered tags served this slot.
    pub tags_served: usize,
    /// `true` when the progress guard produced this slot instead of the
    /// one-shot scheduler.
    pub fallback: bool,
    /// Wall-clock time spent producing the slot (scheduling + weight
    /// accounting). Excluded from determinism comparisons.
    pub wall_nanos: u64,
}

impl SlotMetrics {
    fn to_json_row(&self) -> String {
        format!(
            "{{\"slot\":{},\"active_readers\":{},\"tags_served\":{},\"fallback\":{},\"wall_nanos\":{}}}",
            self.slot, self.active_readers, self.tags_served, self.fallback, self.wall_nanos
        )
    }
}

/// Renders slot records as a JSON array (one object per slot).
pub fn slot_metrics_to_json(slots: &[SlotMetrics]) -> String {
    json::array_of(slots.iter().map(SlotMetrics::to_json_row))
}

/// Renders slot records as CSV with a header row.
pub fn slot_metrics_to_csv(slots: &[SlotMetrics]) -> String {
    let mut out = String::from("slot,active_readers,tags_served,fallback,wall_nanos\n");
    for s in slots {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            s.slot, s.active_readers, s.tags_served, s.fallback, s.wall_nanos
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SlotMetrics> {
        vec![
            SlotMetrics {
                slot: 0,
                active_readers: 3,
                tags_served: 17,
                fallback: false,
                wall_nanos: 1200,
            },
            SlotMetrics {
                slot: 1,
                active_readers: 1,
                tags_served: 1,
                fallback: true,
                wall_nanos: 300,
            },
        ]
    }

    #[test]
    fn csv_has_header_and_one_row_per_slot() {
        let csv = slot_metrics_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "slot,active_readers,tags_served,fallback,wall_nanos"
        );
        assert_eq!(lines[2], "1,1,1,true,300");
    }

    #[test]
    fn json_is_an_array_of_objects() {
        let j = slot_metrics_to_json(&sample());
        assert!(j.starts_with('['));
        assert!(j.contains("\"fallback\":true"));
        assert_eq!(slot_metrics_to_json(&[]), "[]");
    }
}
