//! The [`Subscriber`] trait, event field values and the RAII span guard.

use std::time::Instant;

/// A dynamically-typed event field value.
///
/// Covers the shapes instrumentation sites actually emit (ids, counts,
/// flags, labels); `From` impls let the [`event!`](crate::event!) macro
/// accept plain Rust values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, weights).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static label.
    Str(&'static str),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded event: name plus field key/value pairs, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (dot-separated, e.g. `"net.crash"`).
    pub name: String,
    /// Field key/value pairs as emitted.
    pub fields: Vec<(String, Value)>,
}

/// The observation sink threaded through instrumented code.
///
/// Contract (DESIGN.md §8): implementations *observe* — they must not
/// feed anything back into the instrumented computation, and instrumented
/// code must behave bit-identically whether a subscriber is attached or
/// not. All methods take `&self`; implementations shared across parallel
/// scoring threads must be internally synchronised (`Send + Sync`).
pub trait Subscriber: Send + Sync {
    /// `false` silences this subscriber at every instrumentation site
    /// before any argument is materialised (see [`crate::active`]).
    fn enabled(&self) -> bool {
        true
    }

    /// A structured point event.
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]);

    /// Adds `delta` to the named monotone counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// Records one observation into the named histogram.
    fn histogram(&self, name: &'static str, value: u64);

    /// A span closed after `nanos` wall-clock nanoseconds.
    fn span_close(&self, name: &'static str, nanos: u64);
}

/// The always-disabled subscriber: every site short-circuits before
/// calling in, so attaching it is equivalent to attaching `None`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self) -> bool {
        false
    }

    fn event(&self, _name: &'static str, _fields: &[(&'static str, Value)]) {}

    fn counter(&self, _name: &'static str, _delta: u64) {}

    fn histogram(&self, _name: &'static str, _value: u64) {}

    fn span_close(&self, _name: &'static str, _nanos: u64) {}
}

/// RAII wall-clock span: created by [`span!`](crate::span!), reports the
/// elapsed time to [`Subscriber::span_close`] on drop. When no enabled
/// subscriber is attached the guard holds nothing and the clock is never
/// read.
#[must_use = "a span guard times its enclosing scope; bind it to a variable"]
pub struct SpanGuard<'a> {
    /// `Some` only when an enabled subscriber will receive the close.
    armed: Option<(&'a dyn Subscriber, Instant)>,
    name: &'static str,
}

impl<'a> SpanGuard<'a> {
    /// Opens the span (used via the [`span!`](crate::span!) macro).
    #[inline]
    pub fn enter(sub: Option<&'a dyn Subscriber>, name: &'static str) -> Self {
        SpanGuard {
            armed: crate::active(sub).map(|s| (s, Instant::now())),
            name,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((sub, start)) = self.armed.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sub.span_close(self.name, nanos);
        }
    }
}
