//! Minimal JSON string assembly shared by the snapshot and slot-metrics
//! exporters. `rfid_obs` has no `serde` dependency, so it writes its own
//! (strictly valid, deterministic) JSON; consumers re-parse it with
//! whatever JSON stack they use.

/// Appends `s` as a JSON string literal.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` (with escaping).
pub fn push_key(out: &mut String, key: &str) {
    push_str_escaped(out, key);
    out.push(':');
}

/// Joins pre-rendered JSON values into an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}
