//! Property-based tests for the simulation layer: audited schedules,
//! mobility, dynamic arrivals, placement and the metrics.

use proptest::prelude::*;
use rfid_core::{make_scheduler, verify_covering_schedule, AlgorithmKind};
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind};
use rfid_sim::metrics::{activation_churn, aggregate_point};
use rfid_sim::{
    coverage_fraction, greedy_placement, run_dynamic, DynamicConfig, LinkLayer, MobilityModel,
    MobilitySim, SlotSimulator, Timetable,
};

fn arb_scenario() -> impl Strategy<Value = (Scenario, u64)> {
    (
        2usize..18,
        10usize..120,
        4.0..18.0f64,
        2.0..9.0f64,
        0u64..1000,
    )
        .prop_map(|(n_readers, n_tags, lambda_big, lambda_small, seed)| {
            (
                Scenario {
                    kind: ScenarioKind::UniformRandom,
                    n_readers,
                    n_tags,
                    region_side: 80.0,
                    radius_model: RadiusModel::PoissonPair {
                        lambda_interference: lambda_big,
                        lambda_interrogation: lambda_small,
                    },
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The audited simulator completes and its schedule verifies from
    /// first principles, for random scenarios and every paper algorithm.
    #[test]
    fn audited_runs_always_verify((scenario, seed) in arb_scenario(), kind_idx in 0usize..5) {
        let kind = AlgorithmKind::paper_lineup()[kind_idx];
        let d = scenario.generate(seed);
        let sim = SlotSimulator::new(&d);
        let mut s = make_scheduler(kind, seed);
        let report = sim.run(s.as_mut());
        prop_assert_eq!(verify_covering_schedule(&d, &report.schedule), Ok(()));
    }

    /// With a real ALOHA link layer, every well-covered tag is identified
    /// and the micro-slot budget is at least one per tag.
    #[test]
    fn link_layer_always_completes((scenario, seed) in arb_scenario()) {
        let d = scenario.generate(seed);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::Aloha;
        sim.seed = seed;
        let mut s = make_scheduler(AlgorithmKind::HillClimbing, seed);
        let report = sim.run(s.as_mut());
        prop_assert!(report.link_layer_complete);
        prop_assert!(report.total_microslots >= report.schedule.tags_served() as u64);
    }

    /// Mobility accounting: per-epoch serves sum to the total, nothing is
    /// served twice, and total + remaining = tag count.
    #[test]
    fn mobility_accounting_balances((scenario, seed) in arb_scenario(), speed in 1.0..15.0f64) {
        let initial = scenario.generate(seed);
        let n_tags = initial.n_tags();
        let sim = MobilitySim {
            initial,
            model: MobilityModel::RandomWaypoint { speed },
            slots_per_epoch: 1,
            max_epochs: 30,
            seed,
        };
        let mut s = make_scheduler(AlgorithmKind::HillClimbing, seed);
        let report = sim.run(s.as_mut());
        let per_epoch: usize = report.epochs.iter().map(|e| e.served).sum();
        prop_assert_eq!(per_epoch, report.total_served);
        prop_assert_eq!(report.total_served + report.remaining_unread, n_tags);
    }

    /// Dynamic arrivals: throughput ≤ offered load (long-run), latency
    /// non-negative, served ≤ arrived + warm-up carry-over.
    #[test]
    fn dynamic_arrivals_conservation((scenario, seed) in arb_scenario(), rate in 0.5..10.0f64) {
        let readers = scenario.generate(seed);
        let config = DynamicConfig { arrival_rate: rate, slots: 30, warmup: 5, seed };
        let mut s = make_scheduler(AlgorithmKind::HillClimbing, seed);
        let report = run_dynamic(&readers, config, s.as_mut());
        prop_assert!(report.mean_latency >= 0.0);
        // generous: warm-up backlog can spill into the window
        prop_assert!(report.served <= report.arrived + (rate.ceil() as usize + 1) * 6);
    }

    /// Placement: coverage fraction is monotone in the reader budget and
    /// always within [0, 1].
    #[test]
    fn placement_coverage_is_monotone(seed in 0u64..500, tags_n in 20usize..120) {
        use rand::SeedableRng;
        use rfid_geometry::sampling::uniform_points;
        let region = rfid_geometry::Rect::square(100.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let tags = uniform_points(&mut rng, tags_n, region);
        let m = RadiusModel::Fixed { interference: 12.0, interrogation: 8.0 };
        let mut prev = 0.0;
        for k in [1usize, 3, 6] {
            let frac = coverage_fraction(&greedy_placement(region, &tags, k, m, seed));
            prop_assert!((0.0..=1.0).contains(&frac));
            prop_assert!(frac + 1e-12 >= prev);
            prev = frac;
        }
    }

    /// Timetable totals equal schedule totals, duty cycles in [0, 1].
    #[test]
    fn timetable_invariants((scenario, seed) in arb_scenario()) {
        let d = scenario.generate(seed);
        let c = Coverage::build(&d);
        let g = rfid_model::interference::interference_graph(&d);
        let mut s = make_scheduler(AlgorithmKind::LocalGreedy, seed);
        let schedule = rfid_core::covering_schedule_with(
            &d, &c, &g, s.as_mut(), &rfid_core::McsOptions::new().max_slots(50_000),
        )
        .expect("strict covering schedule diverged")
        .schedule;
        let t = Timetable::build(&schedule, d.n_readers());
        for v in 0..d.n_readers() {
            prop_assert!((0.0..=1.0).contains(&t.duty_cycle(v)));
            prop_assert!(t.switch_count(v).is_multiple_of(2), "every power-up has a power-down");
        }
        let active: Vec<Vec<usize>> = schedule.slots.iter().map(|s| s.active.clone()).collect();
        prop_assert!((0.0..=1.0).contains(&activation_churn(&active)));
    }

    /// aggregate_point statistics are exact for arbitrary samples.
    #[test]
    fn aggregation_statistics(values in proptest::collection::vec(-100.0..100.0f64, 1..40)) {
        let p = aggregate_point(1.0, &values);
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((p.mean - mean).abs() < 1e-9);
        prop_assert!(p.min <= p.mean + 1e-9 && p.mean <= p.max + 1e-9);
        prop_assert!(p.std_dev >= 0.0);
        prop_assert_eq!(p.n, values.len());
    }
}
