//! Mobile-reader simulation — the dynamism the paper motivates its
//! location-free algorithms with.
//!
//! "In a more realistic model, the position of each reader is often highly
//! dynamic and we can not expect that their exact geometry location can
//! always be obtained." (Section I.) Handheld or forklift-mounted readers
//! move; the interference graph drifts every epoch, but the graph-only
//! algorithms (2 and 3) need nothing beyond a fresh neighbourhood probe,
//! while Algorithm 1 would require a full RF re-survey of coordinates.
//!
//! The simulation runs in *epochs*: readers move under a mobility model,
//! the derived structures (interference graph, coverage) are rebuilt, the
//! scheduler is invoked for a fixed number of slots, and served tags leave
//! the system. The report tracks per-epoch service and how quickly the
//! deployment drains.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_core::{OneShotInput, OneShotScheduler};
use rfid_delta::ScenarioDelta;
use rfid_geometry::{Point, Rect};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Deployment, TagSet, WeightEvaluator};
use serde::{Deserialize, Serialize};

/// How readers move between epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityModel {
    /// Independent Gaussian jitter per epoch (σ in region units), clamped
    /// to the region. Models forklift-style local movement.
    RandomWalk {
        /// Standard deviation of the per-epoch displacement.
        sigma: f64,
    },
    /// Classic random waypoint: each reader moves toward a private target
    /// at `speed` units per epoch; on arrival it draws a new target.
    RandomWaypoint {
        /// Distance travelled per epoch.
        speed: f64,
    },
}

/// One epoch's outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Tags served in this epoch (across its slots).
    pub served: usize,
    /// Interference-graph edges after the move.
    pub edges: usize,
    /// Slots actually used (≤ `slots_per_epoch`; fewer when drained).
    pub slots_used: usize,
}

/// Full mobile run outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MobilityReport {
    /// Per-epoch records in simulation order.
    pub epochs: Vec<EpochRecord>,
    /// Tags served over the whole run.
    pub total_served: usize,
    /// Coverable-at-some-point tags still unread when the run ended.
    pub remaining_unread: usize,
}

impl MobilityReport {
    /// Epochs until everything reachable was served (or `None` if the run
    /// ended first).
    pub fn epochs_to_drain(&self) -> Option<usize> {
        if self.remaining_unread == 0 {
            Some(self.epochs.len())
        } else {
            None
        }
    }
}

/// Epoch-based simulation of a deployment with mobile readers and static
/// tags.
pub struct MobilitySim {
    /// Initial deployment (positions are the epoch-0 reader locations).
    pub initial: Deployment,
    /// How readers move between epochs.
    pub model: MobilityModel,
    /// Scheduler invocations per epoch before readers move again.
    pub slots_per_epoch: usize,
    /// Hard cap on simulated epochs.
    pub max_epochs: usize,
    /// RNG seed for movement.
    pub seed: u64,
}

impl MobilitySim {
    /// Runs the simulation with the given one-shot scheduler.
    pub fn run(&self, scheduler: &mut dyn OneShotScheduler) -> MobilityReport {
        assert!(self.slots_per_epoch >= 1 && self.max_epochs >= 1);
        let region = self.initial.region();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut positions: Vec<Point> = self.initial.reader_positions().to_vec();
        let mut waypoints: Vec<Point> = positions.clone();
        let mut unread = TagSet::all_unread(self.initial.n_tags());
        let mut epochs = Vec::new();
        let mut total_served = 0usize;
        for _ in 0..self.max_epochs {
            if unread.remaining() == 0 {
                break;
            }
            // Rebuild the world at the current positions.
            let d = Deployment::new(
                region,
                positions.clone(),
                self.initial.interference_radii().to_vec(),
                self.initial.interrogation_radii().to_vec(),
                self.initial.tag_positions().to_vec(),
            );
            let coverage = Coverage::build(&d);
            let graph = interference_graph(&d);
            let mut weights = WeightEvaluator::new(&coverage);
            let mut served_this_epoch = 0usize;
            let mut slots_used = 0usize;
            for _ in 0..self.slots_per_epoch {
                let input = OneShotInput::new(&d, &coverage, &graph, &unread);
                let active = scheduler.schedule(&input);
                debug_assert!(d.is_feasible(&active));
                let served = weights.well_covered(&active, &unread);
                if served.is_empty() {
                    break; // nothing reachable this epoch — move on
                }
                slots_used += 1;
                served_this_epoch += served.len();
                unread.mark_all_read(&served);
            }
            total_served += served_this_epoch;
            epochs.push(EpochRecord {
                served: served_this_epoch,
                edges: graph.m(),
                slots_used,
            });
            // Move readers for the next epoch.
            self.advance(&mut rng, region, &mut positions, &mut waypoints);
        }
        MobilityReport {
            epochs,
            total_served,
            remaining_unread: unread.remaining(),
        }
    }

    /// The first `epochs` epoch transitions as [`ScenarioDelta`]
    /// streams: element `e` holds the `MoveReader` ops that turn the
    /// epoch-`e` deployment into the epoch-`e+1` one (readers that did
    /// not move emit nothing). The movement RNG is dedicated and seeded
    /// from `self.seed` exactly as in [`run`](MobilitySim::run), so
    /// folding the stream over `initial` with
    /// [`rfid_delta::apply_ops`] reproduces the precise reader
    /// trajectories the simulation schedules against — a serve client
    /// can follow a mobile deployment with one delta frame per epoch.
    pub fn delta_stream(&self, epochs: usize) -> Vec<Vec<ScenarioDelta>> {
        let region = self.initial.region();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut positions = self.initial.reader_positions().to_vec();
        let mut waypoints = positions.clone();
        let mut stream = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let before = positions.clone();
            self.advance(&mut rng, region, &mut positions, &mut waypoints);
            stream.push(
                positions
                    .iter()
                    .enumerate()
                    .filter(|&(i, p)| *p != before[i])
                    .map(|(i, p)| ScenarioDelta::MoveReader {
                        reader: i as u32,
                        x: p.x,
                        y: p.y,
                    })
                    .collect(),
            );
        }
        stream
    }

    fn advance(
        &self,
        rng: &mut ChaCha8Rng,
        region: Rect,
        positions: &mut [Point],
        waypoints: &mut [Point],
    ) {
        match self.model {
            MobilityModel::RandomWalk { sigma } => {
                assert!(sigma >= 0.0);
                for p in positions.iter_mut() {
                    // Box–Muller via two uniforms.
                    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.random();
                    let r = (-2.0 * u1.ln()).sqrt();
                    let (dx, dy) = (
                        r * (std::f64::consts::TAU * u2).cos() * sigma,
                        r * (std::f64::consts::TAU * u2).sin() * sigma,
                    );
                    p.x = (p.x + dx).clamp(region.min_x, region.max_x);
                    p.y = (p.y + dy).clamp(region.min_y, region.max_y);
                }
            }
            MobilityModel::RandomWaypoint { speed } => {
                assert!(speed >= 0.0);
                for (p, w) in positions.iter_mut().zip(waypoints.iter_mut()) {
                    let to = *w - *p;
                    let dist = to.len();
                    if dist <= speed {
                        *p = *w;
                        *w = Point::new(
                            region.min_x + rng.random::<f64>() * region.width(),
                            region.min_y + rng.random::<f64>() * region.height(),
                        );
                    } else if let Some(dir) = to.normalized() {
                        *p = *p + dir * speed;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_core::{make_scheduler, AlgorithmKind};
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn sparse_scenario(seed: u64) -> Deployment {
        // Few short-range readers: static scheduling strands far tags,
        // mobility rescues them.
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 8,
            n_tags: 150,
            region_side: 100.0,
            radius_model: RadiusModel::Fixed {
                interference: 12.0,
                interrogation: 8.0,
            },
        }
        .generate(seed)
    }

    fn sim(model: MobilityModel, seed: u64) -> MobilitySim {
        MobilitySim {
            initial: sparse_scenario(seed),
            model,
            slots_per_epoch: 2,
            max_epochs: 120,
            seed,
        }
    }

    #[test]
    fn mobility_serves_more_than_static_coverage() {
        let s = sim(MobilityModel::RandomWaypoint { speed: 10.0 }, 3);
        let static_coverable = Coverage::build(&s.initial).coverable_count();
        let mut scheduler = make_scheduler(AlgorithmKind::LocalGreedy, 0);
        let report = s.run(scheduler.as_mut());
        assert!(
            report.total_served > static_coverable,
            "mobility should reach beyond the static footprint ({} vs {static_coverable})",
            report.total_served
        );
    }

    #[test]
    fn walk_eventually_drains_most_tags() {
        let s = sim(MobilityModel::RandomWalk { sigma: 6.0 }, 5);
        let mut scheduler = make_scheduler(AlgorithmKind::HillClimbing, 0);
        let report = s.run(scheduler.as_mut());
        let total = s.initial.n_tags();
        assert!(
            report.total_served * 10 >= total * 8,
            "random walk should reach ≥80% of tags ({}/{total})",
            report.total_served
        );
        assert_eq!(report.total_served + report.remaining_unread, total);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let s = sim(MobilityModel::RandomWaypoint { speed: 8.0 }, 9);
            let mut scheduler = make_scheduler(AlgorithmKind::LocalGreedy, 1);
            s.run(scheduler.as_mut())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_speed_equals_static() {
        let s = sim(MobilityModel::RandomWaypoint { speed: 0.0 }, 2);
        let static_coverable = Coverage::build(&s.initial).coverable_count();
        let mut scheduler = make_scheduler(AlgorithmKind::LocalGreedy, 0);
        let report = s.run(scheduler.as_mut());
        assert_eq!(report.total_served, static_coverable);
        assert!(report.epochs_to_drain().is_none() || report.remaining_unread == 0);
    }

    #[test]
    fn delta_stream_reproduces_the_reader_trajectory() {
        let s = sim(MobilityModel::RandomWaypoint { speed: 9.0 }, 11);
        let epochs = 6;
        let stream = s.delta_stream(epochs);
        assert_eq!(stream.len(), epochs);
        assert!(stream
            .iter()
            .flatten()
            .all(|op| matches!(op, ScenarioDelta::MoveReader { .. })));

        // Replay the movement directly (same dedicated RNG) and check
        // that folding each epoch's ops with the real delta engine
        // lands every reader on the identical position.
        let region = s.initial.region();
        let mut rng = ChaCha8Rng::seed_from_u64(s.seed);
        let mut positions = s.initial.reader_positions().to_vec();
        let mut waypoints = positions.clone();
        let mut current = s.initial.clone();
        for ops in &stream {
            s.advance(&mut rng, region, &mut positions, &mut waypoints);
            current = rfid_delta::apply_ops(&current, ops)
                .expect("stream ops are in range")
                .deployment;
            assert_eq!(current.reader_positions(), positions.as_slice());
        }
        assert!(
            stream.iter().any(|ops| !ops.is_empty()),
            "waypoint motion at speed 9 must move someone"
        );
        // Tags never move in this model.
        assert_eq!(current.tag_positions(), s.initial.tag_positions());
    }

    #[test]
    fn zero_speed_stream_is_all_empty() {
        let s = sim(MobilityModel::RandomWaypoint { speed: 0.0 }, 4);
        assert!(s.delta_stream(8).iter().all(Vec::is_empty));
    }

    #[test]
    fn epoch_accounting_is_consistent() {
        let s = sim(MobilityModel::RandomWalk { sigma: 4.0 }, 7);
        let mut scheduler = make_scheduler(AlgorithmKind::HillClimbing, 0);
        let report = s.run(scheduler.as_mut());
        let per_epoch: usize = report.epochs.iter().map(|e| e.served).sum();
        assert_eq!(per_epoch, report.total_served);
        assert!(report.epochs.len() <= 120);
        for e in &report.epochs {
            assert!(e.slots_used <= 2);
        }
    }
}
