//! Audited slot-level system simulation.
//!
//! [`SlotSimulator`] drives a one-shot scheduler through a full covering
//! schedule, auditing every slot against the collision model
//! ([`rfid_model::audit_activation`]) and optionally running a real
//! link-layer inventory ([`rfid_protocols`]) for each active reader to
//! account micro-slot costs — grounding the paper's slot-sizing assumption
//! in actual arbitration behaviour.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_core::{covering_schedule_with, CoveringSchedule, McsOptions, OneShotScheduler};
use rfid_model::interference::interference_graph;
use rfid_model::{audit_activation, Coverage, Deployment, TagId, TagSet};
use rfid_obs::{SlotMetrics, Subscriber};
use rfid_protocols::{AntiCollisionProtocol, FramedAloha, TreeWalking};
use serde::{Deserialize, Serialize};

/// Which tag anti-collision protocol models the intra-slot arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkLayer {
    /// Skip intra-slot simulation (the paper's abstraction).
    None,
    /// Framed-slotted ALOHA (adaptive).
    Aloha,
    /// Deterministic binary tree-walking.
    TreeWalking,
}

/// Outcome of an audited covering-schedule run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The schedule itself (slots, served tags, fallbacks).
    pub schedule: CoveringSchedule,
    /// Total micro-slots consumed by the link layer across all slots and
    /// readers (0 when [`LinkLayer::None`]).
    pub total_microslots: u64,
    /// Worst per-(slot, reader) micro-slot count — how long the paper's
    /// "time slot" must really be for its assumption to hold.
    pub max_microslots_per_slot: u64,
    /// Every (slot, reader) inventory identified all its well-covered tags.
    pub link_layer_complete: bool,
    /// Served tags whose active coverer could not be identified during the
    /// link-layer replay; they are skipped (and counted here) instead of
    /// aborting the run. Always 0 for schedules from a sound scheduler.
    pub orphaned_tags: u64,
}

/// Outcome of a fault-tolerant simulation run: the audited report plus the
/// degradations the resilient covering-schedule loop absorbed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilientSimReport {
    /// The audited report over the repaired schedule.
    pub report: SimReport,
    /// RTc pairs broken up in-slot (lower-weight member dropped).
    pub repaired_pairs: usize,
    /// Activation entries stripped because their reader had crashed.
    pub crashed_dropped: usize,
    /// Coverable tags no surviving activation could serve.
    pub abandoned_tags: Vec<TagId>,
}

/// An audited covering-schedule simulator for one deployment.
pub struct SlotSimulator<'a> {
    deployment: &'a Deployment,
    coverage: Coverage,
    graph: rfid_graph::Csr,
    /// Cap on schedule length before the run is declared divergent.
    pub max_slots: usize,
    /// Intra-slot arbitration model.
    pub link_layer: LinkLayer,
    /// Seed for the link-layer RNG.
    pub seed: u64,
}

impl<'a> SlotSimulator<'a> {
    /// Prepares the derived structures for `deployment`.
    pub fn new(deployment: &'a Deployment) -> Self {
        SlotSimulator {
            deployment,
            coverage: Coverage::build(deployment),
            graph: interference_graph(deployment),
            max_slots: 100_000,
            link_layer: LinkLayer::None,
            seed: 0,
        }
    }

    /// Derived coverage table.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Derived interference graph.
    pub fn graph(&self) -> &rfid_graph::Csr {
        &self.graph
    }

    /// Runs `scheduler` to completion with per-slot audits.
    ///
    /// # Panics
    /// If any slot violates the collision model: an RTc pair inside an
    /// activation, or a served set differing from the audited well-covered
    /// set — both would indicate a scheduler bug, and the simulator's whole
    /// point is to catch them.
    pub fn run(&self, scheduler: &mut dyn OneShotScheduler) -> SimReport {
        let run = covering_schedule_with(
            self.deployment,
            &self.coverage,
            &self.graph,
            scheduler,
            &McsOptions::new().max_slots(self.max_slots),
        )
        .expect("strict covering schedule diverged");
        self.replay(run.schedule, true)
    }

    /// [`run`](Self::run) with per-slot [`SlotMetrics`] collected and
    /// scheduler instrumentation routed to `sub` (pass `None` for metrics
    /// only). The schedule is bit-identical to an unobserved [`run`].
    pub fn run_with_metrics(
        &self,
        scheduler: &mut dyn OneShotScheduler,
        sub: Option<&dyn Subscriber>,
    ) -> (SimReport, Vec<SlotMetrics>) {
        let mut options = McsOptions::new()
            .max_slots(self.max_slots)
            .slot_metrics(true);
        if let Some(s) = sub {
            options = options.subscriber(s);
        }
        let run = covering_schedule_with(
            self.deployment,
            &self.coverage,
            &self.graph,
            scheduler,
            &options,
        )
        .expect("strict covering schedule diverged");
        (self.replay(run.schedule, true), run.slot_metrics)
    }

    /// Runs `scheduler` through the crash-tolerant covering-schedule loop
    /// ([`rfid_core::FaultPolicy::Resilient`]): infeasible activations are
    /// repaired, crashed readers stripped (their tags requeued), and tags
    /// out of every survivor's reach abandoned — nothing panics. The
    /// returned schedule is still audited slot by slot.
    pub fn run_resilient(&self, scheduler: &mut dyn OneShotScheduler) -> ResilientSimReport {
        let resilient = covering_schedule_with(
            self.deployment,
            &self.coverage,
            &self.graph,
            scheduler,
            &McsOptions::new().max_slots(self.max_slots).resilient(),
        )
        .expect("resilient runs cannot fail");
        ResilientSimReport {
            report: self.replay(resilient.schedule, false),
            repaired_pairs: resilient.repaired_pairs,
            crashed_dropped: resilient.crashed_dropped,
            abandoned_tags: resilient.abandoned_tags,
        }
    }

    /// Re-plays `schedule` slot by slot, auditing each activation against
    /// the collision model and (optionally) running the link layer.
    /// `strict` controls whether an audit violation panics (the sound
    /// schedulers' contract) or is tolerated (resilient runs, where the
    /// repair upstream already guarantees feasibility).
    fn replay(&self, schedule: CoveringSchedule, strict: bool) -> SimReport {
        let mut unread = TagSet::all_unread(self.deployment.n_tags());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut total_microslots = 0u64;
        let mut max_microslots = 0u64;
        let mut link_layer_complete = true;
        let mut orphaned_tags = 0u64;
        for (i, slot) in schedule.slots.iter().enumerate() {
            let audit = audit_activation(self.deployment, &self.coverage, &slot.active, &unread);
            if strict {
                assert!(
                    audit.is_feasible(),
                    "slot {i}: RTc pairs {:?} in activation {:?}",
                    audit.rtc_pairs,
                    slot.active
                );
                assert_eq!(
                    audit.well_covered, slot.served,
                    "slot {i}: served set disagrees with the Definition-1 audit"
                );
            } else {
                debug_assert!(audit.is_feasible(), "resilient repair left an RTc pair");
            }
            // Link layer: each active reader arbitrates its own served tags
            // (readers are independent, so inventories run in parallel; the
            // slot's micro-slot length is the per-reader maximum).
            if self.link_layer != LinkLayer::None {
                // Assign each served tag to its unique active coverer.
                let mut per_reader: std::collections::BTreeMap<usize, Vec<u64>> =
                    Default::default();
                for &t in &slot.served {
                    let coverer = self
                        .coverage
                        .readers_of(t)
                        .iter()
                        .map(|&r| r as usize)
                        .find(|r| slot.active.contains(r));
                    match coverer {
                        Some(coverer) => per_reader.entry(coverer).or_default().push(t as u64),
                        // A served tag with no active coverer means the
                        // schedule was externally degraded; skip it rather
                        // than abort the whole replay.
                        None => orphaned_tags += 1,
                    }
                }
                let mut slot_max = 0u64;
                for (_, tags) in per_reader {
                    let outcome = match self.link_layer {
                        LinkLayer::Aloha => FramedAloha::default().inventory(&tags, &mut rng),
                        LinkLayer::TreeWalking => TreeWalking::default().inventory(&tags, &mut rng),
                        LinkLayer::None => unreachable!(),
                    };
                    link_layer_complete &= outcome.unresolved.is_empty();
                    total_microslots += outcome.total_slots;
                    slot_max = slot_max.max(outcome.total_slots);
                }
                max_microslots = max_microslots.max(slot_max);
            }
            unread.mark_all_read(&slot.served);
        }
        SimReport {
            schedule,
            total_microslots,
            max_microslots_per_slot: max_microslots,
            link_layer_complete,
            orphaned_tags,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_core::{ExactScheduler, HillClimbing};
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    fn scenario(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 15,
            n_tags: 150,
            region_side: 70.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 10.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn audited_run_completes() {
        let d = scenario(0);
        let sim = SlotSimulator::new(&d);
        let report = sim.run(&mut HillClimbing::default());
        assert_eq!(
            report.schedule.tags_served(),
            sim.coverage().coverable_count()
        );
        assert_eq!(report.total_microslots, 0);
    }

    #[test]
    fn aloha_link_layer_reads_everything() {
        let d = scenario(1);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::Aloha;
        let report = sim.run(&mut ExactScheduler::default());
        assert!(report.link_layer_complete);
        assert!(report.total_microslots > 0);
        assert!(report.max_microslots_per_slot > 0);
        // The slot-sizing assumption: every slot identified ≥ 1 tag, so the
        // micro-slot budget per slot is finite and was measured.
        assert!(report.max_microslots_per_slot < 100_000);
    }

    #[test]
    fn resilient_run_matches_strict_run_without_faults() {
        let d = scenario(0);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::TreeWalking;
        let strict = sim.run(&mut ExactScheduler::default());
        let resilient = sim.run_resilient(&mut ExactScheduler::default());
        assert_eq!(resilient.report.schedule, strict.schedule);
        assert_eq!(resilient.report.total_microslots, strict.total_microslots);
        assert_eq!(resilient.repaired_pairs, 0);
        assert_eq!(resilient.crashed_dropped, 0);
        assert!(resilient.abandoned_tags.is_empty());
        assert_eq!(strict.orphaned_tags, 0);
    }

    #[test]
    fn resilient_run_survives_a_crashing_distributed_scheduler() {
        let d = scenario(3);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::Aloha;
        let plan = rfid_netsim::FaultPlan::seeded(5)
            .with_loss(0.2)
            .with_crash(0, 4)
            .with_crash(3, 9);
        let mut s = rfid_core::DistributedScheduler::default().with_faults(plan);
        let rep = sim.run_resilient(&mut s);
        for slot in &rep.report.schedule.slots {
            assert!(d.is_feasible(&slot.active), "{slot:?}");
            assert!(!slot.active.contains(&0) && !slot.active.contains(&3));
        }
        // Tags within a survivor's reach are all served; only tags covered
        // exclusively by the crashed pair may be abandoned.
        for &t in &rep.abandoned_tags {
            assert!(
                sim.coverage()
                    .readers_of(t)
                    .iter()
                    .all(|&r| r == 0 || r == 3),
                "abandoned tag {t} had a surviving coverer"
            );
        }
        assert_eq!(
            rep.report.schedule.tags_served() + rep.abandoned_tags.len(),
            sim.coverage().coverable_count()
        );
    }

    #[test]
    fn tree_walking_link_layer_is_deterministic() {
        let d = scenario(2);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::TreeWalking;
        let a = sim.run(&mut ExactScheduler::default());
        let b = sim.run(&mut ExactScheduler::default());
        assert_eq!(a.total_microslots, b.total_microslots);
        assert!(a.link_layer_complete);
    }
}
