//! Audited slot-level system simulation.
//!
//! [`SlotSimulator`] drives a one-shot scheduler through a full covering
//! schedule, auditing every slot against the collision model
//! ([`rfid_model::audit_activation`]) and optionally running a real
//! link-layer inventory ([`rfid_protocols`]) for each active reader to
//! account micro-slot costs — grounding the paper's slot-sizing assumption
//! in actual arbitration behaviour.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_core::{CoveringSchedule, OneShotScheduler, greedy_covering_schedule};
use rfid_model::{Coverage, Deployment, TagSet, audit_activation};
use rfid_model::interference::interference_graph;
use rfid_protocols::{AntiCollisionProtocol, FramedAloha, TreeWalking};
use serde::{Deserialize, Serialize};

/// Which tag anti-collision protocol models the intra-slot arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkLayer {
    /// Skip intra-slot simulation (the paper's abstraction).
    None,
    /// Framed-slotted ALOHA (adaptive).
    Aloha,
    /// Deterministic binary tree-walking.
    TreeWalking,
}

/// Outcome of an audited covering-schedule run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The schedule itself (slots, served tags, fallbacks).
    pub schedule: CoveringSchedule,
    /// Total micro-slots consumed by the link layer across all slots and
    /// readers (0 when [`LinkLayer::None`]).
    pub total_microslots: u64,
    /// Worst per-(slot, reader) micro-slot count — how long the paper's
    /// "time slot" must really be for its assumption to hold.
    pub max_microslots_per_slot: u64,
    /// Every (slot, reader) inventory identified all its well-covered tags.
    pub link_layer_complete: bool,
}

/// An audited covering-schedule simulator for one deployment.
pub struct SlotSimulator<'a> {
    deployment: &'a Deployment,
    coverage: Coverage,
    graph: rfid_graph::Csr,
    /// Cap on schedule length before the run is declared divergent.
    pub max_slots: usize,
    /// Intra-slot arbitration model.
    pub link_layer: LinkLayer,
    /// Seed for the link-layer RNG.
    pub seed: u64,
}

impl<'a> SlotSimulator<'a> {
    /// Prepares the derived structures for `deployment`.
    pub fn new(deployment: &'a Deployment) -> Self {
        SlotSimulator {
            deployment,
            coverage: Coverage::build(deployment),
            graph: interference_graph(deployment),
            max_slots: 100_000,
            link_layer: LinkLayer::None,
            seed: 0,
        }
    }

    /// Derived coverage table.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Derived interference graph.
    pub fn graph(&self) -> &rfid_graph::Csr {
        &self.graph
    }

    /// Runs `scheduler` to completion with per-slot audits.
    ///
    /// # Panics
    /// If any slot violates the collision model: an RTc pair inside an
    /// activation, or a served set differing from the audited well-covered
    /// set — both would indicate a scheduler bug, and the simulator's whole
    /// point is to catch them.
    pub fn run(&self, scheduler: &mut dyn OneShotScheduler) -> SimReport {
        let schedule = greedy_covering_schedule(
            self.deployment,
            &self.coverage,
            &self.graph,
            scheduler,
            self.max_slots,
        );
        // Re-play the schedule and audit every slot.
        let mut unread = TagSet::all_unread(self.deployment.n_tags());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut total_microslots = 0u64;
        let mut max_microslots = 0u64;
        let mut link_layer_complete = true;
        for (i, slot) in schedule.slots.iter().enumerate() {
            let audit = audit_activation(self.deployment, &self.coverage, &slot.active, &unread);
            assert!(
                audit.is_feasible(),
                "slot {i}: RTc pairs {:?} in activation {:?}",
                audit.rtc_pairs,
                slot.active
            );
            assert_eq!(
                audit.well_covered, slot.served,
                "slot {i}: served set disagrees with the Definition-1 audit"
            );
            // Link layer: each active reader arbitrates its own served tags
            // (readers are independent, so inventories run in parallel; the
            // slot's micro-slot length is the per-reader maximum).
            if self.link_layer != LinkLayer::None {
                // Assign each served tag to its unique active coverer.
                let mut per_reader: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
                for &t in &slot.served {
                    let coverer = self
                        .coverage
                        .readers_of(t)
                        .iter()
                        .map(|&r| r as usize)
                        .find(|r| slot.active.contains(r))
                        .expect("well-covered tag has an active coverer");
                    per_reader.entry(coverer).or_default().push(t as u64);
                }
                let mut slot_max = 0u64;
                for (_, tags) in per_reader {
                    let outcome = match self.link_layer {
                        LinkLayer::Aloha => FramedAloha::default().inventory(&tags, &mut rng),
                        LinkLayer::TreeWalking => {
                            TreeWalking::default().inventory(&tags, &mut rng)
                        }
                        LinkLayer::None => unreachable!(),
                    };
                    link_layer_complete &= outcome.unresolved.is_empty();
                    total_microslots += outcome.total_slots;
                    slot_max = slot_max.max(outcome.total_slots);
                }
                max_microslots = max_microslots.max(slot_max);
            }
            unread.mark_all_read(&slot.served);
        }
        SimReport {
            schedule,
            total_microslots,
            max_microslots_per_slot: max_microslots,
            link_layer_complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_core::{ExactScheduler, HillClimbing};
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    fn scenario(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 15,
            n_tags: 150,
            region_side: 70.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 10.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn audited_run_completes() {
        let d = scenario(0);
        let sim = SlotSimulator::new(&d);
        let report = sim.run(&mut HillClimbing::default());
        assert_eq!(
            report.schedule.tags_served(),
            sim.coverage().coverable_count()
        );
        assert_eq!(report.total_microslots, 0);
    }

    #[test]
    fn aloha_link_layer_reads_everything() {
        let d = scenario(1);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::Aloha;
        let report = sim.run(&mut ExactScheduler::default());
        assert!(report.link_layer_complete);
        assert!(report.total_microslots > 0);
        assert!(report.max_microslots_per_slot > 0);
        // The slot-sizing assumption: every slot identified ≥ 1 tag, so the
        // micro-slot budget per slot is finite and was measured.
        assert!(report.max_microslots_per_slot < 100_000);
    }

    #[test]
    fn tree_walking_link_layer_is_deterministic() {
        let d = scenario(2);
        let mut sim = SlotSimulator::new(&d);
        sim.link_layer = LinkLayer::TreeWalking;
        let a = sim.run(&mut ExactScheduler::default());
        let b = sim.run(&mut ExactScheduler::default());
        assert_eq!(a.total_microslots, b.total_microslots);
        assert!(a.link_layer_complete);
    }
}
