#![warn(missing_docs)]
//! # rfid-sim
//!
//! System-level simulation and experiment harness.
//!
//! * [`slot_sim`] — runs complete covering schedules with a full
//!   per-slot collision audit (no RTc ever, the served set equals the
//!   Definition-1 well-covered set) and, optionally, a link-layer inventory
//!   simulation per active reader that validates the paper's "a slot is
//!   long enough to read ≥ 1 tag" assumption with real ALOHA / tree-walking
//!   micro-slot counts.
//! * [`metrics`] — per-trial records and mean/σ aggregation for the figure
//!   series.
//! * [`sweep`] — the experiment driver behind every figure: a grid of
//!   (λ value × algorithm × seed) trials, fanned out through the
//!   [`rfid_core::par`] facade, fully deterministic per seed regardless
//!   of thread count.
//! * [`table`] — Markdown / CSV / JSON emitters used by the `fig*`
//!   binaries so EXPERIMENTS.md can quote results verbatim.

pub mod dynamic;
pub mod metrics;
pub mod mobility;
pub mod placement;
pub mod render;
pub mod slot_sim;
pub mod sweep;
pub mod table;
pub mod timetable;

pub use dynamic::{dynamic_delta_stream, run_dynamic, DynamicConfig, DynamicReport};
pub use metrics::{aggregate_series, SeriesPoint, TrialRecord};
pub use mobility::{MobilityModel, MobilityReport, MobilitySim};
pub use placement::{coverage_fraction, greedy_placement};
pub use render::{render_svg, RenderOptions};
pub use slot_sim::{LinkLayer, SimReport, SlotSimulator};
pub use sweep::{run_sweep, SweepAxis, SweepConfig};
pub use timetable::Timetable;
