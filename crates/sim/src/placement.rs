//! Planned reader placement.
//!
//! The paper situates itself against systems where "RFID readers are
//! assumed to be static and carefully deployed in a planned fashion"
//! (Zhou et al.). This module provides that planning step for downstream
//! users: given tag positions (a site survey of where goods accumulate)
//! and a reader budget, place readers to maximise tag coverage — the
//! classic greedy max-coverage algorithm with its `1 − 1/e` guarantee —
//! and compare with naive lattice placement.

use rfid_geometry::{GridIndex, Point, Rect};
use rfid_model::{Deployment, RadiusModel};

/// Greedy max-coverage placement: repeatedly place the next reader at the
/// candidate position covering the most still-uncovered tags.
///
/// Candidates are the tag positions themselves (a classical reduction —
/// an optimal disk centre can always be shifted to cover a same-or-larger
/// tag subset anchored on some tag, up to 2× radius; using tag anchors
/// keeps the search discrete and fast). Radii are drawn per reader from
/// `radius_model` with the given seed, matching the evaluation model.
///
/// Returns the planned [`Deployment`].
pub fn greedy_placement(
    region: Rect,
    tags: &[Point],
    n_readers: usize,
    radius_model: RadiusModel,
    seed: u64,
) -> Deployment {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    // Pre-draw radii so the placement sees each reader's actual reach.
    let radii: Vec<(f64, f64)> = (0..n_readers)
        .map(|_| radius_model.sample(&mut rng))
        .collect();

    let mut covered = vec![false; tags.len()];
    let index = if tags.is_empty() {
        None
    } else {
        Some(GridIndex::build(tags, 8.0))
    };
    let mut positions = Vec::with_capacity(n_readers);
    for &(_, interrogation) in &radii {
        // Best anchor among tag positions (falls back to region centre
        // when no tags or no gain).
        let mut best: Option<(usize, Point)> = None;
        if let Some(index) = &index {
            for &anchor in tags {
                let mut gain = 0usize;
                index.for_each_within(anchor, interrogation, |t, _| {
                    if !covered[t] {
                        gain += 1;
                    }
                });
                if gain > 0 && best.as_ref().is_none_or(|&(g, _)| gain > g) {
                    best = Some((gain, anchor));
                }
            }
        }
        let pos = best.map(|(_, p)| p).unwrap_or_else(|| region.center());
        if let Some(index) = &index {
            index.for_each_within(pos, interrogation, |t, _| covered[t] = true);
        }
        positions.push(pos);
    }
    let (big, small): (Vec<f64>, Vec<f64>) = radii.into_iter().unzip();
    Deployment::new(region, positions, big, small, tags.to_vec())
}

/// Fraction of tags covered by at least one reader of `d`.
pub fn coverage_fraction(d: &Deployment) -> f64 {
    if d.n_tags() == 0 {
        return 1.0;
    }
    let covered = rfid_model::Coverage::build(d).coverable_count();
    covered as f64 / d.n_tags() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rfid_geometry::sampling::{clustered_points, uniform_points};

    #[test]
    fn greedy_covers_clustered_tags_with_few_readers() {
        let region = Rect::square(100.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let centers = uniform_points(&mut rng, 4, region);
        let tags = clustered_points(&mut rng, 300, region, &centers, 3.0);
        let planned = greedy_placement(
            region,
            &tags,
            4,
            RadiusModel::Fixed {
                interference: 15.0,
                interrogation: 10.0,
            },
            7,
        );
        assert!(
            coverage_fraction(&planned) > 0.95,
            "4 readers on 4 clusters should cover nearly everything, got {}",
            coverage_fraction(&planned)
        );
    }

    #[test]
    fn greedy_beats_lattice_on_clustered_tags() {
        use rfid_model::{Scenario, ScenarioKind};
        let region = Rect::square(100.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let centers = uniform_points(&mut rng, 3, region);
        let tags = clustered_points(&mut rng, 300, region, &centers, 4.0);
        let model = RadiusModel::Fixed {
            interference: 12.0,
            interrogation: 8.0,
        };
        let planned = greedy_placement(region, &tags, 6, model, 3);
        // Lattice baseline with the same radii and tag set.
        let lattice = {
            let base = Scenario {
                kind: ScenarioKind::LatticeReaders,
                n_readers: 6,
                n_tags: 0,
                region_side: 100.0,
                radius_model: model,
            }
            .generate(3);
            Deployment::new(
                region,
                base.reader_positions().to_vec(),
                base.interference_radii().to_vec(),
                base.interrogation_radii().to_vec(),
                tags.clone(),
            )
        };
        assert!(
            coverage_fraction(&planned) > coverage_fraction(&lattice),
            "planned {} should beat lattice {}",
            coverage_fraction(&planned),
            coverage_fraction(&lattice)
        );
    }

    #[test]
    fn no_tags_still_places_all_readers() {
        let region = Rect::square(50.0);
        let d = greedy_placement(
            region,
            &[],
            3,
            RadiusModel::Fixed {
                interference: 5.0,
                interrogation: 3.0,
            },
            0,
        );
        assert_eq!(d.n_readers(), 3);
        assert_eq!(coverage_fraction(&d), 1.0); // vacuous
    }

    #[test]
    fn placement_is_deterministic() {
        let region = Rect::square(80.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let tags = uniform_points(&mut rng, 100, region);
        let m = RadiusModel::PoissonPair {
            lambda_interference: 12.0,
            lambda_interrogation: 6.0,
        };
        let a = greedy_placement(region, &tags, 8, m, 11);
        let b = greedy_placement(region, &tags, 8, m, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn more_readers_never_reduce_coverage() {
        let region = Rect::square(100.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let tags = uniform_points(&mut rng, 200, region);
        let m = RadiusModel::Fixed {
            interference: 10.0,
            interrogation: 6.0,
        };
        let mut prev = 0.0;
        for k in [2usize, 4, 8, 16] {
            let frac = coverage_fraction(&greedy_placement(region, &tags, k, m, 1));
            assert!(
                frac + 1e-12 >= prev,
                "coverage dropped {prev} → {frac} at k={k}"
            );
            prev = frac;
        }
    }
}
