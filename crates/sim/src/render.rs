//! SVG rendering of deployments and activations.
//!
//! Pure string building — no graphics dependencies. Used by the examples
//! to emit inspectable pictures of a slot: interference disks (light),
//! interrogation disks (shaded), readers (active = filled), tags (served /
//! unread / uncoverable).

use rfid_model::{Coverage, Deployment, ReaderId, TagId};

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Pixels per deployment unit.
    pub scale: f64,
    /// Draw interference disks.
    pub show_interference: bool,
    /// Draw interrogation disks.
    pub show_interrogation: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            scale: 8.0,
            show_interference: true,
            show_interrogation: true,
        }
    }
}

/// Renders one slot of a deployment as an SVG document.
///
/// * `active` — readers activated this slot (drawn filled; their
///   interrogation disk is emphasised);
/// * `served` — tags considered served (drawn green); remaining tags are
///   grey (coverable) or red-crossed (uncoverable).
pub fn render_svg(
    deployment: &Deployment,
    coverage: &Coverage,
    active: &[ReaderId],
    served: &[TagId],
    options: &RenderOptions,
) -> String {
    let region = deployment.region();
    let s = options.scale;
    let pad = 10.0;
    let width = region.width() * s + 2.0 * pad;
    let height = region.height() * s + 2.0 * pad;
    let tx = |x: f64| (x - region.min_x) * s + pad;
    // SVG y grows downward; flip so the picture matches the maths.
    let ty = |y: f64| height - ((y - region.min_y) * s + pad);

    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    ));
    out.push('\n');
    out.push_str(&format!(
        r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="white" stroke="#444" stroke-width="1"/>"##,
        tx(region.min_x),
        ty(region.max_y),
        region.width() * s,
        region.height() * s
    ));
    out.push('\n');

    let is_active = |v: ReaderId| active.contains(&v);

    // Disks below markers: interference first (lightest), then interrogation.
    if options.show_interference {
        for v in 0..deployment.n_readers() {
            let r = deployment.reader(v);
            out.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="none" stroke="{}" stroke-width="0.8" stroke-dasharray="4 3"/>"#,
                tx(r.pos.x),
                ty(r.pos.y),
                r.interference_radius * s,
                if is_active(v) { "#d4772f" } else { "#cccccc" }
            ));
            out.push('\n');
        }
    }
    if options.show_interrogation {
        for v in 0..deployment.n_readers() {
            let r = deployment.reader(v);
            let (fill, opacity) = if is_active(v) {
                ("#2f6fd4", 0.15)
            } else {
                ("#888888", 0.06)
            };
            out.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="{fill}" fill-opacity="{opacity}" stroke="{fill}" stroke-width="0.8"/>"#,
                tx(r.pos.x),
                ty(r.pos.y),
                r.interrogation_radius * s,
            ));
            out.push('\n');
        }
    }

    // Tags.
    for t in 0..deployment.n_tags() {
        let p = deployment.tag(t);
        let color = if served.contains(&t) {
            "#2f9e44" // served
        } else if coverage.is_coverable(t) {
            "#999999" // waiting
        } else {
            "#d43f3f" // unreachable
        };
        out.push_str(&format!(
            r#"<circle cx="{:.1}" cy="{:.1}" r="2.2" fill="{color}"/>"#,
            tx(p.x),
            ty(p.y)
        ));
        out.push('\n');
    }

    // Readers on top.
    for v in 0..deployment.n_readers() {
        let r = deployment.reader(v);
        let (fill, stroke) = if is_active(v) {
            ("#2f6fd4", "#1d4a94")
        } else {
            ("white", "#555")
        };
        out.push_str(&format!(
            r#"<rect x="{:.1}" y="{:.1}" width="8" height="8" fill="{fill}" stroke="{stroke}" stroke-width="1.5"/>"#,
            tx(r.pos.x) - 4.0,
            ty(r.pos.y) - 4.0
        ));
        out.push_str(&format!(
            r##"<text x="{:.1}" y="{:.1}" font-size="9" fill="#333">{}</text>"##,
            tx(r.pos.x) + 6.0,
            ty(r.pos.y) - 6.0,
            v
        ));
        out.push('\n');
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};

    fn tiny() -> (Deployment, Coverage) {
        let d = Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(15.0, 15.0)],
            vec![4.0, 4.0],
            vec![2.0, 2.0],
            vec![
                Point::new(5.0, 6.0),
                Point::new(15.0, 14.0),
                Point::new(10.0, 10.0),
            ],
        );
        let c = Coverage::build(&d);
        (d, c)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (d, c) = tiny();
        let svg = render_svg(&d, &c, &[0], &[0], &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // one marker rect per reader + background
        assert_eq!(svg.matches("<rect").count(), d.n_readers() + 1);
        // every tag drawn
        assert_eq!(svg.matches(r##"fill="#2f9e44""##).count(), 1); // served
        assert_eq!(svg.matches(r##"fill="#d43f3f""##).count(), 1); // unreachable (tag 2)
        assert_eq!(svg.matches(r##"fill="#999999""##).count(), 1); // waiting
                                                                   // circles: one per tag + interference + interrogation per reader
        assert_eq!(
            svg.matches("<circle").count(),
            d.n_tags() + 2 * d.n_readers()
        );
    }

    #[test]
    fn disks_can_be_toggled() {
        let (d, c) = tiny();
        let none = RenderOptions {
            show_interference: false,
            show_interrogation: false,
            ..Default::default()
        };
        let svg = render_svg(&d, &c, &[], &[], &none);
        // only tag circles remain
        assert_eq!(svg.matches("<circle").count(), d.n_tags());
        let full = render_svg(&d, &c, &[], &[], &RenderOptions::default());
        assert_eq!(svg_circles(&full), d.n_tags() + 2 * d.n_readers());
    }

    fn svg_circles(svg: &str) -> usize {
        svg.matches("<circle").count()
    }

    #[test]
    fn active_readers_are_highlighted() {
        let (d, c) = tiny();
        let svg = render_svg(&d, &c, &[1], &[], &RenderOptions::default());
        assert!(svg.contains(r##"fill="#2f6fd4" stroke="#1d4a94""##));
    }

    #[test]
    fn coordinates_flip_y() {
        let (d, c) = tiny();
        let svg = render_svg(&d, &c, &[], &[], &RenderOptions::default());
        // reader 0 at (5,5) with scale 8, pad 10, height 180:
        // tx=50, ty=180-50=130 → marker rect at 46,126
        assert!(svg.contains(r#"<rect x="46.0" y="126.0""#), "{svg}");
    }
}
