//! Continuous operation with dynamic tag arrivals.
//!
//! The paper points out that Zhou et al. "assume that the distribution of
//! the tags are static and no new tags will appear in the system
//! dynamically" — a real dock never stops receiving goods. This module
//! runs the schedulers in *steady state*: new tags arrive as a Poisson
//! process each slot (uniformly placed), every slot activates one
//! (approximate) MWFS, and we measure throughput and per-tag service
//! latency instead of a one-off covering-schedule size.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_core::{OneShotInput, OneShotScheduler};
use rfid_delta::ScenarioDelta;
use rfid_geometry::Point;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Deployment, TagSet, WeightEvaluator};
use serde::{Deserialize, Serialize};

/// Configuration of a dynamic-arrival run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Mean new tags per slot (Poisson).
    pub arrival_rate: f64,
    /// Slots to simulate.
    pub slots: usize,
    /// Warm-up slots excluded from the steady-state statistics.
    pub warmup: usize,
    /// RNG seed for arrivals.
    pub seed: u64,
}

/// Steady-state outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicReport {
    /// Tags that arrived during the measured window.
    pub arrived: usize,
    /// Tags served during the measured window.
    pub served: usize,
    /// Mean service latency in slots (arrival → read), served tags only.
    pub mean_latency: f64,
    /// 95th-percentile latency.
    pub p95_latency: u64,
    /// Tags still waiting at the end (backlog).
    pub backlog: usize,
    /// Mean served per slot over the measured window.
    pub throughput: f64,
}

/// The arrival process of [`run_dynamic`] as a per-slot
/// [`ScenarioDelta`] stream: element `s` holds the `AddTag` ops for the
/// tags that arrive in slot `s`, in the exact order `run_dynamic`
/// appends them (the same seeded RNG draw sequence — one Poisson draw
/// then `k` uniform placements per slot). Folding the stream over a
/// tag-free copy of `readers` with [`rfid_delta::apply_ops`] therefore
/// reproduces the tag population `run_dynamic` schedules against, which
/// is what lets a serve client follow a dynamic run with delta frames
/// instead of re-sending the whole scenario every slot.
pub fn dynamic_delta_stream(
    readers: &Deployment,
    config: DynamicConfig,
) -> Vec<Vec<ScenarioDelta>> {
    assert!(config.arrival_rate >= 0.0 && config.slots > 0);
    let region = readers.region();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut stream = Vec::with_capacity(config.slots);
    for _ in 0..config.slots {
        let k = rfid_geometry::sampling::poisson(&mut rng, config.arrival_rate) as usize;
        let mut ops = Vec::with_capacity(k);
        for _ in 0..k {
            ops.push(ScenarioDelta::AddTag {
                x: region.min_x + rng.random::<f64>() * region.width(),
                y: region.min_y + rng.random::<f64>() * region.height(),
            });
        }
        stream.push(ops);
    }
    stream
}

/// Runs continuous slots with Poisson tag arrivals on a fixed reader
/// deployment. Tags arriving outside every interrogation region are
/// counted as arrived-but-unservable and excluded from latency stats
/// (they also never enter the backlog — a real system would flag them).
pub fn run_dynamic(
    readers: &Deployment,
    config: DynamicConfig,
    scheduler: &mut dyn OneShotScheduler,
) -> DynamicReport {
    assert!(config.arrival_rate >= 0.0 && config.slots > 0 && config.warmup < config.slots);
    let region = readers.region();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Tag storage grows over time; we rebuild the world whenever the tag
    // population changed (coverage tables are tag-indexed).
    let mut tag_pos: Vec<Point> = Vec::new();
    let mut arrival_slot: Vec<u64> = Vec::new();
    let mut served_latencies: Vec<u64> = Vec::new();
    let mut arrived_measured = 0usize;
    let mut served_measured = 0usize;
    let mut unread_flags: Vec<bool> = Vec::new();

    for slot in 0..config.slots as u64 {
        // Arrivals.
        let k = rfid_geometry::sampling::poisson(&mut rng, config.arrival_rate) as usize;
        for _ in 0..k {
            let p = Point::new(
                region.min_x + rng.random::<f64>() * region.width(),
                region.min_y + rng.random::<f64>() * region.height(),
            );
            tag_pos.push(p);
            arrival_slot.push(slot);
            unread_flags.push(true);
            if slot >= config.warmup as u64 {
                arrived_measured += 1;
            }
        }
        if tag_pos.is_empty() {
            continue;
        }
        // Rebuild the world with the current population.
        let d = Deployment::new(
            region,
            readers.reader_positions().to_vec(),
            readers.interference_radii().to_vec(),
            readers.interrogation_radii().to_vec(),
            tag_pos.clone(),
        );
        let coverage = Coverage::build(&d);
        let graph = interference_graph(&d);
        let mut unread = TagSet::all_unread(d.n_tags());
        for (t, &alive) in unread_flags.iter().enumerate() {
            if !alive {
                unread.mark_read(t);
            }
        }
        let input = OneShotInput::new(&d, &coverage, &graph, &unread);
        let active = scheduler.schedule(&input);
        debug_assert!(d.is_feasible(&active));
        let served = WeightEvaluator::new(&coverage).well_covered(&active, &unread);
        for &t in &served {
            unread_flags[t] = false;
            if slot >= config.warmup as u64 {
                served_measured += 1;
                served_latencies.push(slot - arrival_slot[t]);
            }
        }
    }

    // Backlog: unread tags that at least one reader could ever cover.
    let backlog = if tag_pos.is_empty() {
        0
    } else {
        let d = Deployment::new(
            region,
            readers.reader_positions().to_vec(),
            readers.interference_radii().to_vec(),
            readers.interrogation_radii().to_vec(),
            tag_pos.clone(),
        );
        let coverage = Coverage::build(&d);
        unread_flags
            .iter()
            .enumerate()
            .filter(|&(t, &alive)| alive && coverage.is_coverable(t))
            .count()
    };

    served_latencies.sort_unstable();
    let mean_latency = if served_latencies.is_empty() {
        0.0
    } else {
        served_latencies.iter().sum::<u64>() as f64 / served_latencies.len() as f64
    };
    let p95_latency = served_latencies
        .get((served_latencies.len().saturating_sub(1)) * 95 / 100)
        .copied()
        .unwrap_or(0);
    let measured_slots = (config.slots - config.warmup) as f64;
    DynamicReport {
        arrived: arrived_measured,
        served: served_measured,
        mean_latency,
        p95_latency,
        backlog,
        throughput: served_measured as f64 / measured_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_core::{make_scheduler, AlgorithmKind};
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn readers(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 15,
            n_tags: 0, // tags come from the arrival process
            region_side: 70.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 8.0,
            },
        }
        .generate(seed)
    }

    fn config(rate: f64) -> DynamicConfig {
        DynamicConfig {
            arrival_rate: rate,
            slots: 60,
            warmup: 10,
            seed: 5,
        }
    }

    #[test]
    fn light_load_keeps_latency_low() {
        let d = readers(1);
        let mut s = make_scheduler(AlgorithmKind::LocalGreedy, 0);
        let report = run_dynamic(&d, config(3.0), s.as_mut());
        assert!(report.served > 0);
        assert!(
            report.mean_latency < 3.0,
            "light load should serve almost immediately, got {}",
            report.mean_latency
        );
        assert!(report.p95_latency <= 10);
    }

    #[test]
    fn heavier_load_grows_latency_or_backlog() {
        let d = readers(1);
        let mut s = make_scheduler(AlgorithmKind::LocalGreedy, 0);
        let light = run_dynamic(&d, config(2.0), s.as_mut());
        let heavy = run_dynamic(&d, config(30.0), s.as_mut());
        assert!(
            heavy.throughput > light.throughput,
            "more offered load, more served"
        );
        assert!(
            heavy.mean_latency >= light.mean_latency || heavy.backlog > light.backlog,
            "congestion must show up somewhere"
        );
    }

    #[test]
    fn zero_arrivals_produce_empty_report() {
        let d = readers(2);
        let mut s = make_scheduler(AlgorithmKind::HillClimbing, 0);
        let report = run_dynamic(&d, config(0.0), s.as_mut());
        assert_eq!(report.arrived, 0);
        assert_eq!(report.served, 0);
        assert_eq!(report.backlog, 0);
        assert_eq!(report.throughput, 0.0);
    }

    #[test]
    fn accounting_balances() {
        let d = readers(3);
        let mut s = make_scheduler(AlgorithmKind::HillClimbing, 0);
        let report = run_dynamic(&d, config(5.0), s.as_mut());
        // served in window ≤ arrived in window + warmup carry-over
        assert!(report.served <= report.arrived + 5 * 10 + 10);
        assert!(
            report.throughput <= 5.0 * 3.0,
            "cannot serve wildly more than offered"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = readers(4);
        let run = || {
            let mut s = make_scheduler(AlgorithmKind::LocalGreedy, 0);
            run_dynamic(&d, config(4.0), s.as_mut())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn delta_stream_reproduces_the_arrival_population() {
        let d = readers(6);
        let cfg = config(4.0);
        let stream = dynamic_delta_stream(&d, cfg);
        assert_eq!(stream.len(), cfg.slots);
        assert!(stream
            .iter()
            .flatten()
            .all(|op| matches!(op, ScenarioDelta::AddTag { .. })));

        // Fold the stream over the (tag-free) base deployment with the
        // real delta engine...
        let mut current = d.clone();
        for ops in &stream {
            current = rfid_delta::apply_ops(&current, ops)
                .expect("stream ops are in range")
                .deployment;
        }
        // ...and replay the arrival half of `run_dynamic` directly:
        // same seed, same draw order, so the populations must agree
        // bit-for-bit (order included — delta tags append).
        let region = d.region();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut expected: Vec<Point> = Vec::new();
        for _ in 0..cfg.slots {
            let k = rfid_geometry::sampling::poisson(&mut rng, cfg.arrival_rate) as usize;
            for _ in 0..k {
                expected.push(Point::new(
                    region.min_x + rng.random::<f64>() * region.width(),
                    region.min_y + rng.random::<f64>() * region.height(),
                ));
            }
        }
        assert!(!expected.is_empty(), "rate 4.0 over 60 slots must arrive");
        assert_eq!(current.tag_positions(), expected.as_slice());
        assert_eq!(current.reader_positions(), d.reader_positions());
    }

    #[test]
    fn zero_rate_stream_is_all_empty() {
        let d = readers(2);
        let stream = dynamic_delta_stream(&d, config(0.0));
        assert!(stream.iter().all(Vec::is_empty));
    }
}
