//! The parameter-sweep experiment driver behind every figure.
//!
//! A sweep is a grid of `(λ point × algorithm × seed)` trials. Each trial
//! generates its deployment from `(scenario, seed)` (fully deterministic),
//! runs either the one-shot scheduler once on a fresh tag set (Figures
//! 8/9) or the full greedy covering schedule (Figures 6/7), and records
//! timing plus communication cost.
//!
//! Trials fan out through the [`rfid_core::par`] facade — deployments and
//! trials are independent, so this is embarrassingly parallel; results
//! are keyed by `(point, algorithm, seed)` and sorted at the end, making
//! the output independent of thread scheduling.

use crate::metrics::TrialRecord;
use rfid_core::{
    covering_schedule_with, AlgorithmKind, McsOptions, OneShotInput, SchedulerRegistry,
};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Scenario, TagSet, WeightEvaluator};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which λ the sweep varies (the other stays at the scenario's value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Vary λ_R (interference radii mean) — Figures 6 and 9.
    Interference,
    /// Vary λ_r (interrogation radii mean) — Figures 7 and 8.
    Interrogation,
}

/// Full sweep description.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base scenario; the swept λ overrides its radius model per point.
    pub scenario: Scenario,
    /// Which λ varies.
    pub axis: SweepAxis,
    /// The swept λ values.
    pub values: Vec<f64>,
    /// The fixed λ for the other axis.
    pub fixed_lambda: f64,
    /// Algorithms to compare.
    pub algorithms: Vec<AlgorithmKind>,
    /// Seeded trials per point.
    pub trials: usize,
    /// Base seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
    /// Record the MCS covering-schedule size (Figures 6/7).
    pub measure_mcs: bool,
    /// Record the one-shot weight on a fresh tag set (Figures 8/9).
    pub measure_oneshot: bool,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl SweepConfig {
    fn lambdas(&self, value: f64) -> (f64, f64) {
        match self.axis {
            SweepAxis::Interference => (value, self.fixed_lambda),
            SweepAxis::Interrogation => (self.fixed_lambda, value),
        }
    }
}

/// Runs the sweep; the result is sorted by `(λ, algorithm, seed)` and
/// contains `values × algorithms × trials` records.
pub fn run_sweep(config: &SweepConfig) -> Vec<TrialRecord> {
    assert!(config.trials > 0, "need at least one trial per point");
    assert!(!config.values.is_empty(), "need at least one sweep value");
    assert!(
        config.measure_mcs || config.measure_oneshot,
        "nothing to measure"
    );
    // Work items: one per (value, seed); all algorithms run on the same
    // deployment instance so the comparison is paired.
    let mut items = Vec::new();
    for &value in &config.values {
        for t in 0..config.trials {
            items.push((value, config.base_seed + t as u64));
        }
    }
    let mut out: Vec<TrialRecord> =
        rfid_core::par::map_chunked(&items, config.threads, |&(value, seed)| {
            run_point(config, value, seed)
        })
        .into_iter()
        .flatten()
        .collect();
    out.sort_by(|a, b| {
        (
            a.lambda_interference,
            a.lambda_interrogation,
            &a.algorithm,
            a.seed,
        )
            .partial_cmp(&(
                b.lambda_interference,
                b.lambda_interrogation,
                &b.algorithm,
                b.seed,
            ))
            .expect("λ values are finite")
    });
    out
}

/// Runs every configured algorithm on one deployment instance.
fn run_point(config: &SweepConfig, value: f64, seed: u64) -> Vec<TrialRecord> {
    let (lambda_interference, lambda_interrogation) = config.lambdas(value);
    let mut scenario = config.scenario;
    scenario.radius_model = rfid_model::RadiusModel::PoissonPair {
        lambda_interference,
        lambda_interrogation,
    };
    let deployment = scenario.generate(seed);
    let coverage = Coverage::build(&deployment);
    let graph = interference_graph(&deployment);
    let registry = SchedulerRegistry::global();
    let mut records = Vec::with_capacity(config.algorithms.len());
    for &kind in &config.algorithms {
        let mut scheduler = registry.instantiate(kind, seed ^ 0x5eed);
        let start = Instant::now();
        let mut oneshot_weight = None;
        let mut messages = None;
        let mut bytes = None;
        if config.measure_oneshot {
            let unread = TagSet::all_unread(deployment.n_tags());
            let input = OneShotInput::builder(&deployment, &coverage, &graph)
                .unread(&unread)
                .build();
            let set = scheduler.schedule(&input);
            debug_assert!(
                deployment.is_feasible(&set),
                "{kind:?} produced infeasible set"
            );
            let mut weights = WeightEvaluator::new(&coverage);
            oneshot_weight = Some(weights.weight(&set, &unread));
            if let Some(stats) = scheduler.comm_stats() {
                messages = Some(stats.messages);
                bytes = Some(stats.bytes);
            }
        }
        let mut mcs_size = None;
        let mut fallback_slots = 0;
        if config.measure_mcs {
            let schedule = covering_schedule_with(
                &deployment,
                &coverage,
                &graph,
                scheduler.as_mut(),
                &McsOptions::new(),
            )
            .expect("strict covering schedule diverged")
            .schedule;
            fallback_slots = schedule.fallback_slots();
            mcs_size = Some(schedule.size());
        }
        records.push(TrialRecord {
            algorithm: registry.entry(kind).label.to_string(),
            lambda_interference,
            lambda_interrogation,
            seed,
            mcs_size,
            oneshot_weight,
            runtime_ms: start.elapsed().as_secs_f64() * 1e3,
            fallback_slots,
            messages,
            bytes,
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_model::RadiusModel;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            scenario: Scenario {
                kind: rfid_model::ScenarioKind::UniformRandom,
                n_readers: 12,
                n_tags: 80,
                region_side: 60.0,
                radius_model: RadiusModel::paper_default(),
            },
            axis: SweepAxis::Interrogation,
            values: vec![4.0, 6.0],
            fixed_lambda: 10.0,
            algorithms: vec![AlgorithmKind::HillClimbing, AlgorithmKind::Colorwave],
            trials: 2,
            base_seed: 100,
            measure_mcs: true,
            measure_oneshot: true,
            threads: Some(2),
        }
    }

    #[test]
    fn sweep_produces_full_grid() {
        let records = run_sweep(&tiny_config());
        assert_eq!(records.len(), 2 * 2 * 2); // values × algorithms × trials
        for r in &records {
            assert!(r.mcs_size.is_some());
            assert!(r.oneshot_weight.is_some());
            assert_eq!(r.lambda_interference, 10.0);
            assert!(r.runtime_ms >= 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut one = tiny_config();
        one.threads = Some(1);
        let mut four = tiny_config();
        four.threads = Some(4);
        let a = run_sweep(&one);
        let b = run_sweep(&four);
        // runtime_ms differs; compare the science fields.
        let key = |r: &TrialRecord| {
            (
                r.algorithm.clone(),
                r.lambda_interrogation.to_bits(),
                r.seed,
                r.mcs_size,
                r.oneshot_weight,
            )
        };
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interference_axis_varies_the_other_lambda() {
        let mut c = tiny_config();
        c.axis = SweepAxis::Interference;
        c.values = vec![9.0];
        c.measure_mcs = false;
        let records = run_sweep(&c);
        for r in &records {
            assert_eq!(r.lambda_interference, 9.0);
            assert_eq!(r.lambda_interrogation, 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "nothing to measure")]
    fn rejects_empty_measurement() {
        let mut c = tiny_config();
        c.measure_mcs = false;
        c.measure_oneshot = false;
        run_sweep(&c);
    }
}
