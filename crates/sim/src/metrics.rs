//! Per-trial records and series aggregation.

use serde::{Deserialize, Serialize};

/// One (algorithm, parameter point, seed) trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Algorithm label (see `rfid_core::AlgorithmKind::label`).
    pub algorithm: String,
    /// Poisson mean of the interference radii λ_R.
    pub lambda_interference: f64,
    /// Poisson mean of the interrogation radii λ_r.
    pub lambda_interrogation: f64,
    /// Deployment seed.
    pub seed: u64,
    /// Covering-schedule size (number of time slots) — Figures 6/7 metric.
    pub mcs_size: Option<usize>,
    /// Well-covered tags in a single fresh slot — Figures 8/9 metric.
    pub oneshot_weight: Option<usize>,
    /// Wall-clock milliseconds spent inside the scheduler(s).
    pub runtime_ms: f64,
    /// Fallback slots taken by the MCS progress guard.
    pub fallback_slots: usize,
    /// Messages sent (distributed algorithm only).
    pub messages: Option<u64>,
    /// Bytes sent (distributed algorithm only).
    pub bytes: Option<u64>,
}

/// One aggregated point of a figure series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The swept λ value.
    pub x: f64,
    /// Mean of the metric over trials.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of trials aggregated.
    pub n: usize,
}

/// Aggregates `values` into a [`SeriesPoint`] at `x`.
pub fn aggregate_point(x: f64, values: &[f64]) -> SeriesPoint {
    let n = values.len();
    if n == 0 {
        return SeriesPoint {
            x,
            mean: f64::NAN,
            std_dev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            n,
        };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    SeriesPoint {
        x,
        mean,
        std_dev: var.sqrt(),
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        n,
    }
}

/// Groups trials of one algorithm by the swept λ and aggregates `metric`.
/// Points are sorted by `x`.
pub fn aggregate_series(
    trials: &[TrialRecord],
    algorithm: &str,
    x_of: impl Fn(&TrialRecord) -> f64,
    metric: impl Fn(&TrialRecord) -> Option<f64>,
) -> Vec<SeriesPoint> {
    let mut groups: std::collections::BTreeMap<u64, (f64, Vec<f64>)> = Default::default();
    for t in trials.iter().filter(|t| t.algorithm == algorithm) {
        if let Some(v) = metric(t) {
            let x = x_of(t);
            groups
                .entry(x.to_bits())
                .or_insert((x, Vec::new()))
                .1
                .push(v);
        }
    }
    let mut points: Vec<SeriesPoint> = groups
        .into_values()
        .map(|(x, vs)| aggregate_point(x, &vs))
        .collect();
    points.sort_by(|a, b| a.x.total_cmp(&b.x));
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(alg: &str, lr: f64, seed: u64, mcs: usize) -> TrialRecord {
        TrialRecord {
            algorithm: alg.into(),
            lambda_interference: lr,
            lambda_interrogation: 6.0,
            seed,
            mcs_size: Some(mcs),
            oneshot_weight: None,
            runtime_ms: 1.0,
            fallback_slots: 0,
            messages: None,
            bytes: None,
        }
    }

    #[test]
    fn aggregate_point_statistics() {
        let p = aggregate_point(5.0, &[2.0, 4.0, 6.0]);
        assert_eq!(p.mean, 4.0);
        assert_eq!(p.min, 2.0);
        assert_eq!(p.max, 6.0);
        assert!((p.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(p.n, 3);
    }

    #[test]
    fn empty_point_is_nan() {
        let p = aggregate_point(1.0, &[]);
        assert!(p.mean.is_nan());
        assert_eq!(p.n, 0);
    }

    #[test]
    fn series_groups_by_x_and_algorithm() {
        let trials = vec![
            trial("a", 10.0, 0, 4),
            trial("a", 10.0, 1, 6),
            trial("a", 12.0, 0, 8),
            trial("b", 10.0, 0, 99),
        ];
        let series = aggregate_series(
            &trials,
            "a",
            |t| t.lambda_interference,
            |t| t.mcs_size.map(|v| v as f64),
        );
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].x, 10.0);
        assert_eq!(series[0].mean, 5.0);
        assert_eq!(series[1].x, 12.0);
        assert_eq!(series[1].mean, 8.0);
    }

    #[test]
    fn missing_metric_is_skipped() {
        let mut t = trial("a", 10.0, 0, 4);
        t.mcs_size = None;
        let series = aggregate_series(
            &[t],
            "a",
            |t| t.lambda_interference,
            |t| t.mcs_size.map(|v| v as f64),
        );
        assert!(series.is_empty());
    }
}

/// Activation churn of a covering schedule: the mean Jaccard *distance*
/// between consecutive slots' active reader sets, in `[0, 1]`.
///
/// The authors' companion protocol RASPberry (ICNP'09, paper ref \[9\])
/// optimises for *stable* reader activation — frequent power cycling wears
/// readers and destabilises the RF environment. `0` means the same set is
/// active every slot; `1` means a complete change every slot. Single-slot
/// (or empty) schedules have no transitions and return `0`.
pub fn activation_churn(slots: &[Vec<usize>]) -> f64 {
    if slots.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for pair in slots.windows(2) {
        let a: std::collections::BTreeSet<usize> = pair[0].iter().copied().collect();
        let b: std::collections::BTreeSet<usize> = pair[1].iter().copied().collect();
        let inter = a.intersection(&b).count();
        let union = a.union(&b).count();
        total += if union == 0 {
            0.0
        } else {
            1.0 - inter as f64 / union as f64
        };
    }
    total / (slots.len() - 1) as f64
}

#[cfg(test)]
mod churn_tests {
    use super::*;

    #[test]
    fn identical_slots_have_zero_churn() {
        let slots = vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]];
        assert_eq!(activation_churn(&slots), 0.0);
    }

    #[test]
    fn disjoint_slots_have_full_churn() {
        let slots = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        assert_eq!(activation_churn(&slots), 1.0);
    }

    #[test]
    fn half_overlap_is_half_churn() {
        // {1,2} → {2,3}: |∩| = 1, |∪| = 3 → distance 2/3.
        let slots = vec![vec![1, 2], vec![2, 3]];
        assert!((activation_churn(&slots) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_schedules_are_stable() {
        assert_eq!(activation_churn(&[]), 0.0);
        assert_eq!(activation_churn(&[vec![1]]), 0.0);
        assert_eq!(activation_churn(&[vec![], vec![]]), 0.0);
    }
}
