//! Table and file emitters for the figure binaries.

use crate::metrics::SeriesPoint;
use std::io::Write;
use std::path::Path;

/// Renders one figure as a Markdown table: rows are swept λ values, one
/// column per algorithm (mean over trials, `±σ` in parentheses).
pub fn markdown_figure(
    title: &str,
    x_label: &str,
    algorithms: &[(&str, Vec<SeriesPoint>)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str(&format!("| {x_label} |"));
    for (name, _) in algorithms {
        out.push_str(&format!(" {name} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in algorithms {
        out.push_str("---|");
    }
    out.push('\n');
    // x values from the first series (all series share the sweep grid).
    let xs: Vec<f64> = algorithms
        .first()
        .map(|(_, pts)| pts.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("| {x:.1} |"));
        for (_, pts) in algorithms {
            match pts.get(i) {
                Some(p) if p.x == *x => {
                    out.push_str(&format!(" {:.2} (±{:.2}) |", p.mean, p.std_dev))
                }
                _ => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes the series as CSV: `x,algorithm,mean,std_dev,min,max,n`.
pub fn write_csv(path: &Path, algorithms: &[(&str, Vec<SeriesPoint>)]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "x,algorithm,mean,std_dev,min,max,n")?;
    for (name, pts) in algorithms {
        for p in pts {
            writeln!(
                f,
                "{},{},{},{},{},{},{}",
                p.x, name, p.mean, p.std_dev, p.min, p.max, p.n
            )?;
        }
    }
    Ok(())
}

/// Writes the series as JSON (`{algorithm: [SeriesPoint]}`), for
/// EXPERIMENTS.md bookkeeping and external plotting.
pub fn write_json(path: &Path, algorithms: &[(&str, Vec<SeriesPoint>)]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let map: std::collections::BTreeMap<&str, &Vec<SeriesPoint>> =
        algorithms.iter().map(|(n, p)| (*n, p)).collect();
    let json = serde_json::to_string_pretty(&map).expect("series serialize");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, mean: f64) -> SeriesPoint {
        SeriesPoint {
            x,
            mean,
            std_dev: 0.5,
            min: mean - 1.0,
            max: mean + 1.0,
            n: 3,
        }
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let table = markdown_figure(
            "Fig X",
            "λ_r",
            &[
                ("a", vec![pt(4.0, 10.0), pt(6.0, 12.0)]),
                ("b", vec![pt(4.0, 8.0), pt(6.0, 9.0)]),
            ],
        );
        assert!(table.contains("### Fig X"));
        assert!(table.contains("| λ_r | a | b |"));
        assert!(table.contains("| 4.0 | 10.00 (±0.50) | 8.00 (±0.50) |"));
        assert_eq!(table.lines().count(), 6);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("rfid_sim_table_test");
        let path = dir.join("out.csv");
        write_csv(&path, &[("alg", vec![pt(4.0, 10.0)])]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("x,algorithm,mean"));
        assert!(body.contains("4,alg,10,0.5,9,11,3"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_is_parseable() {
        let dir = std::env::temp_dir().join("rfid_sim_json_test");
        let path = dir.join("out.json");
        write_json(&path, &[("alg", vec![pt(4.0, 10.0)])]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["alg"][0]["mean"], 10.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_series_renders() {
        let table = markdown_figure("Empty", "x", &[]);
        assert!(table.contains("### Empty"));
    }
}
