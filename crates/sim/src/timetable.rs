//! Per-reader activation timetables.
//!
//! A covering schedule is slot-major (which readers fire in slot `q`); the
//! operator view is reader-major (when does reader `v` fire). The
//! timetable transposes the schedule, computes duty-cycle statistics, and
//! renders the classic Gantt-style text chart that `mrrfid schedule` and
//! the examples print.

use rfid_core::CoveringSchedule;
use serde::{Deserialize, Serialize};

/// Reader-major view of a covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timetable {
    /// `active[v]` = sorted slot indices in which reader `v` transmits.
    pub active: Vec<Vec<usize>>,
    /// Total slots in the schedule.
    pub slots: usize,
}

impl Timetable {
    /// Builds the timetable for a deployment of `n_readers`.
    pub fn build(schedule: &CoveringSchedule, n_readers: usize) -> Self {
        let mut active = vec![Vec::new(); n_readers];
        for (q, slot) in schedule.slots.iter().enumerate() {
            for &v in &slot.active {
                active[v].push(q);
            }
        }
        Timetable {
            active,
            slots: schedule.slots.len(),
        }
    }

    /// Fraction of slots reader `v` is active in (0 for an empty
    /// schedule).
    pub fn duty_cycle(&self, v: usize) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.active[v].len() as f64 / self.slots as f64
        }
    }

    /// Mean duty cycle across readers.
    pub fn mean_duty_cycle(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        (0..self.active.len())
            .map(|v| self.duty_cycle(v))
            .sum::<f64>()
            / self.active.len() as f64
    }

    /// Number of on/off transitions reader `v` makes over the schedule
    /// (the RASPberry stability concern, per reader).
    pub fn switch_count(&self, v: usize) -> usize {
        let mut on = false;
        let mut switches = 0;
        let set: std::collections::BTreeSet<usize> = self.active[v].iter().copied().collect();
        for q in 0..self.slots {
            let now = set.contains(&q);
            if now != on {
                switches += 1;
                on = now;
            }
        }
        if on {
            switches += 1; // final power-down
        }
        switches
    }

    /// Text Gantt chart: one row per reader, `█` = active slot.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (v, slots) in self.active.iter().enumerate() {
            let set: std::collections::BTreeSet<usize> = slots.iter().copied().collect();
            out.push_str(&format!("reader {v:>3} |"));
            for q in 0..self.slots {
                out.push(if set.contains(&q) { '█' } else { '·' });
            }
            out.push_str(&format!("| {} slots\n", slots.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_core::SlotRecord;

    fn schedule(slots: Vec<Vec<usize>>) -> CoveringSchedule {
        CoveringSchedule {
            slots: slots
                .into_iter()
                .map(|active| SlotRecord {
                    active,
                    served: vec![],
                    fallback: false,
                })
                .collect(),
            uncoverable: vec![],
        }
    }

    #[test]
    fn transposition_is_correct() {
        let s = schedule(vec![vec![0, 2], vec![1], vec![0]]);
        let t = Timetable::build(&s, 3);
        assert_eq!(t.active[0], vec![0, 2]);
        assert_eq!(t.active[1], vec![1]);
        assert_eq!(t.active[2], vec![0]);
        assert_eq!(t.slots, 3);
    }

    #[test]
    fn duty_cycles() {
        let s = schedule(vec![vec![0], vec![0], vec![1], vec![]]);
        let t = Timetable::build(&s, 2);
        assert_eq!(t.duty_cycle(0), 0.5);
        assert_eq!(t.duty_cycle(1), 0.25);
        assert!((t.mean_duty_cycle() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn switch_counting() {
        // reader 0 active in slots 0,1 then off then on in 3: on,off,on,off = 4
        let s = schedule(vec![vec![0], vec![0], vec![], vec![0]]);
        let t = Timetable::build(&s, 1);
        assert_eq!(t.switch_count(0), 4);
        // constant-on reader: power-up + final power-down
        let s = schedule(vec![vec![0], vec![0]]);
        let t = Timetable::build(&s, 1);
        assert_eq!(t.switch_count(0), 2);
        // never-on reader
        let s = schedule(vec![vec![], vec![]]);
        let t = Timetable::build(&s, 1);
        assert_eq!(t.switch_count(0), 0);
    }

    #[test]
    fn gantt_rendering() {
        let s = schedule(vec![vec![0], vec![1], vec![0]]);
        let t = Timetable::build(&s, 2);
        let text = t.render_text();
        assert!(text.contains("reader   0 |█·█| 2 slots"));
        assert!(text.contains("reader   1 |·█·| 1 slots"));
    }

    #[test]
    fn empty_schedule() {
        let s = schedule(vec![]);
        let t = Timetable::build(&s, 2);
        assert_eq!(t.duty_cycle(0), 0.0);
        assert_eq!(t.mean_duty_cycle(), 0.0);
        assert_eq!(t.switch_count(1), 0);
    }
}
