//! Property-based tests for the schedulers, on deployments with *wild*
//! radius distributions (the "general case" the paper is about —
//! per-reader radii spanning orders of magnitude).

use proptest::prelude::*;
use rfid_core::exact::exact_mwfs_restricted;
use rfid_core::{
    covering_schedule_with, make_scheduler, AlgorithmKind, McsOptions, OneShotInput,
    OneShotScheduler,
};
use rfid_geometry::{Point, Rect};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Deployment, TagSet, WeightEvaluator};

/// Deployments with radii spanning two orders of magnitude — far harsher
/// than the Poisson evaluation model; exactly the multi-level regime the
/// PTAS level partition exists for.
fn arb_wild_deployment() -> impl Strategy<Value = Deployment> {
    let reader = (0.0..100.0f64, 0.0..100.0f64, 0.5..60.0f64, 0.05..1.0f64);
    let tag = (0.0..100.0f64, 0.0..100.0f64);
    (
        proptest::collection::vec(reader, 1..18),
        proptest::collection::vec(tag, 1..80),
    )
        .prop_map(|(readers, tags)| {
            let mut pos = Vec::new();
            let mut big = Vec::new();
            let mut small = Vec::new();
            for (x, y, interference, frac) in readers {
                pos.push(Point::new(x, y));
                big.push(interference);
                small.push(interference * frac);
            }
            Deployment::new(
                Rect::square(100.0),
                pos,
                big,
                small,
                tags.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Feasibility of every scheduler under extreme radius heterogeneity.
    #[test]
    fn schedulers_stay_feasible_on_wild_radii(d in arb_wild_deployment(), seed in 0u64..50) {
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        for kind in AlgorithmKind::paper_lineup() {
            let set = make_scheduler(kind, seed).schedule(&input);
            prop_assert!(d.is_feasible(&set), "{:?} produced {:?}", kind, set);
        }
    }

    /// Exact MWFS dominates singletons and respects the sub-additive
    /// upper bound.
    #[test]
    fn exact_solution_bounds(d in arb_wild_deployment()) {
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let all: Vec<usize> = (0..d.n_readers()).collect();
        let best = exact_mwfs_restricted(&c, &g, &unread, &all, &[]);
        let mut w = WeightEvaluator::new(&c);
        let best_w = w.weight(&best, &unread);
        let max_singleton = (0..d.n_readers())
            .map(|v| w.singleton_weight(v, &unread))
            .max()
            .unwrap_or(0);
        prop_assert!(best_w >= max_singleton, "optimum at least the best singleton");
        let singleton_total: usize = (0..d.n_readers())
            .map(|v| w.singleton_weight(v, &unread))
            .sum();
        prop_assert!(best_w <= singleton_total);
    }

    /// MCS completeness for every algorithm on wild deployments: every
    /// coverable tag is served exactly once, no matter the scheduler.
    #[test]
    fn covering_schedules_complete(d in arb_wild_deployment(), kind_idx in 0usize..5) {
        let kind = AlgorithmKind::paper_lineup()[kind_idx];
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut scheduler = make_scheduler(kind, 3);
        let schedule = covering_schedule_with(
            &d, &c, &g, scheduler.as_mut(), &McsOptions::new().max_slots(50_000),
        )
        .expect("strict covering schedule diverged")
        .schedule;
        prop_assert_eq!(schedule.tags_served(), c.coverable_count(), "{:?}", kind);
        let mut seen = std::collections::BTreeSet::new();
        for slot in &schedule.slots {
            prop_assert!(d.is_feasible(&slot.active));
            for &t in &slot.served {
                prop_assert!(seen.insert(t), "tag {} served twice", t);
            }
        }
    }

    /// The exact solver with a base context never does worse than
    /// ignoring the candidates entirely.
    #[test]
    fn exact_with_base_is_monotone(d in arb_wild_deployment()) {
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let mut w = WeightEvaluator::new(&c);
        // base = heaviest reader alone
        let base_v = (0..d.n_readers())
            .max_by_key(|&v| w.singleton_weight(v, &unread))
            .unwrap();
        let candidates: Vec<usize> = (0..d.n_readers()).filter(|&v| v != base_v).collect();
        let extra = exact_mwfs_restricted(&c, &g, &unread, &candidates, &[base_v]);
        let mut union = extra.clone();
        union.push(base_v);
        prop_assert!(g.is_independent_set(&union));
        prop_assert!(
            w.weight(&union, &unread) >= w.weight(&[base_v], &unread),
            "context search must not lose weight"
        );
    }

    /// PTAS shifting invariance: whatever (k, Λ) we pick, the result is
    /// feasible and within the sub-additive upper bound.
    #[test]
    fn ptas_parameter_robustness(d in arb_wild_deployment(), k in 2usize..5, lambda in 1usize..5) {
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = rfid_core::PtasScheduler { k, lambda_cap: lambda, augment: false, ..Default::default() };
        let set = s.schedule(&input);
        prop_assert!(d.is_feasible(&set));
    }
}
