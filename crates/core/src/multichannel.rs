//! Multi-channel reader activation — the extension the paper points to in
//! its related work (Section VII).
//!
//! "In the recent EPCGlobal Gen 2 standard, a dense reading mode has been
//! proposed, where the tag responses happen in different channels than the
//! readers. If the number of channels are sufficient, this technique
//! eliminates reader-tag collisions." Zhou et al. \[7\] likewise extend
//! their scheduler to multiple channels.
//!
//! Model: the spectrum offers `k` channels. Readers activated on
//! *different* channels never jam each other (no RTc across channels);
//! readers sharing a channel must still be pairwise independent. Passive
//! tags, however, are not frequency selective — a tag inside two active
//! interrogation regions still hears colliding interrogations, so
//! reader–reader collisions (RRc) apply across channels and the weight of
//! a multi-channel activation is still "unread tags covered by exactly one
//! active reader".
//!
//! The one-shot problem becomes: choose an activation `X ⊆ V` and a
//! channel assignment `ch : X → {0..k}` with every same-channel pair
//! independent, maximising `w(X)`. For `k = 1` this is exactly the paper's
//! MWFS problem; for `k ≥ χ(G)` (the interference graph's chromatic
//! number) the feasibility constraint vanishes and only RRc limits the
//! weight.

use crate::scheduler::OneShotInput;
use rfid_model::{IncrementalWeight, ReaderId, WeightEvaluator};
use serde::{Deserialize, Serialize};

/// A multi-channel activation: readers with their assigned channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelAssignment {
    /// `(reader, channel)` pairs, sorted by reader id. Channels are dense
    /// in `0..channels`.
    pub assignment: Vec<(ReaderId, usize)>,
    /// Number of channels that were available.
    pub channels: usize,
}

impl ChannelAssignment {
    /// All activated readers regardless of channel, sorted.
    pub fn active_readers(&self) -> Vec<ReaderId> {
        self.assignment.iter().map(|&(v, _)| v).collect()
    }

    /// Readers on one channel, sorted.
    pub fn on_channel(&self, ch: usize) -> Vec<ReaderId> {
        self.assignment
            .iter()
            .filter(|&&(_, c)| c == ch)
            .map(|&(v, _)| v)
            .collect()
    }

    /// Validates the multi-channel feasibility rule: every same-channel
    /// pair independent in the interference graph.
    pub fn is_feasible(&self, graph: &rfid_graph::Csr) -> bool {
        for (i, &(a, ca)) in self.assignment.iter().enumerate() {
            for &(b, cb) in &self.assignment[i + 1..] {
                if ca == cb && graph.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

/// Greedy multi-channel scheduler (GHC generalised across channels).
///
/// Maintains one global RRc-aware incremental weight; repeatedly assigns
/// the `(reader, channel)` pair with the best weight increment among pairs
/// that keep the same-channel independence, until no strictly positive
/// increment remains. Runs in `O(k · n² · Δ)` worst case — comfortable at
/// deployment scale.
///
/// ```
/// use rfid_core::{MultiChannelGreedy, OneShotInput};
/// use rfid_model::{interference::interference_graph, Coverage, Scenario, TagSet};
/// let d = Scenario::paper_evaluation(14.0, 6.0).generate(3);
/// let coverage = Coverage::build(&d);
/// let graph = interference_graph(&d);
/// let unread = TagSet::all_unread(d.n_tags());
/// let input = OneShotInput::new(&d, &coverage, &graph, &unread);
/// let two = MultiChannelGreedy::new(2);
/// let assignment = two.schedule(&input);
/// assert!(assignment.is_feasible(&graph)); // same-channel pairs independent
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelGreedy {
    /// Available channels `k ≥ 1`.
    pub channels: usize,
}

impl MultiChannelGreedy {
    /// Creates a scheduler for `channels ≥ 1` channels.
    pub fn new(channels: usize) -> Self {
        assert!(channels >= 1, "need at least one channel");
        MultiChannelGreedy { channels }
    }

    /// Computes a multi-channel activation for one slot.
    pub fn schedule(&self, input: &OneShotInput<'_>) -> ChannelAssignment {
        let n = input.deployment.n_readers();
        let mut inc = IncrementalWeight::new(input.coverage, input.unread);
        // blocked[ch][v]: v conflicts with a chosen same-channel reader.
        let mut blocked = vec![vec![false; n]; self.channels];
        let mut channel_of: Vec<Option<usize>> = vec![None; n];
        loop {
            // Best (delta, reader, channel); reader delta is channel-
            // independent (weight ignores channels), so evaluate once per
            // reader and pick its first open channel.
            let mut best: Option<(isize, ReaderId, usize)> = None;
            for v in 0..n {
                if channel_of[v].is_some() {
                    continue;
                }
                let Some(ch) = (0..self.channels).find(|&ch| !blocked[ch][v]) else {
                    continue;
                };
                let delta = inc.delta_if_added(v);
                if best.is_none_or(|(bd, _, _)| delta > bd) {
                    best = Some((delta, v, ch));
                }
            }
            let Some((delta, v, ch)) = best else { break };
            if delta <= 0 {
                break;
            }
            inc.add(v);
            channel_of[v] = Some(ch);
            for &t in input.graph.neighbors(v) {
                blocked[ch][t as usize] = true;
            }
        }
        let mut assignment: Vec<(ReaderId, usize)> = channel_of
            .iter()
            .enumerate()
            .filter_map(|(v, ch)| ch.map(|c| (v, c)))
            .collect();
        assignment.sort_unstable();
        ChannelAssignment {
            assignment,
            channels: self.channels,
        }
    }

    /// Weight of an assignment (channels do not matter for RRc).
    pub fn weight_of(&self, input: &OneShotInput<'_>, a: &ChannelAssignment) -> usize {
        WeightEvaluator::new(input.coverage).weight(&a.active_readers(), input.unread)
    }
}

/// A covering schedule whose slots are multi-channel activations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiChannelSchedule {
    /// Per-slot activations with channel assignments.
    pub slots: Vec<ChannelAssignment>,
    /// Tags served per slot (parallel to `slots`).
    pub served: Vec<Vec<usize>>,
    /// Tags no reader covers.
    pub uncoverable: Vec<usize>,
}

impl MultiChannelSchedule {
    /// Number of time slots.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Total tags served.
    pub fn tags_served(&self) -> usize {
        self.served.iter().map(Vec::len).sum()
    }
}

/// Greedy multi-channel covering schedule: each slot activates a
/// [`MultiChannelGreedy`] assignment, serves its well-covered tags, and
/// repeats until every coverable tag is read. With `channels = 1` this is
/// the paper's MCS loop driven by GHC; with more channels each slot packs
/// readers from several colour groups, shortening the schedule toward the
/// RRc-limited floor.
pub fn multichannel_covering_schedule(
    deployment: &rfid_model::Deployment,
    coverage: &rfid_model::Coverage,
    graph: &rfid_graph::Csr,
    channels: usize,
    max_slots: usize,
) -> MultiChannelSchedule {
    let mut unread = rfid_model::TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<usize> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let scheduler = MultiChannelGreedy::new(channels);
    let mut weights = WeightEvaluator::new(coverage);
    let mut slots = Vec::new();
    let mut served_log = Vec::new();
    let coverable = coverage.coverable_count();
    let mut served_total = 0usize;
    while served_total < coverable {
        assert!(
            slots.len() < max_slots,
            "multichannel schedule exceeded {max_slots} slots"
        );
        let input = OneShotInput::new(deployment, coverage, graph, &unread);
        let assignment = scheduler.schedule(&input);
        let mut served = weights.well_covered(&assignment.active_readers(), &unread);
        let mut chosen = assignment;
        if served.is_empty() {
            // Progress guard identical to the single-channel MCS loop.
            let best = (0..deployment.n_readers())
                .max_by_key(|&v| weights.singleton_weight(v, &unread))
                .expect("readers exist while coverable tags remain");
            chosen = ChannelAssignment {
                assignment: vec![(best, 0)],
                channels,
            };
            served = weights.well_covered(&[best], &unread);
            assert!(!served.is_empty(), "guard must serve something");
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        slots.push(chosen);
        served_log.push(served);
    }
    MultiChannelSchedule {
        slots,
        served: served_log,
        uncoverable,
    }
}

/// Exhaustive multi-channel optimum for tiny instances (test oracle):
/// every reader takes a channel in `0..k` or stays off; same-channel
/// pairs must be independent. `O((k+1)^n)`.
pub fn exact_multichannel(input: &OneShotInput<'_>, channels: usize) -> ChannelAssignment {
    let n = input.deployment.n_readers();
    assert!(
        n <= 12,
        "exhaustive multichannel is for test-sized instances"
    );
    assert!(channels >= 1);
    let mut weights = WeightEvaluator::new(input.coverage);
    let mut best: Vec<(ReaderId, usize)> = Vec::new();
    let mut best_w = 0usize;
    let base = channels + 1; // 0 = off, 1..=k = channel index + 1
    let total = (base as u64).pow(n as u32);
    'outer: for code in 0..total {
        let mut c = code;
        let mut assignment: Vec<(ReaderId, usize)> = Vec::new();
        for v in 0..n {
            let d = (c % base as u64) as usize;
            c /= base as u64;
            if d > 0 {
                assignment.push((v, d - 1));
            }
        }
        // same-channel independence
        for (i, &(a, ca)) in assignment.iter().enumerate() {
            for &(b, cb) in &assignment[i + 1..] {
                if ca == cb && input.graph.has_edge(a, b) {
                    continue 'outer;
                }
            }
        }
        let active: Vec<ReaderId> = assignment.iter().map(|&(v, _)| v).collect();
        let w = weights.weight(&active, input.unread);
        if w > best_w || (w == best_w && assignment.len() < best.len()) {
            best_w = w;
            best = assignment;
        }
    }
    ChannelAssignment {
        assignment: best,
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hill_climbing::HillClimbing;
    use crate::scheduler::OneShotScheduler;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel, TagSet};

    fn setup(n: usize, seed: u64) -> (rfid_model::Deployment, Coverage, rfid_graph::Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: n,
            n_tags: 200,
            region_side: 80.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 16.0,
                lambda_interrogation: 7.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn single_channel_matches_ghc() {
        for seed in 0..4 {
            let (d, c, g) = setup(20, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let multi = MultiChannelGreedy::new(1).schedule(&input);
            let ghc = HillClimbing::default().schedule(&input);
            assert_eq!(multi.active_readers(), ghc, "seed {seed}");
            assert!(multi.is_feasible(&g));
        }
    }

    #[test]
    fn assignments_are_feasible_per_channel() {
        for channels in 1..=4 {
            for seed in 0..3 {
                let (d, c, g) = setup(25, seed);
                let unread = TagSet::all_unread(d.n_tags());
                let input = OneShotInput::new(&d, &c, &g, &unread);
                let a = MultiChannelGreedy::new(channels).schedule(&input);
                assert!(a.is_feasible(&g), "channels={channels} seed={seed}");
                // each channel class alone is a feasible scheduling set
                for ch in 0..channels {
                    assert!(d.is_feasible(&a.on_channel(ch)));
                }
            }
        }
    }

    #[test]
    fn more_channels_never_hurt() {
        for seed in 0..4 {
            let (d, c, g) = setup(25, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut prev = 0usize;
            for channels in 1..=4 {
                let s = MultiChannelGreedy::new(channels);
                let a = s.schedule(&input);
                let w = s.weight_of(&input, &a);
                assert!(
                    w + 2 >= prev,
                    "seed {seed}: weight dropped hard {prev} → {w} at k={channels}"
                );
                prev = prev.max(w);
            }
        }
    }

    #[test]
    fn enough_channels_reach_rrc_limit() {
        // With channels ≥ Δ+1 the interference constraint is fully liftable,
        // so the greedy can activate any RRc-optimal set it wants.
        let (d, c, g) = setup(15, 1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let k = g.max_degree() + 1;
        let a = MultiChannelGreedy::new(k).schedule(&input);
        let w = MultiChannelGreedy::new(k).weight_of(&input, &a);
        // Single-channel optimum cannot beat the unconstrained greedy by
        // more than the RRc structure allows; sanity: ≥ single-channel GHC.
        let single = MultiChannelGreedy::new(1);
        let sw = single.weight_of(&input, &single.schedule(&input));
        assert!(w >= sw);
    }

    #[test]
    fn matches_exact_on_tiny_instances() {
        for seed in 0..3 {
            let (d, c, g) = setup(8, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            for channels in 1..=2 {
                let greedy = MultiChannelGreedy::new(channels);
                let ga = greedy.schedule(&input);
                let oa = exact_multichannel(&input, channels);
                let gw = greedy.weight_of(&input, &ga);
                let ow = greedy.weight_of(&input, &oa);
                assert!(oa.is_feasible(&g));
                assert!(gw <= ow, "greedy beat the exhaustive optimum?!");
                assert!(
                    gw * 10 >= ow * 7,
                    "seed {seed} k={channels}: greedy {gw} far below optimum {ow}"
                );
            }
        }
    }

    #[test]
    fn covering_schedule_shrinks_with_channels() {
        let (d, c, g) = setup(25, 4);
        let one = multichannel_covering_schedule(&d, &c, &g, 1, 10_000);
        let three = multichannel_covering_schedule(&d, &c, &g, 3, 10_000);
        assert_eq!(one.tags_served(), c.coverable_count());
        assert_eq!(three.tags_served(), c.coverable_count());
        assert!(
            three.size() <= one.size(),
            "3 channels ({}) must not need more slots than 1 ({})",
            three.size(),
            one.size()
        );
        for (slot, served) in three.slots.iter().zip(&three.served) {
            assert!(slot.is_feasible(&g));
            assert!(!served.is_empty());
        }
    }

    #[test]
    fn covering_schedule_serves_each_tag_once() {
        let (d, c, g) = setup(20, 5);
        let sched = multichannel_covering_schedule(&d, &c, &g, 2, 10_000);
        let mut seen = std::collections::BTreeSet::new();
        for served in &sched.served {
            for &t in served {
                assert!(seen.insert(t), "tag {t} served twice");
            }
        }
        assert_eq!(seen.len() + sched.uncoverable.len(), d.n_tags());
    }

    #[test]
    fn channel_classes_partition_the_activation() {
        let (d, c, g) = setup(25, 2);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let a = MultiChannelGreedy::new(3).schedule(&input);
        let mut union: Vec<usize> = (0..3).flat_map(|ch| a.on_channel(ch)).collect();
        union.sort_unstable();
        assert_eq!(union, a.active_readers());
    }
}
