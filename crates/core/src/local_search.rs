//! Swap-based local search post-optimisation.
//!
//! Any feasible scheduling set can be polished: repeatedly try to
//! (a) add a reader with positive marginal weight, (b) drop a reader whose
//! removal raises the weight (it was eating its neighbours' overlap), or
//! (c) swap one active reader for an inactive one when the exchange gains.
//! Each accepted move strictly increases `w(X)`, so termination is
//! immediate (`w ≤ m`); the result is 1-add/1-drop/1-swap optimal.
//!
//! This is *not* one of the paper's algorithms — it is the ablation knife
//! used to measure how far each scheduler's output sits from local
//! optimality (`results/ablation.md`), and an optional `improve = true`
//! switch for downstream users who can spare the extra milliseconds.

use crate::scheduler::OneShotInput;
use rfid_model::{IncrementalWeight, ReaderId};
use rfid_obs::{counter, span};

/// Outcome of a local-search pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImprovementReport {
    /// The improved feasible set, sorted.
    pub set: Vec<ReaderId>,
    /// Weight before optimisation.
    pub initial_weight: usize,
    /// Weight after optimisation.
    pub final_weight: usize,
    /// Accepted moves, in order: `+v`, `−v`, or `swap out→in` encoded as
    /// (kind, out, in) with `usize::MAX` for the unused side.
    pub moves: usize,
}

/// Runs add/drop/swap local search from `start` (which must be feasible).
///
/// Deterministic: candidate moves are scanned in id order and the first
/// strictly-improving one is taken (first-improvement strategy — on these
/// weights it converges in a handful of passes).
pub fn improve_schedule(input: &OneShotInput<'_>, start: &[ReaderId]) -> ImprovementReport {
    debug_assert!(
        input.deployment.is_feasible(start),
        "local search needs a feasible start"
    );
    let sub = input.subscriber();
    let _span = span!(sub, "local_search.improve");
    let n = input.deployment.n_readers();
    let graph = input.graph;
    let mut inc = IncrementalWeight::new(input.coverage, input.unread);
    let mut conflicts = vec![0usize; n]; // active neighbours per reader
    for &v in start {
        inc.add(v);
        for &t in graph.neighbors(v) {
            conflicts[t as usize] += 1;
        }
    }
    let initial_weight = inc.weight();
    let mut moves = 0usize;
    loop {
        let mut improved = false;
        // (a) add
        for v in 0..n {
            if !inc.is_active(v) && conflicts[v] == 0 && inc.delta_if_added(v) > 0 {
                inc.add(v);
                for &t in graph.neighbors(v) {
                    conflicts[t as usize] += 1;
                }
                moves += 1;
                improved = true;
            }
        }
        // (b) drop: removal with positive delta means the reader was
        // costing more overlap than it contributed exclusively.
        for v in 0..n {
            if inc.is_active(v) {
                let delta = inc.remove(v);
                if delta > 0 {
                    for &t in graph.neighbors(v) {
                        conflicts[t as usize] -= 1;
                    }
                    moves += 1;
                    improved = true;
                } else {
                    inc.add(v); // revert
                }
            }
        }
        // (c) destroy-and-repair: deactivate u, then greedily refill with
        // best positive-delta readers (u excluded); keep the exchange only
        // if it strictly beats the original weight. This generalises a
        // 1-swap to 1-out/k-in and escapes the Figure-2 trap where a
        // middle reader blocks two better flank readers.
        for u in 0..n {
            if !inc.is_active(u) {
                continue;
            }
            let before = inc.weight();
            inc.remove(u);
            for &t in graph.neighbors(u) {
                conflicts[t as usize] -= 1;
            }
            let mut added: Vec<ReaderId> = Vec::new();
            loop {
                // Refill scan through the `par` facade: ties resolve to
                // the smallest id, matching the sequential
                // first-max-wins scan this replaces.
                let best = crate::par::argmax_by_key(n, n.saturating_mul(16), |v| {
                    if v == u || inc.is_active(v) || conflicts[v] != 0 {
                        return None;
                    }
                    let delta = inc.delta_if_added(v);
                    (delta > 0).then_some(delta)
                });
                let Some((_, v)) = best else { break };
                inc.add(v);
                for &t in graph.neighbors(v) {
                    conflicts[t as usize] += 1;
                }
                added.push(v);
            }
            if inc.weight() > before {
                moves += 1;
                improved = true;
            } else {
                // revert the repair and the removal
                for v in added {
                    inc.remove(v);
                    for &t in graph.neighbors(v) {
                        conflicts[t as usize] -= 1;
                    }
                }
                inc.add(u);
                for &t in graph.neighbors(u) {
                    conflicts[t as usize] += 1;
                }
            }
        }
        if !improved {
            break;
        }
    }
    let mut set = inc.active().to_vec();
    set.sort_unstable();
    let final_weight = inc.weight();
    counter!(sub, "local_search.moves", moves as u64);
    counter!(
        sub,
        "local_search.weight_gain",
        (final_weight - initial_weight) as u64
    );
    debug_assert!(final_weight >= initial_weight);
    ImprovementReport {
        set,
        initial_weight,
        final_weight,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactScheduler;
    use crate::hill_climbing::HillClimbing;
    use crate::scheduler::OneShotScheduler;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel, TagSet};

    fn setup(n: usize, seed: u64) -> (rfid_model::Deployment, Coverage, rfid_graph::Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: n,
            n_tags: 300,
            region_side: 90.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 15.0,
                lambda_interrogation: 7.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn never_decreases_weight_and_stays_feasible() {
        for seed in 0..5 {
            let (d, c, g) = setup(25, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let start = HillClimbing::default().schedule(&input);
            let report = improve_schedule(&input, &start);
            assert!(report.final_weight >= report.initial_weight, "seed {seed}");
            assert!(d.is_feasible(&report.set), "seed {seed}");
            assert_eq!(report.final_weight, input.weight_of(&report.set));
        }
    }

    #[test]
    fn figure2_trap_is_escaped() {
        use rfid_geometry::{Point, Rect};
        // GHC stalls at {B} (weight 3); a swap B→A then add C reaches the
        // optimum {A, C} (weight 4).
        let d = rfid_model::Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let start = HillClimbing::default().schedule(&input);
        assert_eq!(input.weight_of(&start), 3);
        let report = improve_schedule(&input, &start);
        assert_eq!(
            report.final_weight, 4,
            "local search should reach the Figure-2 optimum"
        );
        assert!(report.moves > 0);
    }

    #[test]
    fn exact_start_is_already_locally_optimal() {
        for seed in 0..3 {
            let (d, c, g) = setup(14, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let opt = ExactScheduler::default().schedule(&input);
            let report = improve_schedule(&input, &opt);
            assert_eq!(report.final_weight, report.initial_weight, "seed {seed}");
            assert_eq!(
                report.set, opt,
                "seed {seed}: exact optimum must be a fixed point"
            );
        }
    }

    #[test]
    fn empty_start_climbs_to_something() {
        let (d, c, g) = setup(20, 1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let report = improve_schedule(&input, &[]);
        assert!(report.final_weight > 0);
        assert!(d.is_feasible(&report.set));
    }
}
