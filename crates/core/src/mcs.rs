//! The Minimum Covering Schedule greedy driver (paper Section III).
//!
//! "At the q-th time-slot, we choose a feasible scheduling set with maximum
//! weight and let them be active at time-slot q; it terminates when there
//! are no unread tags remained." — Theorem 1 shows this is a `log n`
//! approximation of the minimum covering schedule, provided each slot's set
//! is a maximum weighted feasible scheduling set. Plugging in the
//! *approximate* one-shot schedulers of this crate yields the algorithms
//! compared in Figures 6–7.
//!
//! Tags outside every interrogation region can never be served; the loop
//! ends when all *coverable* tags are read. A progress guard handles
//! approximate schedulers that return a zero-weight set while coverable
//! tags remain: the slot is re-run with the best singleton activation
//! (always weight ≥ 1), so the schedule always terminates — the guard
//! counts as a normal slot and is recorded for diagnostics.

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{
    audit_activation, Coverage, Deployment, ReaderId, SingletonWeights, TagId, TagSet,
    WeightEvaluator,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lazily updated max-queue over singleton weights, shared by the
/// progress guards of [`try_greedy_covering_schedule`] and
/// [`resilient_covering_schedule`].
///
/// Singleton weights only ever decrease as the covering schedule marks
/// tags read (sub-additivity makes `w({v})` a monotone upper bound on any
/// future contribution of `v`), so a heap entry's cached weight is always
/// an upper bound on the reader's current weight. [`best`](Self::best)
/// pops entries, re-pushing stale ones with their corrected weight, until
/// the top is current — at that point it is the true maximum under the
/// fallback order `(weight, Reverse(id))`, i.e. highest weight with ties
/// towards the smallest id, exactly the order the eager
/// `max_by_key` scan used. Total re-push work over a whole schedule is
/// bounded by the number of (tag, reader) coverage incidences, replacing
/// the per-fallback-slot `O(n)` rescan.
struct LazyFallback {
    /// One entry per reader, ordered by `(cached weight, Reverse(id))`.
    heap: BinaryHeap<(usize, Reverse<ReaderId>)>,
    /// Entries popped while excluded (crashed), to restore after a query.
    deferred: Vec<(usize, Reverse<ReaderId>)>,
}

impl LazyFallback {
    fn new(singleton: &SingletonWeights<'_>) -> Self {
        LazyFallback {
            heap: (0..singleton.n_readers())
                .map(|v| (singleton.get(v), Reverse(v)))
                .collect(),
            deferred: Vec::new(),
        }
    }

    /// The reader maximising `(current weight, Reverse(id))` among those
    /// not in `excluded`, or `None` when every reader is excluded. The
    /// queue keeps one entry per reader afterwards (the selected reader
    /// stays queued — its weight decreasing later is exactly the
    /// staleness the laziness absorbs).
    fn best(
        &mut self,
        singleton: &SingletonWeights<'_>,
        excluded: &[ReaderId],
    ) -> Option<ReaderId> {
        debug_assert!(self.deferred.is_empty());
        let mut found = None;
        while let Some((cached, Reverse(v))) = self.heap.pop() {
            let current = singleton.get(v);
            debug_assert!(current <= cached, "singleton weight increased");
            if current < cached {
                self.heap.push((current, Reverse(v)));
                continue;
            }
            if excluded.contains(&v) {
                self.deferred.push((cached, Reverse(v)));
                continue;
            }
            // Current and admissible: every remaining entry has a cached
            // (hence current) key no greater than this one's.
            self.heap.push((cached, Reverse(v)));
            found = Some(v);
            break;
        }
        self.heap.extend(self.deferred.drain(..));
        found
    }
}

/// Why a covering schedule could not be driven to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Neither the one-shot scheduler nor the singleton fallback could
    /// serve a single coverable unread tag — no activation makes progress.
    NoProgress {
        /// Tags served before the stall.
        served: usize,
        /// Coverable tags in the deployment.
        coverable: usize,
    },
    /// The slot budget ran out with coverable tags still unread.
    SlotBudgetExhausted {
        /// The exhausted budget.
        max_slots: usize,
        /// Tags served within the budget.
        served: usize,
        /// Coverable tags in the deployment.
        coverable: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoProgress { served, coverable } => write!(
                f,
                "no activation serves any coverable unread tag ({served} of {coverable} served)"
            ),
            ScheduleError::SlotBudgetExhausted {
                max_slots,
                served,
                coverable,
            } => write!(
                f,
                "covering schedule exceeded {max_slots} slots ({served} of {coverable} tags served)"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One time slot of a covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Activated readers (a feasible scheduling set).
    pub active: Vec<ReaderId>,
    /// Tags served this slot (well-covered under `active`).
    pub served: Vec<TagId>,
    /// `true` when the one-shot scheduler returned a zero-weight set and
    /// the singleton fallback produced this slot instead.
    pub fallback: bool,
}

/// A complete covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringSchedule {
    /// The slots in activation order.
    pub slots: Vec<SlotRecord>,
    /// Tags that no reader covers (never serviceable).
    pub uncoverable: Vec<TagId>,
}

impl CoveringSchedule {
    /// The paper's metric: number of time slots to read every coverable
    /// tag.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Total tags served.
    pub fn tags_served(&self) -> usize {
        self.slots.iter().map(|s| s.served.len()).sum()
    }

    /// Number of slots produced by the progress guard.
    pub fn fallback_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.fallback).count()
    }
}

/// Runs the greedy covering-schedule loop with the given one-shot
/// scheduler. `max_slots` bounds runaway schedulers (a panic beyond it
/// indicates a scheduler failing to make progress, which the fallback
/// makes impossible).
///
/// ```
/// use rfid_core::{AlgorithmKind, greedy_covering_schedule, make_scheduler};
/// use rfid_model::{interference::interference_graph, Coverage, Scenario};
/// let d = Scenario::paper_evaluation(14.0, 6.0).generate(7);
/// let coverage = Coverage::build(&d);
/// let graph = interference_graph(&d);
/// let mut alg2 = make_scheduler(AlgorithmKind::LocalGreedy, 0);
/// let schedule = greedy_covering_schedule(&d, &coverage, &graph, alg2.as_mut(), 100_000);
/// // every coverable tag is read exactly once
/// assert_eq!(schedule.tags_served(), coverage.coverable_count());
/// ```
pub fn greedy_covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> CoveringSchedule {
    try_greedy_covering_schedule(deployment, coverage, graph, scheduler, max_slots)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The fallible form of [`greedy_covering_schedule`]: a stalled or
/// over-budget run comes back as a [`ScheduleError`] instead of a panic,
/// so callers driving untrusted or degraded schedulers can recover.
pub fn try_greedy_covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> Result<CoveringSchedule, ScheduleError> {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let mut weights = WeightEvaluator::new(coverage);
    // Cross-slot incremental state: singleton weights are updated per
    // served tag (via `Coverage::readers_of`) instead of rescanned, feed
    // the one-shot schedulers through the input, and back the lazy
    // fallback queue.
    let mut singleton = SingletonWeights::new(coverage, &unread);
    let mut fallback_queue = LazyFallback::new(&singleton);
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    while served_total < coverable_total {
        if slots.len() >= max_slots {
            return Err(ScheduleError::SlotBudgetExhausted {
                max_slots,
                served: served_total,
                coverable: coverable_total,
            });
        }
        let input = OneShotInput::new(deployment, coverage, graph, &unread)
            .with_singleton_weights(singleton.as_slice());
        let mut active = scheduler.schedule(&input);
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            // Progress guard: the best singleton always serves ≥ 1 tag when
            // a coverable unread tag exists.
            let stall = ScheduleError::NoProgress {
                served: served_total,
                coverable: coverable_total,
            };
            let best = fallback_queue.best(&singleton, &[]).ok_or(stall.clone())?;
            active = vec![best];
            served = weights.well_covered(&active, &unread);
            fallback = true;
            if served.is_empty() {
                return Err(stall);
            }
        }
        unread.mark_all_read(&served);
        singleton.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    Ok(CoveringSchedule { slots, uncoverable })
}

/// Outcome of a [`resilient_covering_schedule`] run: the schedule plus an
/// account of every degradation the loop absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientSchedule {
    /// The (possibly partial) covering schedule; every slot is feasible.
    pub schedule: CoveringSchedule,
    /// RTc pairs broken up in-slot by dropping the lower-weight member.
    pub repaired_pairs: usize,
    /// Activation entries removed because the scheduler reported the
    /// reader crashed (summed over slots). Tags those readers claimed stay
    /// unread and are requeued in later slots.
    pub crashed_dropped: usize,
    /// Coverable tags left unread because no surviving activation could
    /// serve them within the slot budget.
    pub abandoned_tags: Vec<TagId>,
}

impl ResilientSchedule {
    /// `true` when every coverable tag was served despite the faults.
    pub fn complete(&self) -> bool {
        self.abandoned_tags.is_empty()
    }
}

/// The crash-tolerant covering-schedule loop: like
/// [`try_greedy_covering_schedule`], but instead of trusting the one-shot
/// scheduler it audits every activation with
/// [`rfid_model::audit_activation`] and degrades gracefully —
///
/// * readers the scheduler reports as crashed
///   ([`OneShotScheduler::crashed_readers`]) are dropped from the
///   activation; tags they claimed are requeued for later slots;
/// * an infeasible activation (RTc pair) is repaired by dropping the
///   lower-weight member of each jammed pair rather than rejected;
/// * a stalled or over-budget run abandons the remaining tags and reports
///   them instead of panicking.
pub fn resilient_covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> ResilientSchedule {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let mut weights = WeightEvaluator::new(coverage);
    // Same cross-slot incremental state as the trusting loop.
    let mut singleton = SingletonWeights::new(coverage, &unread);
    let mut fallback_queue = LazyFallback::new(&singleton);
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    let mut repaired_pairs = 0usize;
    let mut crashed_dropped = 0usize;
    let mut stalled = false;
    while served_total < coverable_total && !stalled && slots.len() < max_slots {
        let input = OneShotInput::new(deployment, coverage, graph, &unread)
            .with_singleton_weights(singleton.as_slice());
        let mut active = scheduler.schedule(&input);
        // Crashed readers cannot transmit; their claimed tags simply stay
        // unread and get requeued.
        let crashed = scheduler.crashed_readers();
        if !crashed.is_empty() {
            let before = active.len();
            active.retain(|v| !crashed.contains(v));
            crashed_dropped += before - active.len();
        }
        // Audit-and-repair: break up every jammed pair by dropping its
        // lower-weight member until the activation is feasible.
        loop {
            let audit = audit_activation(deployment, coverage, &active, &unread);
            if audit.is_feasible() {
                break;
            }
            let (a, b) = audit.rtc_pairs[0];
            let (wa, wb) = (singleton.get(a), singleton.get(b));
            let victim = if wa <= wb { a } else { b };
            active.retain(|&u| u != victim);
            repaired_pairs += 1;
        }
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            // Progress guard restricted to surviving readers.
            match fallback_queue.best(&singleton, &crashed) {
                Some(best) => {
                    active = vec![best];
                    served = weights.well_covered(&active, &unread);
                    fallback = true;
                }
                None => served = Vec::new(),
            }
            if served.is_empty() {
                // Every remaining coverable tag is out of reach of the
                // survivors: abandon instead of looping forever.
                stalled = true;
                continue;
            }
        }
        unread.mark_all_read(&served);
        singleton.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    let abandoned_tags: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| coverage.is_coverable(t) && unread.is_unread(t))
        .collect();
    ResilientSchedule {
        schedule: CoveringSchedule { slots, uncoverable },
        repaired_pairs,
        crashed_dropped,
        abandoned_tags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactScheduler;
    use crate::hill_climbing::HillClimbing;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    fn small_scenario(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 12,
            n_tags: 120,
            region_side: 60.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 10.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn schedule_reads_every_coverable_tag_exactly_once() {
        for seed in 0..4 {
            let d = small_scenario(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let mut s = ExactScheduler::default();
            let sched = greedy_covering_schedule(&d, &c, &g, &mut s, 10_000);
            let mut all_served: Vec<TagId> =
                sched.slots.iter().flat_map(|s| s.served.clone()).collect();
            all_served.sort_unstable();
            let mut expect: Vec<TagId> = (0..d.n_tags()).filter(|&t| c.is_coverable(t)).collect();
            expect.sort_unstable();
            assert_eq!(all_served, expect, "seed {seed}");
            assert_eq!(
                sched.uncoverable.len(),
                d.n_tags() - expect.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_slot_is_feasible() {
        let d = small_scenario(7);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut s = HillClimbing::default();
        let sched = greedy_covering_schedule(&d, &c, &g, &mut s, 10_000);
        for slot in &sched.slots {
            assert!(d.is_feasible(&slot.active));
            assert!(!slot.served.is_empty(), "every slot must serve something");
        }
    }

    #[test]
    fn better_oneshot_never_needs_more_slots_much() {
        // Not a theorem (greedy is only log n-approx), but on these small
        // instances the exact one-shot should not lose to hill climbing.
        let mut exact_total = 0usize;
        let mut ghc_total = 0usize;
        for seed in 0..4 {
            let d = small_scenario(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            exact_total +=
                greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10_000).size();
            ghc_total +=
                greedy_covering_schedule(&d, &c, &g, &mut HillClimbing::default(), 10_000).size();
        }
        assert!(
            exact_total <= ghc_total,
            "exact {exact_total} slots vs GHC {ghc_total}"
        );
    }

    /// A scheduler that always returns nothing: the fallback must carry the
    /// schedule to completion.
    struct Lazy;
    impl OneShotScheduler for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn schedule(&mut self, _input: &OneShotInput<'_>) -> Vec<ReaderId> {
            Vec::new()
        }
    }

    #[test]
    fn fallback_guard_completes_the_schedule() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy_covering_schedule(&d, &c, &g, &mut Lazy, 10_000);
        assert_eq!(sched.fallback_slots(), sched.size());
        assert_eq!(
            sched.tags_served(),
            c.coverable_count(),
            "fallback-only schedule still reads everything"
        );
    }

    #[test]
    fn try_form_matches_the_panicking_form() {
        let d = small_scenario(3);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let a = greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10_000);
        let b = try_greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10_000)
            .expect("clean run must succeed");
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_slot_budget_is_an_error_not_a_panic() {
        let d = small_scenario(0);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let err = try_greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 1)
            .unwrap_err();
        match err {
            ScheduleError::SlotBudgetExhausted {
                max_slots,
                served,
                coverable,
            } => {
                assert_eq!(max_slots, 1);
                assert!(served > 0 && served < coverable);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn resilient_matches_greedy_on_a_clean_scheduler() {
        let d = small_scenario(2);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let clean = greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10_000);
        let res = resilient_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10_000);
        assert_eq!(res.schedule, clean);
        assert_eq!(res.repaired_pairs, 0);
        assert_eq!(res.crashed_dropped, 0);
        assert!(res.complete());
    }

    /// A scheduler that activates *everything* — maximally infeasible.
    struct Reckless;
    impl OneShotScheduler for Reckless {
        fn name(&self) -> &'static str {
            "reckless"
        }
        fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
            (0..input.deployment.n_readers()).collect()
        }
    }

    #[test]
    fn resilient_repairs_infeasible_activations() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        assert!(g.m() > 0, "scenario must have interference to repair");
        let res = resilient_covering_schedule(&d, &c, &g, &mut Reckless, 10_000);
        assert!(res.repaired_pairs > 0, "nothing was repaired");
        assert!(res.complete(), "abandoned {:?}", res.abandoned_tags);
        for slot in &res.schedule.slots {
            assert!(d.is_feasible(&slot.active), "unrepaired slot {slot:?}");
        }
        assert_eq!(res.schedule.tags_served(), c.coverable_count());
    }

    /// A scheduler whose reader 0 has crashed: it still *claims* reader 0
    /// in every activation, so the resilient loop must strip it.
    struct HalfDead;
    impl OneShotScheduler for HalfDead {
        fn name(&self) -> &'static str {
            "half-dead"
        }
        fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
            (0..input.deployment.n_readers()).collect()
        }
        fn crashed_readers(&self) -> Vec<ReaderId> {
            vec![0]
        }
    }

    #[test]
    fn crashed_readers_are_dropped_and_their_tags_requeued() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let res = resilient_covering_schedule(&d, &c, &g, &mut HalfDead, 10_000);
        assert!(res.crashed_dropped > 0);
        for slot in &res.schedule.slots {
            assert!(
                !slot.active.contains(&0),
                "crashed reader activated: {slot:?}"
            );
        }
        // Tags only reader 0 covers are abandoned; every other coverable
        // tag must still be served (requeued until a survivor reads it).
        let exclusive_to_0: Vec<TagId> = (0..d.n_tags())
            .filter(|&t| c.readers_of(t) == [0])
            .collect();
        assert_eq!(res.abandoned_tags, exclusive_to_0);
        assert_eq!(
            res.schedule.tags_served() + exclusive_to_0.len(),
            c.coverable_count()
        );
    }

    #[test]
    fn resilient_abandons_on_budget_instead_of_panicking() {
        let d = small_scenario(0);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let res = resilient_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 1);
        assert_eq!(res.schedule.size(), 1);
        assert!(!res.complete());
        assert_eq!(
            res.schedule.tags_served() + res.abandoned_tags.len(),
            c.coverable_count()
        );
    }

    #[test]
    fn no_tags_no_slots() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(5.0, 5.0)],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10);
        assert_eq!(sched.size(), 0);
        assert!(sched.uncoverable.is_empty());
    }

    #[test]
    fn uncoverable_tags_reported_not_served() {
        let d = Deployment::new(
            Rect::square(30.0),
            vec![Point::new(5.0, 5.0)],
            vec![4.0],
            vec![2.0],
            vec![Point::new(5.0, 6.0), Point::new(25.0, 25.0)],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10);
        assert_eq!(sched.size(), 1);
        assert_eq!(sched.uncoverable, vec![1]);
        assert_eq!(sched.tags_served(), 1);
    }
}
