//! The Minimum Covering Schedule greedy driver (paper Section III).
//!
//! "At the q-th time-slot, we choose a feasible scheduling set with maximum
//! weight and let them be active at time-slot q; it terminates when there
//! are no unread tags remained." — Theorem 1 shows this is a `log n`
//! approximation of the minimum covering schedule, provided each slot's set
//! is a maximum weighted feasible scheduling set. Plugging in the
//! *approximate* one-shot schedulers of this crate yields the algorithms
//! compared in Figures 6–7.
//!
//! Tags outside every interrogation region can never be served; the loop
//! ends when all *coverable* tags are read. A progress guard handles
//! approximate schedulers that return a zero-weight set while coverable
//! tags remain: the slot is re-run with the best singleton activation
//! (always weight ≥ 1), so the schedule always terminates — the guard
//! counts as a normal slot and is recorded for diagnostics.

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, Deployment, ReaderId, TagId, TagSet, WeightEvaluator};
use serde::{Deserialize, Serialize};

/// One time slot of a covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Activated readers (a feasible scheduling set).
    pub active: Vec<ReaderId>,
    /// Tags served this slot (well-covered under `active`).
    pub served: Vec<TagId>,
    /// `true` when the one-shot scheduler returned a zero-weight set and
    /// the singleton fallback produced this slot instead.
    pub fallback: bool,
}

/// A complete covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringSchedule {
    /// The slots in activation order.
    pub slots: Vec<SlotRecord>,
    /// Tags that no reader covers (never serviceable).
    pub uncoverable: Vec<TagId>,
}

impl CoveringSchedule {
    /// The paper's metric: number of time slots to read every coverable
    /// tag.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Total tags served.
    pub fn tags_served(&self) -> usize {
        self.slots.iter().map(|s| s.served.len()).sum()
    }

    /// Number of slots produced by the progress guard.
    pub fn fallback_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.fallback).count()
    }
}

/// Runs the greedy covering-schedule loop with the given one-shot
/// scheduler. `max_slots` bounds runaway schedulers (a panic beyond it
/// indicates a scheduler failing to make progress, which the fallback
/// makes impossible).
///
/// ```
/// use rfid_core::{AlgorithmKind, greedy_covering_schedule, make_scheduler};
/// use rfid_model::{interference::interference_graph, Coverage, Scenario};
/// let d = Scenario::paper_evaluation(14.0, 6.0).generate(7);
/// let coverage = Coverage::build(&d);
/// let graph = interference_graph(&d);
/// let mut alg2 = make_scheduler(AlgorithmKind::LocalGreedy, 0);
/// let schedule = greedy_covering_schedule(&d, &coverage, &graph, alg2.as_mut(), 100_000);
/// // every coverable tag is read exactly once
/// assert_eq!(schedule.tags_served(), coverage.coverable_count());
/// ```
pub fn greedy_covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> CoveringSchedule {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> =
        (0..deployment.n_tags()).filter(|&t| !coverage.is_coverable(t)).collect();
    let mut weights = WeightEvaluator::new(coverage);
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    while served_total < coverable_total {
        assert!(
            slots.len() < max_slots,
            "covering schedule exceeded {max_slots} slots ({} of {} tags served)",
            served_total,
            coverable_total
        );
        let input = OneShotInput::new(deployment, coverage, graph, &unread);
        let mut active = scheduler.schedule(&input);
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            // Progress guard: the best singleton always serves ≥ 1 tag when
            // a coverable unread tag exists.
            let best = (0..deployment.n_readers())
                .max_by_key(|&v| (weights.singleton_weight(v, &unread), std::cmp::Reverse(v)))
                .expect("at least one reader exists when coverable tags remain");
            active = vec![best];
            served = weights.well_covered(&active, &unread);
            fallback = true;
            assert!(
                !served.is_empty(),
                "progress guard failed: no reader serves any coverable unread tag"
            );
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord { active, served, fallback });
    }
    CoveringSchedule { slots, uncoverable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactScheduler;
    use crate::hill_climbing::HillClimbing;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    fn small_scenario(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 12,
            n_tags: 120,
            region_side: 60.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 10.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn schedule_reads_every_coverable_tag_exactly_once() {
        for seed in 0..4 {
            let d = small_scenario(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let mut s = ExactScheduler::default();
            let sched = greedy_covering_schedule(&d, &c, &g, &mut s, 10_000);
            let mut all_served: Vec<TagId> = sched.slots.iter().flat_map(|s| s.served.clone()).collect();
            all_served.sort_unstable();
            let mut expect: Vec<TagId> =
                (0..d.n_tags()).filter(|&t| c.is_coverable(t)).collect();
            expect.sort_unstable();
            assert_eq!(all_served, expect, "seed {seed}");
            assert_eq!(
                sched.uncoverable.len(),
                d.n_tags() - expect.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_slot_is_feasible() {
        let d = small_scenario(7);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut s = HillClimbing::default();
        let sched = greedy_covering_schedule(&d, &c, &g, &mut s, 10_000);
        for slot in &sched.slots {
            assert!(d.is_feasible(&slot.active));
            assert!(!slot.served.is_empty(), "every slot must serve something");
        }
    }

    #[test]
    fn better_oneshot_never_needs_more_slots_much() {
        // Not a theorem (greedy is only log n-approx), but on these small
        // instances the exact one-shot should not lose to hill climbing.
        let mut exact_total = 0usize;
        let mut ghc_total = 0usize;
        for seed in 0..4 {
            let d = small_scenario(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            exact_total +=
                greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10_000)
                    .size();
            ghc_total +=
                greedy_covering_schedule(&d, &c, &g, &mut HillClimbing::default(), 10_000).size();
        }
        assert!(
            exact_total <= ghc_total,
            "exact {exact_total} slots vs GHC {ghc_total}"
        );
    }

    /// A scheduler that always returns nothing: the fallback must carry the
    /// schedule to completion.
    struct Lazy;
    impl OneShotScheduler for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn schedule(&mut self, _input: &OneShotInput<'_>) -> Vec<ReaderId> {
            Vec::new()
        }
    }

    #[test]
    fn fallback_guard_completes_the_schedule() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy_covering_schedule(&d, &c, &g, &mut Lazy, 10_000);
        assert_eq!(sched.fallback_slots(), sched.size());
        assert_eq!(
            sched.tags_served(),
            c.coverable_count(),
            "fallback-only schedule still reads everything"
        );
    }

    #[test]
    fn no_tags_no_slots() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(5.0, 5.0)],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10);
        assert_eq!(sched.size(), 0);
        assert!(sched.uncoverable.is_empty());
    }

    #[test]
    fn uncoverable_tags_reported_not_served() {
        let d = Deployment::new(
            Rect::square(30.0),
            vec![Point::new(5.0, 5.0)],
            vec![4.0],
            vec![2.0],
            vec![Point::new(5.0, 6.0), Point::new(25.0, 25.0)],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy_covering_schedule(&d, &c, &g, &mut ExactScheduler::default(), 10);
        assert_eq!(sched.size(), 1);
        assert_eq!(sched.uncoverable, vec![1]);
        assert_eq!(sched.tags_served(), 1);
    }
}
