//! The Minimum Covering Schedule greedy driver (paper Section III).
//!
//! "At the q-th time-slot, we choose a feasible scheduling set with maximum
//! weight and let them be active at time-slot q; it terminates when there
//! are no unread tags remained." — Theorem 1 shows this is a `log n`
//! approximation of the minimum covering schedule, provided each slot's set
//! is a maximum weighted feasible scheduling set. Plugging in the
//! *approximate* one-shot schedulers of this crate yields the algorithms
//! compared in Figures 6–7.
//!
//! Tags outside every interrogation region can never be served; the loop
//! ends when all *coverable* tags are read. A progress guard handles
//! approximate schedulers that return a zero-weight set while coverable
//! tags remain: the slot is re-run with the best singleton activation
//! (always weight ≥ 1), so the schedule always terminates — the guard
//! counts as a normal slot and is recorded for diagnostics.

use crate::scheduler::{make_scheduler, AlgorithmKind, OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{
    audit_activation, Coverage, CoverageRows, Deployment, PlaneScratch, ReaderId, SingletonWeights,
    TagId, TagSet,
};
use rfid_obs::{counter, histogram, span, SlotMetrics, Subscriber};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Lazily updated max-queue over singleton weights, shared by the
/// progress guards of both fault policies of [`covering_schedule_with`].
///
/// Singleton weights only ever decrease as the covering schedule marks
/// tags read (sub-additivity makes `w({v})` a monotone upper bound on any
/// future contribution of `v`), so the structure is a monotone bucket
/// queue: one bucket per cached weight, and a top cursor that only moves
/// down. [`best`](Self::best) sweeps the top bucket, dropping each stale
/// entry into the bucket of its corrected weight (an `O(1)` move, against
/// the `O(log n)` re-push of a heap), until the bucket holds only current
/// entries — the smallest id there is then the true maximum under the
/// fallback order `(weight, Reverse(id))`, i.e. highest weight with ties
/// towards the smallest id, exactly the order the eager `max_by_key` scan
/// used. Total relocation work over a whole schedule is bounded by the
/// number of (tag, reader) coverage incidences, replacing the
/// per-fallback-slot `O(n)` rescan.
struct LazyFallback {
    /// `buckets[w]` holds readers whose weight was `w` when last looked
    /// at; entries above a reader's current weight are stale.
    buckets: Vec<Vec<ReaderId>>,
    /// Highest bucket that may still hold an entry. Weights never grow,
    /// so this cursor only descends.
    top: usize,
}

impl LazyFallback {
    fn new(singleton: &SingletonWeights<'_>) -> Self {
        let max_w = (0..singleton.n_readers())
            .map(|v| singleton.get(v))
            .max()
            .unwrap_or(0);
        let mut buckets = vec![Vec::new(); max_w + 1];
        for v in 0..singleton.n_readers() {
            buckets[singleton.get(v)].push(v);
        }
        LazyFallback {
            buckets,
            top: max_w,
        }
    }

    /// The reader maximising `(current weight, Reverse(id))` among those
    /// not in `excluded`, or `None` when every reader is excluded. The
    /// queue keeps one entry per reader afterwards (the selected reader
    /// stays queued — its weight decreasing later is exactly the
    /// staleness the laziness absorbs).
    fn best(
        &mut self,
        singleton: &SingletonWeights<'_>,
        excluded: &[ReaderId],
        sub: Option<&dyn Subscriber>,
    ) -> Option<ReaderId> {
        counter!(sub, "mcs.fallback.queries", 1);
        if self.buckets.is_empty() {
            return None;
        }
        let mut w = self.top;
        loop {
            // Relocate stale entries down to their current buckets.
            let mut i = 0;
            while i < self.buckets[w].len() {
                let v = self.buckets[w][i];
                let current = singleton.get(v);
                debug_assert!(current <= w, "singleton weight increased");
                if current < w {
                    counter!(sub, "mcs.fallback.stale_repush", 1);
                    self.buckets[w].swap_remove(i);
                    self.buckets[current].push(v);
                } else {
                    i += 1;
                }
            }
            if self.buckets[w].is_empty() {
                // Nothing (current or stale) lives this high any more;
                // the cursor can skip it for every future query too.
                if w == 0 {
                    self.top = 0;
                    return None;
                }
                w -= 1;
                self.top = w;
                continue;
            }
            // Every entry here is current at weight `w`; the smallest
            // admissible id is the exact `(weight, Reverse(id))` maximum.
            self.top = w;
            let pick = self.buckets[w]
                .iter()
                .copied()
                .filter(|v| !excluded.contains(v))
                .min();
            match pick {
                Some(v) => {
                    counter!(sub, "mcs.fallback.hits", 1);
                    return Some(v);
                }
                // The whole bucket is crashed: look lower, but leave
                // `top` pointing here — these entries keep their weight.
                None if w == 0 => return None,
                None => w -= 1,
            }
        }
    }
}

/// Tag-space size (in packed words) below which the driver never builds
/// parallel plane lanes: pool dispatch plus the lane merge costs on the
/// order of the whole sequential build for small planes, and every unit-
/// test instance stays on the sequential path.
const PAR_PLANES_WORDS_MIN: usize = 16_384;

/// Why a covering schedule could not be driven to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Neither the one-shot scheduler nor the singleton fallback could
    /// serve a single coverable unread tag — no activation makes progress.
    NoProgress {
        /// Tags served before the stall.
        served: usize,
        /// Coverable tags in the deployment.
        coverable: usize,
    },
    /// The slot budget ran out with coverable tags still unread.
    SlotBudgetExhausted {
        /// The exhausted budget.
        max_slots: usize,
        /// Tags served within the budget.
        served: usize,
        /// Coverable tags in the deployment.
        coverable: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoProgress { served, coverable } => write!(
                f,
                "no activation serves any coverable unread tag ({served} of {coverable} served)"
            ),
            ScheduleError::SlotBudgetExhausted {
                max_slots,
                served,
                coverable,
            } => write!(
                f,
                "covering schedule exceeded {max_slots} slots ({served} of {coverable} tags served)"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One time slot of a covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Activated readers (a feasible scheduling set).
    pub active: Vec<ReaderId>,
    /// Tags served this slot (well-covered under `active`).
    pub served: Vec<TagId>,
    /// `true` when the one-shot scheduler returned a zero-weight set and
    /// the singleton fallback produced this slot instead.
    pub fallback: bool,
}

/// A complete covering schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringSchedule {
    /// The slots in activation order.
    pub slots: Vec<SlotRecord>,
    /// Tags that no reader covers (never serviceable).
    pub uncoverable: Vec<TagId>,
}

impl CoveringSchedule {
    /// The paper's metric: number of time slots to read every coverable
    /// tag.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Total tags served.
    pub fn tags_served(&self) -> usize {
        self.slots.iter().map(|s| s.served.len()).sum()
    }

    /// Number of slots produced by the progress guard.
    pub fn fallback_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.fallback).count()
    }
}

/// How [`covering_schedule_with`] reacts when a slot cannot progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Trust the one-shot scheduler: a stalled or over-budget run is a
    /// [`ScheduleError`]. This is the paper's clean-room loop.
    #[default]
    Strict,
    /// Audit every activation ([`rfid_model::audit_activation`]) and
    /// degrade gracefully: crashed readers are stripped (their tags
    /// requeued), RTc pairs repaired by dropping the lower-weight member,
    /// and a stalled/over-budget run abandons the remaining tags instead
    /// of erroring.
    Resilient,
}

/// Options for [`covering_schedule`] / [`covering_schedule_with`]: the
/// algorithm choice, the fault policy and the metrics sinks, replacing
/// the old `greedy`/`try_greedy`/`resilient` triple of entry points.
#[derive(Default)]
pub struct McsOptions<'a> {
    algorithm: AlgorithmKind,
    seed: u64,
    fault_policy: FaultPolicy,
    max_slots: Option<usize>,
    subscriber: Option<&'a dyn Subscriber>,
    slot_metrics: bool,
    initial_unread: Option<&'a TagSet>,
}

impl<'a> McsOptions<'a> {
    /// Defaults: Algorithm 2 (central local greedy), seed 0, strict fault
    /// policy, a one-million-slot budget, no subscriber, no per-slot
    /// metrics.
    pub fn new() -> Self {
        McsOptions::default()
    }

    /// Selects the one-shot algorithm [`covering_schedule`] instantiates.
    /// Ignored by [`covering_schedule_with`], which takes the scheduler
    /// directly.
    pub fn algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Seed for randomised algorithms (Colorwave's colour draws).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the [`FaultPolicy`].
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Shorthand for `fault_policy(FaultPolicy::Resilient)`.
    pub fn resilient(self) -> Self {
        self.fault_policy(FaultPolicy::Resilient)
    }

    /// Bounds runaway schedulers (default one million slots).
    pub fn max_slots(mut self, max_slots: usize) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Attaches an observation sink; the driver forwards it to the
    /// one-shot scheduler through [`OneShotInput`] and emits its own
    /// spans/counters (`mcs.*`) into it.
    pub fn subscriber(mut self, subscriber: &'a dyn Subscriber) -> Self {
        self.subscriber = Some(subscriber);
        self
    }

    /// Collects one [`SlotMetrics`] record per slot into
    /// [`McsRun::slot_metrics`].
    pub fn slot_metrics(mut self, collect: bool) -> Self {
        self.slot_metrics = collect;
        self
    }

    /// Starts the loop from a caller-provided unread set instead of
    /// all-unread: tags already marked read are treated as served
    /// before slot one. The incremental repair engine uses this to
    /// re-solve only the dirty suffix of a patched scenario. The set's
    /// length must match the deployment's tag count.
    pub fn initial_unread(mut self, unread: &'a TagSet) -> Self {
        self.initial_unread = Some(unread);
        self
    }

    fn budget(&self) -> usize {
        self.max_slots.unwrap_or(1_000_000)
    }
}

/// Outcome of [`covering_schedule`] / [`covering_schedule_with`]: the
/// schedule, optional per-slot metrics, and an account of every
/// degradation the resilient policy absorbed (all zero under
/// [`FaultPolicy::Strict`], which errors instead of degrading).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McsRun {
    /// The (complete under `Strict`, possibly partial under `Resilient`)
    /// covering schedule; every slot is feasible.
    pub schedule: CoveringSchedule,
    /// Per-slot records, filled only when [`McsOptions::slot_metrics`]
    /// was requested. `slot_metrics[i]` describes `schedule.slots[i]`.
    pub slot_metrics: Vec<SlotMetrics>,
    /// RTc pairs broken up in-slot by dropping the lower-weight member.
    pub repaired_pairs: usize,
    /// Activation entries removed because the scheduler reported the
    /// reader crashed (summed over slots). Tags those readers claimed stay
    /// unread and are requeued in later slots.
    pub crashed_dropped: usize,
    /// Coverable tags left unread because no surviving activation could
    /// serve them within the slot budget.
    pub abandoned_tags: Vec<TagId>,
}

impl McsRun {
    /// `true` when every coverable tag was served.
    pub fn complete(&self) -> bool {
        self.abandoned_tags.is_empty()
    }
}

/// Runs the greedy covering-schedule loop, instantiating the one-shot
/// scheduler selected by [`McsOptions::algorithm`]. This is the single
/// entry point for strict, fallible and resilient runs alike; the
/// pre-0.1 `greedy`/`try_greedy`/`resilient_covering_schedule` triple it
/// replaced has been removed.
///
/// ```
/// use rfid_core::{covering_schedule, AlgorithmKind, McsOptions};
/// use rfid_model::{interference::interference_graph, Coverage, Scenario};
/// let d = Scenario::paper_evaluation(14.0, 6.0).generate(7);
/// let coverage = Coverage::build(&d);
/// let graph = interference_graph(&d);
/// let options = McsOptions::new().algorithm(AlgorithmKind::LocalGreedy);
/// let run = covering_schedule(&d, &coverage, &graph, &options).unwrap();
/// // every coverable tag is read exactly once
/// assert_eq!(run.schedule.tags_served(), coverage.coverable_count());
/// ```
pub fn covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    options: &McsOptions<'_>,
) -> Result<McsRun, ScheduleError> {
    let mut scheduler = make_scheduler(options.algorithm, options.seed);
    covering_schedule_with(deployment, coverage, graph, scheduler.as_mut(), options)
}

/// Like [`covering_schedule`] but drives a caller-provided one-shot
/// scheduler instance ([`McsOptions::algorithm`]/`seed` are ignored).
///
/// Under [`FaultPolicy::Strict`] a stalled or over-budget run returns a
/// [`ScheduleError`]; under [`FaultPolicy::Resilient`] it never errors —
/// unreachable tags are reported in [`McsRun::abandoned_tags`].
pub fn covering_schedule_with(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    options: &McsOptions<'_>,
) -> Result<McsRun, ScheduleError> {
    let sub = options.subscriber;
    let resilient = options.fault_policy == FaultPolicy::Resilient;
    let max_slots = options.budget();
    let _run_span = span!(sub, "mcs.covering_schedule");
    let mut unread = match options.initial_unread {
        Some(initial) => {
            assert_eq!(
                initial.len(),
                deployment.n_tags(),
                "initial_unread length must match the deployment's tag count"
            );
            initial.clone()
        }
        None => TagSet::all_unread(deployment.n_tags()),
    };
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    // Packed coverage rows + per-slot bitplanes: well-covered extraction
    // popcounts `u64` words instead of walking per-tag coverage counts, and
    // the planes clear in `O(words touched last slot)`. Built once here and
    // reused for every slot; the warmup allocations are drained into
    // `mcs.alloc` up front so the per-slot histogram shows a flat zero.
    let mut rows = CoverageRows::build(coverage);
    let mut planes = PlaneScratch::new();
    planes.ensure(rows.n_words());
    // Per-worker lanes for the parallel plane build on heavyweight slots
    // (empty when the tag space is small or the pool has one thread —
    // then every slot takes the sequential path). Allocated up front so
    // the per-slot alloc histogram stays flat.
    let mut lanes: Vec<PlaneScratch> =
        if rows.n_words() >= PAR_PLANES_WORDS_MIN && crate::par::threads() > 1 {
            let mut lanes = vec![PlaneScratch::new(); crate::par::threads()];
            for lane in &mut lanes {
                lane.ensure(rows.n_words());
            }
            lanes
        } else {
            Vec::new()
        };
    let mut setup_allocs =
        planes.take_allocs() + lanes.iter_mut().map(|l| l.take_allocs()).sum::<u64>();
    // Cross-slot incremental state: singleton weights are updated per
    // served tag (via `Coverage::readers_of`) instead of rescanned, feed
    // the one-shot schedulers through the input, and back the lazy
    // fallback queue. Initial values come from row popcounts.
    let mut singleton = SingletonWeights::from_rows(coverage, &rows, &unread);
    // Readers that can still contribute anything, kept current alongside
    // the singleton array (weights only decrease, so `positives` only
    // shrinks — a retain per slot, never a rescan of all n). Passed to the
    // schedulers so their seed order costs O(|positives|) per slot.
    let mut positives: Vec<ReaderId> = (0..singleton.n_readers())
        .filter(|&v| singleton.get(v) > 0)
        .collect();
    let mut fallback_queue = LazyFallback::new(&singleton);
    // Live-row compaction state: rows shrink as tags get served (see
    // `CoverageRows::retain_unread`), so a reader activated in a late slot
    // no longer decodes row words whose tags were read ten slots ago. The
    // halving trigger bounds total compaction work at 2x the initial row
    // mass while keeping decode work proportional to *live* coverage.
    let mut live_incidences = rows.incidences();
    let mut retired_incidences = 0usize;
    // Any scratch the scheduler grew before this run belongs to setup, not
    // to the first slot.
    setup_allocs += scheduler.take_scratch_allocations();
    counter!(sub, "mcs.alloc", setup_allocs);
    let well_covered = |rows: &CoverageRows,
                        planes: &mut PlaneScratch,
                        lanes: &mut [PlaneScratch],
                        active: &[ReaderId],
                        unread: &TagSet| {
        planes.clear();
        let mass: usize = active.iter().map(|&v| rows.row_words(v)).sum();
        if !lanes.is_empty() && mass * 2 >= rows.n_words() {
            // Heavy activation: each worker builds private planes from
            // its share of the active rows (private planes stay resident
            // in per-core cache, unlike one shared pair under random row
            // words), then a fixed-order saturating merge folds the
            // lanes — bit-identical to the sequential build for every
            // pool width, including one.
            let chunk = active.len().div_ceil(lanes.len()).max(1);
            crate::par::for_each_state(&mut lanes[..], |i, lane| {
                lane.ensure(rows.n_words());
                let lo = (i * chunk).min(active.len());
                let hi = ((i + 1) * chunk).min(active.len());
                lane.add_all(rows, &active[lo..hi]);
            });
            planes.make_dense();
            let lane_planes: Vec<(&[u64], &[u64])> = lanes.iter().map(|l| l.planes()).collect();
            crate::par::merge_planes(planes.planes_mut(), &lane_planes);
        } else {
            planes.add_all(rows, active);
        }
        let mut served = Vec::new();
        planes.well_covered_into(unread.words(), &mut served);
        served
    };
    let mut slots = Vec::new();
    let mut slot_metrics = Vec::new();
    // Target only what is both coverable and still unread: with a
    // caller-seeded unread set the loop must not chase tags it was told
    // are already read.
    let coverable_total = match options.initial_unread {
        Some(_) => (0..deployment.n_tags())
            .filter(|&t| coverage.is_coverable(t) && unread.is_unread(t))
            .count(),
        None => coverage.coverable_count(),
    };
    let mut served_total = 0usize;
    let mut repaired_pairs = 0usize;
    let mut crashed_dropped = 0usize;
    let mut stalled = false;
    while served_total < coverable_total && !stalled {
        if slots.len() >= max_slots {
            if resilient {
                break;
            }
            return Err(ScheduleError::SlotBudgetExhausted {
                max_slots,
                served: served_total,
                coverable: coverable_total,
            });
        }
        let slot_start = options.slot_metrics.then(Instant::now);
        let _slot_span = span!(sub, "mcs.slot");
        let input = OneShotInput::builder(deployment, coverage, graph)
            .unread(&unread)
            .singleton_weights(singleton.as_slice())
            .positive_readers(&positives)
            .maybe_subscriber(sub)
            .build();
        let mut active = scheduler.schedule(&input);
        // Crashed readers cannot transmit; their claimed tags simply stay
        // unread and get requeued. Strict runs trust the scheduler and
        // skip the whole audit block.
        let crashed = if resilient {
            scheduler.crashed_readers()
        } else {
            Vec::new()
        };
        if resilient {
            if !crashed.is_empty() {
                let before = active.len();
                active.retain(|v| !crashed.contains(v));
                crashed_dropped += before - active.len();
                counter!(sub, "mcs.crashed_dropped", before - active.len());
            }
            // Audit-and-repair: break up every jammed pair by dropping its
            // lower-weight member until the activation is feasible.
            loop {
                let audit = audit_activation(deployment, coverage, &active, &unread);
                if audit.is_feasible() {
                    break;
                }
                let (a, b) = audit.rtc_pairs[0];
                let (wa, wb) = (singleton.get(a), singleton.get(b));
                let victim = if wa <= wb { a } else { b };
                active.retain(|&u| u != victim);
                repaired_pairs += 1;
                counter!(sub, "mcs.repaired_pairs", 1);
            }
        }
        let mut served = well_covered(&rows, &mut planes, &mut lanes, &active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            // Progress guard: the best singleton always serves ≥ 1 tag
            // when a coverable unread tag exists (restricted to surviving
            // readers under the resilient policy).
            match fallback_queue.best(&singleton, &crashed, sub) {
                Some(best) => {
                    active = vec![best];
                    served = well_covered(&rows, &mut planes, &mut lanes, &active, &unread);
                    fallback = true;
                }
                None => served = Vec::new(),
            }
            if served.is_empty() {
                if resilient {
                    // Every remaining coverable tag is out of reach of
                    // the survivors: abandon instead of looping forever.
                    stalled = true;
                    continue;
                }
                return Err(ScheduleError::NoProgress {
                    served: served_total,
                    coverable: coverable_total,
                });
            }
        }
        // Observation only, by the §8 contract: nothing below feeds back
        // into the scheduling state.
        counter!(sub, "mcs.slots", 1);
        counter!(sub, "mcs.tags_served", served.len());
        // Scratch-growth account: arenas warm up in the first slot and then
        // stay flat — `mcs.slot.alloc` max == sum is the observable proof.
        let slot_allocs = scheduler.take_scratch_allocations()
            + planes.take_allocs()
            + lanes.iter_mut().map(|l| l.take_allocs()).sum::<u64>();
        counter!(sub, "mcs.alloc", slot_allocs);
        histogram!(sub, "mcs.slot.alloc", slot_allocs);
        if fallback {
            counter!(sub, "mcs.fallback_slots", 1);
        }
        histogram!(sub, "mcs.slot.active_readers", active.len());
        histogram!(sub, "mcs.slot.tags_served", served.len());
        // Each served tag retires one `readers_of` incidence list from the
        // incremental singleton state — the delta-update work
        // `SingletonWeights::mark_all_read` is about to do, and the decay
        // signal that triggers live-row compaction below.
        let retired: usize = served.iter().map(|&t| coverage.readers_of(t).len()).sum();
        counter!(sub, "mcs.singleton_weight_deltas", retired);
        unread.mark_all_read(&served);
        singleton.mark_all_read(&served);
        positives.retain(|&v| singleton.get(v) > 0);
        retired_incidences += retired;
        if retired_incidences * 2 >= live_incidences {
            live_incidences = rows.retain_unread(unread.words());
            retired_incidences = 0;
        }
        served_total += served.len();
        if let Some(start) = slot_start {
            slot_metrics.push(SlotMetrics {
                slot: slots.len(),
                active_readers: active.len(),
                tags_served: served.len(),
                fallback,
                wall_nanos: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
        }
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    let abandoned_tags: Vec<TagId> = if resilient {
        (0..deployment.n_tags())
            .filter(|&t| coverage.is_coverable(t) && unread.is_unread(t))
            .collect()
    } else {
        // A strict run only reaches here with every coverable tag served.
        Vec::new()
    };
    counter!(sub, "mcs.abandoned_tags", abandoned_tags.len());
    Ok(McsRun {
        schedule: CoveringSchedule { slots, uncoverable },
        slot_metrics,
        repaired_pairs,
        crashed_dropped,
        abandoned_tags,
    })
}

/// Outcome of a resilient (`McsOptions::resilient`) run flattened into a
/// plain struct: the schedule plus an account of every degradation the
/// loop absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientSchedule {
    /// The (possibly partial) covering schedule; every slot is feasible.
    pub schedule: CoveringSchedule,
    /// RTc pairs broken up in-slot by dropping the lower-weight member.
    pub repaired_pairs: usize,
    /// Activation entries removed because the scheduler reported the
    /// reader crashed (summed over slots).
    pub crashed_dropped: usize,
    /// Coverable tags left unread because no surviving activation could
    /// serve them within the slot budget.
    pub abandoned_tags: Vec<TagId>,
}

impl ResilientSchedule {
    /// `true` when every coverable tag was served despite the faults.
    pub fn complete(&self) -> bool {
        self.abandoned_tags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactScheduler;
    use crate::hill_climbing::HillClimbing;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    /// Strict run, panicking like the old `greedy_covering_schedule`.
    fn greedy(
        d: &Deployment,
        c: &Coverage,
        g: &Csr,
        s: &mut dyn OneShotScheduler,
        max_slots: usize,
    ) -> CoveringSchedule {
        covering_schedule_with(d, c, g, s, &McsOptions::new().max_slots(max_slots))
            .map(|run| run.schedule)
            .unwrap()
    }

    /// Strict run returning the error instead of panicking.
    fn try_greedy(
        d: &Deployment,
        c: &Coverage,
        g: &Csr,
        s: &mut dyn OneShotScheduler,
        max_slots: usize,
    ) -> Result<CoveringSchedule, ScheduleError> {
        covering_schedule_with(d, c, g, s, &McsOptions::new().max_slots(max_slots))
            .map(|run| run.schedule)
    }

    /// Resilient run through the unified entry point.
    fn resilient(
        d: &Deployment,
        c: &Coverage,
        g: &Csr,
        s: &mut dyn OneShotScheduler,
        max_slots: usize,
    ) -> McsRun {
        covering_schedule_with(
            d,
            c,
            g,
            s,
            &McsOptions::new().max_slots(max_slots).resilient(),
        )
        .expect("resilient runs never error")
    }

    fn small_scenario(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 12,
            n_tags: 120,
            region_side: 60.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 10.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn schedule_reads_every_coverable_tag_exactly_once() {
        for seed in 0..4 {
            let d = small_scenario(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let mut s = ExactScheduler::default();
            let sched = greedy(&d, &c, &g, &mut s, 10_000);
            let mut all_served: Vec<TagId> =
                sched.slots.iter().flat_map(|s| s.served.clone()).collect();
            all_served.sort_unstable();
            let mut expect: Vec<TagId> = (0..d.n_tags()).filter(|&t| c.is_coverable(t)).collect();
            expect.sort_unstable();
            assert_eq!(all_served, expect, "seed {seed}");
            assert_eq!(
                sched.uncoverable.len(),
                d.n_tags() - expect.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_slot_is_feasible() {
        let d = small_scenario(7);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut s = HillClimbing::default();
        let sched = greedy(&d, &c, &g, &mut s, 10_000);
        for slot in &sched.slots {
            assert!(d.is_feasible(&slot.active));
            assert!(!slot.served.is_empty(), "every slot must serve something");
        }
    }

    #[test]
    fn better_oneshot_never_needs_more_slots_much() {
        // Not a theorem (greedy is only log n-approx), but on these small
        // instances the exact one-shot should not lose to hill climbing.
        let mut exact_total = 0usize;
        let mut ghc_total = 0usize;
        for seed in 0..4 {
            let d = small_scenario(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            exact_total += greedy(&d, &c, &g, &mut ExactScheduler::default(), 10_000).size();
            ghc_total += greedy(&d, &c, &g, &mut HillClimbing::default(), 10_000).size();
        }
        assert!(
            exact_total <= ghc_total,
            "exact {exact_total} slots vs GHC {ghc_total}"
        );
    }

    /// A scheduler that always returns nothing: the fallback must carry the
    /// schedule to completion.
    struct Lazy;
    impl OneShotScheduler for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn schedule(&mut self, _input: &OneShotInput<'_>) -> Vec<ReaderId> {
            Vec::new()
        }
    }

    #[test]
    fn fallback_guard_completes_the_schedule() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy(&d, &c, &g, &mut Lazy, 10_000);
        assert_eq!(sched.fallback_slots(), sched.size());
        assert_eq!(
            sched.tags_served(),
            c.coverable_count(),
            "fallback-only schedule still reads everything"
        );
    }

    #[test]
    fn seeded_unread_solves_only_the_suffix() {
        let d = small_scenario(2);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        // Pretend an earlier run already served every coverable tag but
        // the last five.
        let coverable: Vec<TagId> = (0..d.n_tags()).filter(|&t| c.is_coverable(t)).collect();
        let mut unread = TagSet::all_unread(d.n_tags());
        for &t in &coverable[..coverable.len() - 5] {
            unread.mark_read(t);
        }
        let run = covering_schedule(&d, &c, &g, &McsOptions::new().initial_unread(&unread))
            .expect("suffix solve must succeed");
        let mut served: Vec<TagId> = run
            .schedule
            .slots
            .iter()
            .flat_map(|s| s.served.clone())
            .collect();
        served.sort_unstable();
        assert_eq!(served, coverable[coverable.len() - 5..].to_vec());
        // Seeding with all-unread is exactly the unseeded run.
        let all = TagSet::all_unread(d.n_tags());
        let seeded = covering_schedule(&d, &c, &g, &McsOptions::new().initial_unread(&all))
            .expect("clean run");
        let plain = covering_schedule(&d, &c, &g, &McsOptions::new()).expect("clean run");
        assert_eq!(seeded.schedule, plain.schedule);
    }

    #[test]
    fn try_form_matches_the_panicking_form() {
        let d = small_scenario(3);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let a = greedy(&d, &c, &g, &mut ExactScheduler::default(), 10_000);
        let b = try_greedy(&d, &c, &g, &mut ExactScheduler::default(), 10_000)
            .expect("clean run must succeed");
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_slot_budget_is_an_error_not_a_panic() {
        let d = small_scenario(0);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let err = try_greedy(&d, &c, &g, &mut ExactScheduler::default(), 1).unwrap_err();
        match err {
            ScheduleError::SlotBudgetExhausted {
                max_slots,
                served,
                coverable,
            } => {
                assert_eq!(max_slots, 1);
                assert!(served > 0 && served < coverable);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn resilient_matches_greedy_on_a_clean_scheduler() {
        let d = small_scenario(2);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let clean = greedy(&d, &c, &g, &mut ExactScheduler::default(), 10_000);
        let res = resilient(&d, &c, &g, &mut ExactScheduler::default(), 10_000);
        assert_eq!(res.schedule, clean);
        assert_eq!(res.repaired_pairs, 0);
        assert_eq!(res.crashed_dropped, 0);
        assert!(res.complete());
    }

    /// A scheduler that activates *everything* — maximally infeasible.
    struct Reckless;
    impl OneShotScheduler for Reckless {
        fn name(&self) -> &'static str {
            "reckless"
        }
        fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
            (0..input.deployment.n_readers()).collect()
        }
    }

    #[test]
    fn resilient_repairs_infeasible_activations() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        assert!(g.m() > 0, "scenario must have interference to repair");
        let res = resilient(&d, &c, &g, &mut Reckless, 10_000);
        assert!(res.repaired_pairs > 0, "nothing was repaired");
        assert!(res.complete(), "abandoned {:?}", res.abandoned_tags);
        for slot in &res.schedule.slots {
            assert!(d.is_feasible(&slot.active), "unrepaired slot {slot:?}");
        }
        assert_eq!(res.schedule.tags_served(), c.coverable_count());
    }

    /// A scheduler whose reader 0 has crashed: it still *claims* reader 0
    /// in every activation, so the resilient loop must strip it.
    struct HalfDead;
    impl OneShotScheduler for HalfDead {
        fn name(&self) -> &'static str {
            "half-dead"
        }
        fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
            (0..input.deployment.n_readers()).collect()
        }
        fn crashed_readers(&self) -> Vec<ReaderId> {
            vec![0]
        }
    }

    #[test]
    fn crashed_readers_are_dropped_and_their_tags_requeued() {
        let d = small_scenario(1);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let res = resilient(&d, &c, &g, &mut HalfDead, 10_000);
        assert!(res.crashed_dropped > 0);
        for slot in &res.schedule.slots {
            assert!(
                !slot.active.contains(&0),
                "crashed reader activated: {slot:?}"
            );
        }
        // Tags only reader 0 covers are abandoned; every other coverable
        // tag must still be served (requeued until a survivor reads it).
        let exclusive_to_0: Vec<TagId> = (0..d.n_tags())
            .filter(|&t| c.readers_of(t) == [0])
            .collect();
        assert_eq!(res.abandoned_tags, exclusive_to_0);
        assert_eq!(
            res.schedule.tags_served() + exclusive_to_0.len(),
            c.coverable_count()
        );
    }

    #[test]
    fn resilient_abandons_on_budget_instead_of_panicking() {
        let d = small_scenario(0);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let res = resilient(&d, &c, &g, &mut ExactScheduler::default(), 1);
        assert_eq!(res.schedule.size(), 1);
        assert!(!res.complete());
        assert_eq!(
            res.schedule.tags_served() + res.abandoned_tags.len(),
            c.coverable_count()
        );
    }

    #[test]
    fn slot_metrics_reconcile_with_schedule_totals() {
        let d = small_scenario(3);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let run = covering_schedule_with(
            &d,
            &c,
            &g,
            &mut HillClimbing::default(),
            &McsOptions::new().max_slots(10_000).slot_metrics(true),
        )
        .unwrap();
        assert_eq!(run.slot_metrics.len(), run.schedule.size());
        let served: usize = run.slot_metrics.iter().map(|m| m.tags_served).sum();
        assert_eq!(served, run.schedule.tags_served());
        let fallbacks = run.slot_metrics.iter().filter(|m| m.fallback).count();
        assert_eq!(fallbacks, run.schedule.fallback_slots());
        for (i, m) in run.slot_metrics.iter().enumerate() {
            assert_eq!(m.slot, i);
            assert_eq!(m.active_readers, run.schedule.slots[i].active.len());
            assert_eq!(m.tags_served, run.schedule.slots[i].served.len());
            assert_eq!(m.fallback, run.schedule.slots[i].fallback);
        }
    }

    #[test]
    fn attached_recorder_does_not_change_the_schedule() {
        let d = small_scenario(2);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let plain = greedy(&d, &c, &g, &mut HillClimbing::default(), 10_000);
        let rec = rfid_obs::Recorder::new();
        let observed = covering_schedule_with(
            &d,
            &c,
            &g,
            &mut HillClimbing::default(),
            &McsOptions::new().max_slots(10_000).subscriber(&rec),
        )
        .unwrap();
        assert_eq!(observed.schedule, plain);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mcs.slots"), plain.size() as u64);
        assert_eq!(snap.counter("mcs.tags_served"), plain.tags_served() as u64);
        assert_eq!(
            snap.counter("mcs.fallback_slots"),
            plain.fallback_slots() as u64
        );
        assert_eq!(snap.spans["mcs.covering_schedule"].count, 1);
        assert_eq!(snap.spans["mcs.slot"].count, plain.size() as u64);
    }

    #[test]
    fn no_tags_no_slots() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(5.0, 5.0)],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy(&d, &c, &g, &mut ExactScheduler::default(), 10);
        assert_eq!(sched.size(), 0);
        assert!(sched.uncoverable.is_empty());
    }

    #[test]
    fn uncoverable_tags_reported_not_served() {
        let d = Deployment::new(
            Rect::square(30.0),
            vec![Point::new(5.0, 5.0)],
            vec![4.0],
            vec![2.0],
            vec![Point::new(5.0, 6.0), Point::new(25.0, 25.0)],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let sched = greedy(&d, &c, &g, &mut ExactScheduler::default(), 10);
        assert_eq!(sched.size(), 1);
        assert_eq!(sched.uncoverable, vec![1]);
        assert_eq!(sched.tags_served(), 1);
    }
}
