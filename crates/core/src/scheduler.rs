//! The one-shot scheduler interface shared by all algorithms.

use rfid_graph::Csr;
use rfid_model::{Coverage, Deployment, ReaderId, TagSet, WeightEvaluator};
use rfid_obs::Subscriber;
use serde::{Deserialize, Serialize};

/// Everything a one-shot scheduler may consult for a single time slot.
///
/// Individual algorithms use different *subsets* of this input, matching
/// their assumption level: the PTAS reads reader locations from
/// `deployment`; Algorithms 2/3 only touch `graph`, `coverage` and
/// `unread`; the distributed scheduler additionally restricts itself to
/// hop-bounded views of them.
///
/// Construct with [`OneShotInput::builder`]; [`OneShotInput::new`] remains
/// as shorthand for the common deployment-plus-unread case.
pub struct OneShotInput<'a> {
    /// The physical world: readers, radii, tags.
    pub deployment: &'a Deployment,
    /// Precomputed tag ⇄ reader coverage tables.
    pub coverage: &'a Coverage,
    /// Interference graph of `deployment` (Definition 7).
    pub graph: &'a Csr,
    /// Tags already served are excluded from all weights.
    pub unread: &'a TagSet,
    /// Optional precomputed per-reader singleton weights `w({v})` under
    /// `unread`, provided by drivers that maintain them incrementally
    /// across slots (the MCS loop). Private so the only ways in are the
    /// builder and [`with_singleton_weights`](Self::with_singleton_weights),
    /// which assert consistency.
    singleton: Option<&'a [usize]>,
    /// Optional ascending list of exactly the readers with positive
    /// singleton weight under `unread`, maintained incrementally by
    /// drivers alongside `singleton`. Schedulers that only seed positive
    /// readers (Algorithm 2, GHC's default mode) then skip their O(n)
    /// per-slot scan. Private for the same reason as `singleton`.
    positive: Option<&'a [ReaderId]>,
    /// Observation sink for the scheduler's spans/counters; `None` (the
    /// default) costs one branch per instrumentation site. Subscribers
    /// observe only — by the DESIGN.md §8 contract they never influence
    /// the returned set.
    subscriber: Option<&'a dyn Subscriber>,
}

/// Staged construction of a [`OneShotInput`] — see
/// [`OneShotInput::builder`].
pub struct OneShotInputBuilder<'a> {
    deployment: &'a Deployment,
    coverage: &'a Coverage,
    graph: &'a Csr,
    unread: Option<&'a TagSet>,
    singleton: Option<&'a [usize]>,
    positive: Option<&'a [ReaderId]>,
    subscriber: Option<&'a dyn Subscriber>,
}

impl<'a> OneShotInputBuilder<'a> {
    /// Sets the unread-tag set (required).
    pub fn unread(mut self, unread: &'a TagSet) -> Self {
        debug_assert_eq!(unread.len(), self.deployment.n_tags());
        self.unread = Some(unread);
        self
    }

    /// Attaches precomputed singleton weights (`weights[v] == w({v})`
    /// under the unread set — the caller's responsibility, debug-asserted
    /// by sampling a seeded random subset of readers at
    /// [`build`](Self::build)). Schedulers then skip their own
    /// `O(Σ|tags(v)|)` rescan.
    pub fn singleton_weights(mut self, weights: &'a [usize]) -> Self {
        debug_assert_eq!(weights.len(), self.deployment.n_readers());
        self.singleton = Some(weights);
        self
    }

    /// Attaches the ascending list of exactly the readers whose singleton
    /// weight is positive under the unread set (the caller's
    /// responsibility, fully cross-checked against the attached singleton
    /// weights in debug builds at [`build`](Self::build)). Schedulers
    /// whose seed order admits only positive readers then skip their own
    /// O(n) rescan. Requires [`singleton_weights`](Self::singleton_weights)
    /// to also be attached.
    pub fn positive_readers(mut self, positive: &'a [ReaderId]) -> Self {
        self.positive = Some(positive);
        self
    }

    /// Attaches an observation sink for the scheduler's instrumentation.
    pub fn subscriber(mut self, subscriber: &'a dyn Subscriber) -> Self {
        self.subscriber = Some(subscriber);
        self
    }

    /// Like [`subscriber`](Self::subscriber) but accepts the optional
    /// handle drivers already hold, so they can forward it verbatim.
    pub fn maybe_subscriber(mut self, subscriber: Option<&'a dyn Subscriber>) -> Self {
        self.subscriber = subscriber;
        self
    }

    /// Finalises the input.
    ///
    /// # Panics
    /// When [`unread`](Self::unread) was never provided.
    pub fn build(self) -> OneShotInput<'a> {
        let unread = self
            .unread
            .expect("OneShotInput::builder requires .unread(...)");
        assert!(
            self.positive.is_none() || self.singleton.is_some(),
            "positive_readers requires singleton_weights"
        );
        let input = OneShotInput {
            deployment: self.deployment,
            coverage: self.coverage,
            graph: self.graph,
            unread,
            singleton: self.singleton,
            positive: self.positive,
            subscriber: self.subscriber,
        };
        #[cfg(debug_assertions)]
        if let Some(weights) = input.singleton {
            input.debug_check_singleton(weights);
            if let Some(positive) = input.positive {
                debug_assert!(
                    positive
                        .iter()
                        .copied()
                        .eq((0..weights.len()).filter(|&v| weights[v] > 0)),
                    "positive_readers must list exactly the positive-weight readers, ascending"
                );
            }
        }
        input
    }
}

impl<'a> OneShotInput<'a> {
    /// Starts building an input from the deployment and its two derived
    /// structures. The caller is responsible for `coverage`/`graph`
    /// actually belonging to `deployment` (debug-asserted).
    pub fn builder(
        deployment: &'a Deployment,
        coverage: &'a Coverage,
        graph: &'a Csr,
    ) -> OneShotInputBuilder<'a> {
        debug_assert_eq!(coverage.n_readers(), deployment.n_readers());
        debug_assert_eq!(graph.n(), deployment.n_readers());
        OneShotInputBuilder {
            deployment,
            coverage,
            graph,
            unread: None,
            singleton: None,
            positive: None,
            subscriber: None,
        }
    }

    /// Shorthand for `builder(deployment, coverage, graph).unread(unread)
    /// .build()` — the common case with no attached weights or subscriber.
    pub fn new(
        deployment: &'a Deployment,
        coverage: &'a Coverage,
        graph: &'a Csr,
        unread: &'a TagSet,
    ) -> Self {
        Self::builder(deployment, coverage, graph)
            .unread(unread)
            .build()
    }

    /// Attaches precomputed singleton weights to an already-built input.
    #[deprecated(
        since = "0.1.0",
        note = "use OneShotInput::builder(...).singleton_weights(...) instead"
    )]
    pub fn with_singleton_weights(mut self, weights: &'a [usize]) -> Self {
        debug_assert_eq!(weights.len(), self.deployment.n_readers());
        #[cfg(debug_assertions)]
        self.debug_check_singleton(weights);
        self.singleton = Some(weights);
        self
    }

    /// Samples a seeded random subset of readers and asserts their cached
    /// singleton weight matches a fresh evaluation — catching stale
    /// incremental state for *any* reader in debug builds, not just
    /// reader 0. The seed mixes the reader count with the cached weights
    /// so different call sites probe different subsets, while staying
    /// deterministic for a given input.
    #[cfg(debug_assertions)]
    fn debug_check_singleton(&self, weights: &[usize]) {
        let n = weights.len();
        if n == 0 {
            return;
        }
        let mut eval = WeightEvaluator::new(self.coverage);
        let mut state = (n as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(weights.iter().take(16).sum::<usize>() as u64);
        for _ in 0..n.min(4) {
            // splitmix64 step
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let v = (z % n as u64) as usize;
            let expect = eval.singleton_weight(v, self.unread);
            debug_assert_eq!(weights[v], expect, "stale singleton weight for reader {v}");
        }
    }

    /// The attached singleton weights, if any.
    pub fn singleton_weights(&self) -> Option<&'a [usize]> {
        self.singleton
    }

    /// The attached positive-reader list, if any: exactly the readers
    /// with positive singleton weight under `unread`, ascending.
    pub fn positive_readers(&self) -> Option<&'a [ReaderId]> {
        self.positive
    }

    /// The attached observation sink, if any. Schedulers forward this to
    /// their instrumentation macros.
    pub fn subscriber(&self) -> Option<&'a dyn Subscriber> {
        self.subscriber
    }

    /// Per-reader singleton weights: the attached incremental snapshot
    /// when present, otherwise computed fresh (in parallel through the
    /// [`crate::par`] facade on large instances — order-preserving, so
    /// the result is identical to the sequential rescan).
    pub fn singleton_or_compute(&self) -> std::borrow::Cow<'a, [usize]> {
        match self.singleton {
            Some(s) => std::borrow::Cow::Borrowed(s),
            None => {
                let coverage = self.coverage;
                let unread = self.unread;
                let n = coverage.n_readers();
                std::borrow::Cow::Owned(crate::par::map_index(n, n.saturating_mul(16), |v| {
                    coverage
                        .tags_of(v)
                        .iter()
                        .filter(|&&t| unread.is_unread(t as usize))
                        .count()
                }))
            }
        }
    }

    /// Definition-3 weight of a feasible set under this input.
    pub fn weight_of(&self, set: &[ReaderId]) -> usize {
        WeightEvaluator::new(self.coverage).weight(set, self.unread)
    }
}

/// A one-shot (single time slot) scheduling algorithm.
///
/// Contract: the returned set must be a feasible scheduling set — pairwise
/// independent readers, verified in tests via
/// [`Deployment::is_feasible`](rfid_model::Deployment::is_feasible). The
/// set may be empty (e.g. when no unread tag is coverable).
pub trait OneShotScheduler {
    /// Stable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Computes an (approximate) maximum weighted feasible scheduling set.
    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId>;

    /// Communication cost of the most recent [`schedule`](Self::schedule)
    /// call, for message-passing algorithms (Algorithm 3). Centralized
    /// algorithms return `None`.
    fn comm_stats(&self) -> Option<rfid_netsim::NetStats> {
        None
    }

    /// Readers known to have crash-stopped during the most recent
    /// [`schedule`](Self::schedule) call. The resilient covering-schedule
    /// loop drops them from the activation and requeues their tags.
    /// Default: none (centralized algorithms don't model crashes).
    fn crashed_readers(&self) -> Vec<ReaderId> {
        Vec::new()
    }

    /// Scratch-buffer growth events during the most recent
    /// [`schedule`](Self::schedule) call — the feed for the covering
    /// driver's `mcs.alloc` counter. Schedulers with persistent arenas
    /// (DESIGN.md §11) report warmup allocations here and zero once warm;
    /// the default covers schedulers that don't track allocations.
    fn take_scratch_allocations(&mut self) -> u64 {
        0
    }
}

/// Enumeration of the built-in algorithms, for harness configuration.
///
/// The default is [`LocalGreedy`](Self::LocalGreedy) — the paper's
/// central Algorithm 2, the workhorse the MCS drivers assume when no
/// algorithm is named.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Algorithm 1 — PTAS with location information.
    Ptas,
    /// Algorithm 2 — centralized, interference graph only.
    LocalGreedy,
    /// Algorithm 3 — distributed, interference graph only.
    Distributed,
    /// Colorwave baseline (CA).
    Colorwave,
    /// Greedy Hill-Climbing baseline (GHC).
    HillClimbing,
    /// Exact branch-and-bound (exponential; small instances only).
    Exact,
}

// Manual impl rather than `#[derive(Default)]`: the vendored serde derive
// walks variant attributes and does not understand `#[default]`.
#[allow(clippy::derivable_impls)]
impl Default for AlgorithmKind {
    fn default() -> Self {
        AlgorithmKind::LocalGreedy
    }
}

impl AlgorithmKind {
    /// The five algorithms compared in the paper's evaluation, in figure
    /// legend order.
    pub fn paper_lineup() -> [AlgorithmKind; 5] {
        [
            AlgorithmKind::Ptas,
            AlgorithmKind::LocalGreedy,
            AlgorithmKind::Distributed,
            AlgorithmKind::Colorwave,
            AlgorithmKind::HillClimbing,
        ]
    }

    /// Short label used in tables/CSV headers.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::Ptas => "alg1-ptas",
            AlgorithmKind::LocalGreedy => "alg2-central",
            AlgorithmKind::Distributed => "alg3-distributed",
            AlgorithmKind::Colorwave => "ca-colorwave",
            AlgorithmKind::HillClimbing => "ghc",
            AlgorithmKind::Exact => "exact",
        }
    }
}

/// Instantiates a scheduler with its default parameters. `seed` feeds the
/// randomised algorithms (Colorwave's colour draws); deterministic
/// algorithms ignore it.
pub fn make_scheduler(kind: AlgorithmKind, seed: u64) -> Box<dyn OneShotScheduler> {
    match kind {
        AlgorithmKind::Ptas => Box::new(crate::ptas::PtasScheduler::default()),
        AlgorithmKind::LocalGreedy => Box::new(crate::local_greedy::LocalGreedy::default()),
        AlgorithmKind::Distributed => Box::new(crate::distributed::DistributedScheduler::default()),
        AlgorithmKind::Colorwave => Box::new(crate::colorwave::Colorwave::seeded(seed)),
        AlgorithmKind::HillClimbing => Box::new(crate::hill_climbing::HillClimbing::default()),
        AlgorithmKind::Exact => Box::new(crate::exact::ExactScheduler::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = AlgorithmKind::paper_lineup()
            .iter()
            .map(|k| k.label())
            .chain(std::iter::once(AlgorithmKind::Exact.label()))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in AlgorithmKind::paper_lineup()
            .into_iter()
            .chain(std::iter::once(AlgorithmKind::Exact))
        {
            let s = make_scheduler(kind, 0);
            assert!(!s.name().is_empty());
        }
    }
}
