//! Per-scheduler scratch arenas (DESIGN.md §11).
//!
//! Every one-shot scheduler is invoked once per covering-schedule slot,
//! and before this module each invocation rebuilt its `O(n_readers + n_tags)`
//! working state from scratch — at n = 100k that setup dwarfed the actual
//! search. The arena types here hold that state *across* calls:
//!
//! * buffers are allocated on first use and resized only when the
//!   instance shape changes;
//! * per-call invalidation is a stamp bump or an `O(touched)` clear,
//!   never an `O(n)` rebuild;
//! * every fresh heap allocation is counted, and the covering-schedule
//!   driver surfaces the per-slot counts as the `mcs.alloc` counter —
//!   the observable proof that allocation is flat (warmup in the first
//!   slot, zero afterwards).
//!
//! Scratch state is owned per scheduler instance, which is also the
//! per-thread story: the `par` facade hands each worker its own scratch
//! (see [`crate::par::map_with`]), so nothing here needs interior
//! mutability or locking.

use crate::exact::MwfsScratch;
use rfid_graph::Csr;
use rfid_model::{Coverage, TagSet};

/// Packed alive flags over the reader id space: one bit per reader, so the
/// whole set stays L1-resident even at n = 100k (12.5 KB vs the 100 KB a
/// `Vec<bool>` spreads the same probes over). The kill/ball/seed-scan hot
/// loops hit this at millions of random indexes per scheduling run, which
/// is exactly the access pattern where the 8x density pays.
#[derive(Debug, Clone, Default)]
pub struct AliveSet {
    words: Vec<u64>,
    len: usize,
}

impl AliveSet {
    /// All `n` readers alive.
    pub fn all_alive(n: usize) -> Self {
        let mut s = AliveSet::default();
        s.reset(n);
        s
    }

    /// Marks every reader alive, resizing if the population changed.
    /// Returns `true` when the backing words were reallocated.
    pub fn reset(&mut self, n: usize) -> bool {
        let words = n.div_ceil(64);
        let grew = words > self.words.capacity();
        self.words.clear();
        self.words.resize(words, !0u64);
        if !n.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        self.len = n;
        grew
    }

    /// Number of reader slots (alive or dead).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty (zero readers).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether reader `i` is alive.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i >> 6] >> (i & 63) & 1 != 0
    }

    /// Marks reader `i` dead.
    #[inline]
    pub fn kill(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Marks reader `i` alive again (kill undo between slots).
    #[inline]
    pub fn revive(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }
}

/// Reusable BFS state for alive-restricted hop balls: the `O(n)` distance
/// array is allocated once and invalidated by a stamp bump instead of a
/// clear, so each ball query costs only its output size. One instance
/// serves a whole scheduling run (hundreds of ball queries).
#[derive(Debug, Clone, Default)]
pub struct BallScratch {
    dist: Vec<u32>,
    stamp_of: Vec<u64>,
    stamp: u64,
    queue: std::collections::VecDeque<usize>,
    allocs: u64,
}

impl BallScratch {
    /// Scratch sized for an `n`-node interference graph.
    pub fn new(n: usize) -> Self {
        let mut s = BallScratch::default();
        s.ensure(n);
        s
    }

    /// Resizes for a different node count (no-op when unchanged).
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist = vec![0; n];
            self.stamp_of = vec![0; n];
            self.stamp = 0;
            self.allocs += 1;
        }
    }

    /// Fresh heap allocations since the last call.
    pub fn take_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// `N(src)^r` within the alive-induced subgraph, appended to `out`
    /// (cleared first), sorted ascending. `src` must be alive.
    pub fn ball_into(
        &mut self,
        g: &Csr,
        src: usize,
        r: u32,
        alive: &AliveSet,
        out: &mut Vec<usize>,
    ) {
        debug_assert!(alive.get(src));
        // Radius 0 and 1 cover almost every query Algorithm 2 makes at
        // scale (the ρ-growth overwhelmingly stops immediately). CSR
        // neighbour lists are sorted ascending, so the 1-ball is a merge
        // of `src` into its alive neighbours — no stamps, no sort.
        if r == 0 {
            out.clear();
            out.push(src);
            return;
        }
        if r == 1 {
            out.clear();
            let mut src_placed = false;
            for &t in g.neighbors(src) {
                let t = t as usize;
                if t == src {
                    continue;
                }
                if !src_placed && t > src {
                    out.push(src);
                    src_placed = true;
                }
                if alive.get(t) {
                    out.push(t);
                }
            }
            if !src_placed {
                out.push(src);
            }
            return;
        }
        self.stamp += 1;
        out.clear();
        out.push(src);
        self.dist[src] = 0;
        self.stamp_of[src] = self.stamp;
        self.queue.clear();
        self.queue.push_back(src);
        while let Some(v) = self.queue.pop_front() {
            let d = self.dist[v];
            if d == r {
                continue;
            }
            for &t in g.neighbors(v) {
                let t = t as usize;
                if alive.get(t) && self.stamp_of[t] != self.stamp {
                    self.stamp_of[t] = self.stamp;
                    self.dist[t] = d + 1;
                    out.push(t);
                    self.queue.push_back(t);
                }
            }
        }
        out.sort_unstable();
    }
}

/// The cross-slot scratch arena of a ball-growing scheduler (Algorithm 2
/// and the distributed simulation's central reference): the exact-MWFS
/// weight cores plus the restricted-BFS state, with one combined
/// allocation account.
#[derive(Debug, Clone, Default)]
pub struct SlotArena {
    pub(crate) mwfs: MwfsScratch,
    pub(crate) balls: BallScratch,
    allocs: u64,
}

impl SlotArena {
    /// An empty arena; sized by the first [`prepare`](Self::prepare).
    pub fn new() -> Self {
        SlotArena::default()
    }

    /// Readies the arena for one scheduling call: re-snapshots the unread
    /// set and sizes the ball scratch. Allocation-free once warm.
    pub fn prepare(&mut self, coverage: &Coverage, unread: &TagSet, n_readers: usize) {
        self.mwfs.reset(coverage, unread);
        self.balls.ensure(n_readers);
    }

    /// Records `n` buffer-growth events from the owning scheduler's own
    /// persistent vectors, so they share this arena's account.
    pub(crate) fn note_allocs(&mut self, n: u64) {
        self.allocs += n;
    }

    /// Drains the combined allocation count (arena + weight cores + BFS
    /// scratch) since the last call — the `mcs.alloc` feed.
    pub fn take_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.allocs) + self.mwfs.take_allocs() + self.balls.take_allocs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_scratch_counts_allocations_once() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let alive = AliveSet::all_alive(4);
        let mut s = BallScratch::new(4);
        assert_eq!(s.take_allocs(), 1);
        let mut out = Vec::new();
        for _ in 0..3 {
            s.ensure(4);
            s.ball_into(&g, 0, 2, &alive, &mut out);
            assert_eq!(out, vec![0, 1, 2]);
        }
        assert_eq!(s.take_allocs(), 0, "warm queries must not allocate");
        s.ensure(8);
        assert_eq!(s.take_allocs(), 1, "resizing is one allocation event");
    }

    #[test]
    fn arena_prepare_is_allocation_free_when_warm() {
        use rfid_model::{RadiusModel, Scenario, ScenarioKind};
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 15,
            n_tags: 90,
            region_side: 70.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 12.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(3);
        let coverage = Coverage::build(&d);
        let mut unread = TagSet::all_unread(d.n_tags());
        let mut arena = SlotArena::new();
        arena.prepare(&coverage, &unread, d.n_readers());
        assert!(arena.take_allocs() > 0, "cold prepare sizes the buffers");
        for t in 0..30 {
            unread.mark_read(t);
            arena.prepare(&coverage, &unread, d.n_readers());
        }
        assert_eq!(arena.take_allocs(), 0, "warm prepares must not allocate");
    }
}
