//! Algorithm 2 — centralized reader-activation scheduling **without
//! location information** (paper Section V-A).
//!
//! Only the interference graph `G` is assumed (obtainable from an RF site
//! survey); no coordinates. Following Sakai–Togasaki–Yamazaki's greedy for
//! maximum-weight independent sets on growth-bounded graphs:
//!
//! 1. pick the reader `v` with the maximum weight "by activating it alone"
//!    (its singleton weight);
//! 2. compute local MWFS `Γ_r(v)` inside the `r`-hop neighbourhood
//!    `N(v)^r`, growing `r` while `w(Γ_{r+1}) ≥ ρ·w(Γ_r)` (`ρ = 1 + ε`);
//!    the growth stops at `r̄`, which Theorem 3 bounds by a constant `c(ρ)`;
//! 3. commit `Γ_{r̄}` to the answer, delete `N(v)^{r̄+1}` from the graph
//!    (the extra hop guarantees the union over rounds stays feasible), and
//!    repeat until no reader remains.
//!
//! Theorem 4: the result is a feasible scheduling set of weight at least
//! `w(OPT)/ρ`.
//!
//! Local MWFS computation uses the exact branch-and-bound of
//! [`crate::exact`] on the (small, growth-bounded) hop ball — the paper's
//! "by enumeration".

use crate::exact::{exact_mwfs_in, MwfsScratch, DEFAULT_NODE_BUDGET};
use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, ReaderId, TagSet};
use rfid_obs::{counter, histogram, span};

/// Algorithm 2 configuration.
#[derive(Debug, Clone, Copy)]
pub struct LocalGreedy {
    /// Growth threshold `ρ = 1 + ε > 1`. Larger ρ stops the hop growth
    /// earlier (cheaper, weaker guarantee `w ≥ OPT/ρ`).
    pub rho: f64,
    /// Hard cap `c` on the growth radius `r̄` (Theorem 3 guarantees a
    /// constant bound exists; this is its concrete value).
    pub max_hops: u32,
}

impl Default for LocalGreedy {
    fn default() -> Self {
        LocalGreedy {
            rho: 1.1,
            max_hops: 3,
        }
    }
}

/// Reusable BFS state for [`ball_restricted`]: the `O(n)` distance array
/// is allocated once and invalidated by a stamp bump instead of a clear,
/// so each ball query costs only its output size. One instance serves a
/// whole [`LocalGreedy::schedule`] run (hundreds of ball queries).
pub(crate) struct BallScratch {
    dist: Vec<u32>,
    stamp_of: Vec<u64>,
    stamp: u64,
    queue: std::collections::VecDeque<usize>,
}

impl BallScratch {
    pub(crate) fn new(n: usize) -> Self {
        BallScratch {
            dist: vec![0; n],
            stamp_of: vec![0; n],
            stamp: 0,
            queue: std::collections::VecDeque::new(),
        }
    }

    /// `N(src)^r` within the alive-induced subgraph, appended to `out`
    /// (cleared first), sorted ascending. `src` must be alive.
    pub(crate) fn ball_into(
        &mut self,
        g: &Csr,
        src: usize,
        r: u32,
        alive: &[bool],
        out: &mut Vec<usize>,
    ) {
        debug_assert!(alive[src]);
        self.stamp += 1;
        out.clear();
        out.push(src);
        self.dist[src] = 0;
        self.stamp_of[src] = self.stamp;
        self.queue.clear();
        self.queue.push_back(src);
        while let Some(v) = self.queue.pop_front() {
            let d = self.dist[v];
            if d == r {
                continue;
            }
            for &t in g.neighbors(v) {
                let t = t as usize;
                if alive[t] && self.stamp_of[t] != self.stamp {
                    self.stamp_of[t] = self.stamp;
                    self.dist[t] = d + 1;
                    out.push(t);
                    self.queue.push_back(t);
                }
            }
        }
        out.sort_unstable();
    }
}

/// `N(v)^r` within the alive-induced subgraph: hop distances only traverse
/// alive nodes. Sorted ascending. `src` must be alive.
pub(crate) fn ball_restricted(g: &Csr, src: usize, r: u32, alive: &[bool]) -> Vec<usize> {
    let mut scratch = BallScratch::new(g.n());
    let mut out = Vec::new();
    scratch.ball_into(g, src, r, alive, &mut out);
    out
}

/// The shared growth step of Algorithms 2 and 3: starting from seed `v`,
/// grows `Γ_0, Γ_1, …` until the ρ-growth condition fails or `max_hops` is
/// reached. Returns `(Γ_{r̄}, r̄)`.
///
/// `alive` restricts both the hop balls and the MWFS candidate pool.
pub(crate) fn grow_local_mwfs(
    graph: &Csr,
    coverage: &Coverage,
    unread: &TagSet,
    v: ReaderId,
    alive: &[bool],
    rho: f64,
    max_hops: u32,
) -> (Vec<ReaderId>, u32) {
    let mut mwfs = MwfsScratch::new(coverage, unread);
    let mut balls = BallScratch::new(graph.n());
    grow_local_mwfs_in(
        &mut mwfs, &mut balls, graph, unread, v, alive, rho, max_hops,
    )
}

/// [`grow_local_mwfs`] against caller-owned scratch state, so a schedule
/// run pays the `O(n_tags)` weight-structure setup once instead of once
/// per seed. Bit-identical to the allocating form.
#[allow(clippy::too_many_arguments)] // scratch split keeps borrows disjoint
pub(crate) fn grow_local_mwfs_in(
    mwfs: &mut MwfsScratch<'_>,
    balls: &mut BallScratch,
    graph: &Csr,
    unread: &TagSet,
    v: ReaderId,
    alive: &[bool],
    rho: f64,
    max_hops: u32,
) -> (Vec<ReaderId>, u32) {
    // Γ_0 = MWFS within N(v)^0 = {v}.
    let mut cur = vec![v];
    let mut cur_w = mwfs.weights.singleton_weight(v, unread);
    let mut r = 0u32;
    let mut ball = Vec::new();
    while r < max_hops {
        balls.ball_into(graph, v, r + 1, alive, &mut ball);
        let next = exact_mwfs_in(mwfs, graph, &ball, &[], DEFAULT_NODE_BUDGET).0;
        let next_w = mwfs.weights.weight(&next, unread);
        if (next_w as f64) >= rho * cur_w as f64 && next_w > 0 {
            cur = next;
            cur_w = next_w;
            r += 1;
        } else {
            break;
        }
    }
    (cur, r)
}

impl OneShotScheduler for LocalGreedy {
    fn name(&self) -> &'static str {
        "alg2-central"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        assert!(self.rho > 1.0, "ρ must exceed 1 (ρ = 1 + ε, ε > 0)");
        let sub = input.subscriber();
        let _span = span!(sub, "alg2.schedule");
        let n = input.deployment.n_readers();
        let graph = input.graph;
        let singleton = input.singleton_or_compute();
        // Singleton weights are fixed for the whole call, so the seed
        // sequence is a static priority order: sort once and walk a cursor
        // over dead readers instead of rescanning all n per round.
        //
        // Order: weight descending, ties towards the higher id — the same
        // strict (weight, id) order the distributed election uses, so
        // Algorithms 2 and 3 coincide when the distributed view covers the
        // whole graph.
        let mut order: Vec<ReaderId> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| singleton[b].cmp(&singleton[a]).then(b.cmp(&a)));
        let mut cursor = 0usize;
        let mut alive = vec![true; n];
        let mut x: Vec<ReaderId> = Vec::new();
        let mut mwfs = MwfsScratch::new(input.coverage, input.unread);
        let mut balls = BallScratch::new(n);
        let mut dead_ball = Vec::new();
        loop {
            while cursor < n && !alive[order[cursor]] {
                cursor += 1;
            }
            let Some(&v) = order.get(cursor) else { break };
            if singleton[v] == 0 {
                // No alive reader covers any unread tag; by sub-additivity
                // nothing of positive weight remains anywhere.
                break;
            }
            let (gamma, r) = grow_local_mwfs_in(
                &mut mwfs,
                &mut balls,
                graph,
                input.unread,
                v,
                &alive,
                self.rho,
                self.max_hops,
            );
            counter!(sub, "alg2.seeds");
            histogram!(sub, "alg2.growth_radius", r as u64);
            counter!(sub, "alg2.committed_readers", gamma.len() as u64);
            x.extend_from_slice(&gamma);
            // Remove N(v)^{r̄+1} from the (alive-induced) graph.
            balls.ball_into(graph, v, r + 1, &alive, &mut dead_ball);
            for &u in &dead_ball {
                alive[u] = false;
            }
        }
        x.sort_unstable();
        x.dedup();
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, Deployment, RadiusModel};

    fn paper_like(n_readers: usize, seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags: 300,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn figure2_finds_the_optimum() {
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // The three readers are pairwise independent → the 1-hop ball of the
        // heaviest (B) is just {B}… but with no edges every ball is a
        // singleton, so the algorithm processes each reader separately and
        // returns all three. Weight 3 — here the interference graph carries
        // no geometry, and that is exactly the information Algorithm 2 lacks
        // versus Algorithm 1.
        let set = LocalGreedy::default().schedule(&input);
        assert!(d.is_feasible(&set));
        assert_eq!(set, vec![0, 1, 2]);
        assert_eq!(input.weight_of(&set), 3);
    }

    #[test]
    fn output_is_always_feasible() {
        for seed in 0..8 {
            let d = paper_like(40, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = rfid_model::TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let set = LocalGreedy::default().schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn respects_theorem4_bound_against_exact() {
        // w(X) ≥ w(OPT)/ρ on instances small enough for the exact solver.
        for seed in 0..5 {
            let d = paper_like(14, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = rfid_model::TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let rho = 1.25;
            let set = LocalGreedy { rho, max_hops: 4 }.schedule(&input);
            let opt = crate::exact::ExactScheduler::default().schedule(&input);
            let w_set = input.weight_of(&set) as f64;
            let w_opt = input.weight_of(&opt) as f64;
            assert!(
                w_set + 1e-9 >= w_opt / rho,
                "seed {seed}: {w_set} < {w_opt}/ρ"
            );
        }
    }

    #[test]
    fn larger_rho_never_grows_farther() {
        let d = paper_like(40, 3);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(d.n_tags());
        let alive = vec![true; d.n_readers()];
        let mut weights = rfid_model::WeightEvaluator::new(&c);
        let singleton = weights.all_singleton_weights(&unread);
        let v = (0..d.n_readers()).max_by_key(|&v| singleton[v]).unwrap();
        let (_, r_small) = grow_local_mwfs(&g, &c, &unread, v, &alive, 1.05, 5);
        let (_, r_big) = grow_local_mwfs(&g, &c, &unread, v, &alive, 2.0, 5);
        assert!(
            r_big <= r_small,
            "ρ=2 grew farther ({r_big}) than ρ=1.05 ({r_small})"
        );
    }

    #[test]
    fn no_tags_schedules_nothing() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(2.0, 2.0), Point::new(8.0, 8.0)],
            vec![2.0, 2.0],
            vec![1.0, 1.0],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(LocalGreedy::default().schedule(&input).is_empty());
    }

    #[test]
    fn restricted_ball_ignores_dead_nodes() {
        // path 0-1-2-3; with node 1 dead, 0's 2-hop ball is just {0}.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let alive = [true, false, true, true];
        assert_eq!(ball_restricted(&g, 0, 2, &alive), vec![0]);
        assert_eq!(ball_restricted(&g, 2, 1, &alive), vec![2, 3]);
    }
}
