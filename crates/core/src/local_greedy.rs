//! Algorithm 2 — centralized reader-activation scheduling **without
//! location information** (paper Section V-A).
//!
//! Only the interference graph `G` is assumed (obtainable from an RF site
//! survey); no coordinates. Following Sakai–Togasaki–Yamazaki's greedy for
//! maximum-weight independent sets on growth-bounded graphs:
//!
//! 1. pick the reader `v` with the maximum weight "by activating it alone"
//!    (its singleton weight);
//! 2. compute local MWFS `Γ_r(v)` inside the `r`-hop neighbourhood
//!    `N(v)^r`, growing `r` while `w(Γ_{r+1}) ≥ ρ·w(Γ_r)` (`ρ = 1 + ε`);
//!    the growth stops at `r̄`, which Theorem 3 bounds by a constant `c(ρ)`;
//! 3. commit `Γ_{r̄}` to the answer, delete `N(v)^{r̄+1}` from the graph
//!    (the extra hop guarantees the union over rounds stays feasible), and
//!    repeat until no reader remains.
//!
//! Theorem 4: the result is a feasible scheduling set of weight at least
//! `w(OPT)/ρ`.
//!
//! Local MWFS computation uses the exact branch-and-bound of
//! [`crate::exact`] on the (small, growth-bounded) hop ball — the paper's
//! "by enumeration".
//!
//! The scheduler instance owns a [`SlotArena`]: weight cores, BFS state
//! and the seed-order/alive buffers persist across `schedule` calls, so a
//! covering-schedule slot pays a stamped reset (a packed-word memcpy)
//! instead of an `O(n_tags + n_readers)` rebuild — the difference between
//! minutes and sub-second at n = 100k.

use crate::arena::{AliveSet, BallScratch, SlotArena};
use crate::exact::{exact_mwfs_weighted, MwfsScratch, DEFAULT_NODE_BUDGET};
use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, ReaderId, TagSet};
use rfid_obs::{counter, histogram, span};

/// Algorithm 2 configuration plus its cross-call scratch arena.
#[derive(Debug, Clone)]
pub struct LocalGreedy {
    /// Growth threshold `ρ = 1 + ε > 1`. Larger ρ stops the hop growth
    /// earlier (cheaper, weaker guarantee `w ≥ OPT/ρ`).
    pub rho: f64,
    /// Hard cap `c` on the growth radius `r̄` (Theorem 3 guarantees a
    /// constant bound exists; this is its concrete value).
    pub max_hops: u32,
    arena: SlotArena,
    /// Positive-singleton readers, sorted by (weight desc, id desc).
    order: Vec<ReaderId>,
    /// Counting-sort workspace: occupancy/placement cursor per weight.
    counts: Vec<u32>,
    /// Counting-sort output buffer, swapped into `order`.
    sorted: Vec<ReaderId>,
    alive: AliveSet,
    /// Readers killed by the last call's ball removals — undone at the
    /// start of the next call, so the alive reset costs `O(kills)`, not
    /// `O(n)`.
    killed: Vec<ReaderId>,
    ball: Vec<usize>,
    gamma: Vec<ReaderId>,
    gamma_next: Vec<ReaderId>,
}

impl LocalGreedy {
    /// A scheduler with the given growth parameters and an empty arena
    /// (sized on the first [`schedule`](OneShotScheduler::schedule) call).
    pub fn new(rho: f64, max_hops: u32) -> Self {
        LocalGreedy {
            rho,
            max_hops,
            arena: SlotArena::new(),
            order: Vec::new(),
            counts: Vec::new(),
            sorted: Vec::new(),
            alive: AliveSet::default(),
            killed: Vec::new(),
            ball: Vec::new(),
            gamma: Vec::new(),
            gamma_next: Vec::new(),
        }
    }
}

impl Default for LocalGreedy {
    fn default() -> Self {
        LocalGreedy::new(1.1, 3)
    }
}

/// `N(v)^r` within the alive-induced subgraph: hop distances only traverse
/// alive nodes. Sorted ascending. `src` must be alive.
pub(crate) fn ball_restricted(g: &Csr, src: usize, r: u32, alive: &AliveSet) -> Vec<usize> {
    let mut scratch = BallScratch::new(g.n());
    let mut out = Vec::new();
    scratch.ball_into(g, src, r, alive, &mut out);
    out
}

/// The shared growth step of Algorithms 2 and 3: starting from seed `v`,
/// grows `Γ_0, Γ_1, …` until the ρ-growth condition fails or `max_hops` is
/// reached. Returns `(Γ_{r̄}, r̄)`.
///
/// `alive` restricts both the hop balls and the MWFS candidate pool.
pub(crate) fn grow_local_mwfs(
    graph: &Csr,
    coverage: &Coverage,
    unread: &TagSet,
    v: ReaderId,
    alive: &AliveSet,
    rho: f64,
    max_hops: u32,
) -> (Vec<ReaderId>, u32) {
    let mut mwfs = MwfsScratch::new(coverage, unread);
    let mut balls = BallScratch::new(graph.n());
    let mut ball = Vec::new();
    let mut gamma = Vec::new();
    let mut next = Vec::new();
    let (r, _) = grow_local_mwfs_in(
        &mut mwfs, &mut balls, &mut ball, &mut gamma, &mut next, coverage, graph, unread, None, v,
        alive, rho, max_hops,
    );
    (gamma, r)
}

/// [`grow_local_mwfs`] against caller-owned scratch state, so a schedule
/// run pays the `O(n_tags)` weight-structure setup once instead of once
/// per seed, and no per-seed heap allocation at all once warm.
/// Bit-identical to the allocating form.
///
/// `Γ_{r̄}` is written into `gamma`; `next` is the double-buffer for the
/// candidate of the following level. `singleton`, when given, must hold
/// `w({u})` under `unread` for every reader (the driver's incremental
/// array) — the seed's Γ_0 weight and the restricted search's bound keys
/// then come from lookups instead of coverage rescans.
///
/// Returns `(r̄, ball_is_dead_ball)`: the flag is `true` exactly when the
/// growth loop exited by failing the ρ-test, in which case `ball` already
/// holds `N(v)^{r̄+1}` — the removal ball Algorithm 2 needs next — and the
/// caller can skip recomputing it.
#[allow(clippy::too_many_arguments)] // scratch split keeps borrows disjoint
pub(crate) fn grow_local_mwfs_in(
    mwfs: &mut MwfsScratch,
    balls: &mut BallScratch,
    ball: &mut Vec<usize>,
    gamma: &mut Vec<ReaderId>,
    next: &mut Vec<ReaderId>,
    coverage: &Coverage,
    graph: &Csr,
    unread: &TagSet,
    singleton: Option<&[usize]>,
    v: ReaderId,
    alive: &AliveSet,
    rho: f64,
    max_hops: u32,
) -> (u32, bool) {
    // Γ_0 = MWFS within N(v)^0 = {v}.
    gamma.clear();
    gamma.push(v);
    let mut cur_w = match singleton {
        Some(s) => {
            debug_assert_eq!(
                s[v],
                coverage
                    .tags_of(v)
                    .iter()
                    .filter(|&&t| unread.is_unread(t as usize))
                    .count(),
                "stale singleton weight for seed {v}"
            );
            s[v]
        }
        None => coverage
            .tags_of(v)
            .iter()
            .filter(|&&t| unread.is_unread(t as usize))
            .count(),
    };
    let mut r = 0u32;
    let mut ball_is_dead_ball = false;
    while r < max_hops {
        balls.ball_into(graph, v, r + 1, alive, ball);
        ball_is_dead_ball = true;
        // Sub-additive prefilter: the restricted search can never beat
        // the ball's total singleton mass, so when even that bound falls
        // short of ρ·cur_w the growth test is doomed — break with the
        // removal ball already in hand and skip the search. Exactly the
        // comparison the search result would lose: `next_w ≤ bound` and
        // the conversion to f64 is monotone, so no boundary case can
        // disagree with the full computation. Only taken when the driver
        // supplies the singleton array; computing the weights from
        // coverage here would cost what it saves.
        if let Some(s) = singleton {
            let bound: usize = ball.iter().map(|&u| s[u]).sum();
            if (bound as f64) < rho * cur_w as f64 {
                break;
            }
        }
        let (next_w, _) = exact_mwfs_weighted(
            mwfs,
            coverage,
            graph,
            ball,
            &[],
            DEFAULT_NODE_BUDGET,
            singleton,
            next,
        );
        if (next_w as f64) >= rho * cur_w as f64 && next_w > 0 {
            std::mem::swap(gamma, next);
            cur_w = next_w;
            r += 1;
            ball_is_dead_ball = false;
        } else {
            break;
        }
    }
    (r, ball_is_dead_ball)
}

impl OneShotScheduler for LocalGreedy {
    fn name(&self) -> &'static str {
        "alg2-central"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        assert!(self.rho > 1.0, "ρ must exceed 1 (ρ = 1 + ε, ε > 0)");
        let sub = input.subscriber();
        let _span = span!(sub, "alg2.schedule");
        let n = input.deployment.n_readers();
        let graph = input.graph;
        let singleton = input.singleton_or_compute();
        // Singleton weights are fixed for the whole call, so the seed
        // sequence is a static priority order: sort once and walk a cursor
        // over dead readers instead of rescanning all n per round.
        //
        // Order: weight descending, ties towards the higher id — the same
        // strict (weight, id) order the distributed election uses, so
        // Algorithms 2 and 3 coincide when the distributed view covers the
        // whole graph. Zero-weight readers are dropped from the order (the
        // eager loop broke on the first one, so they can never seed), but
        // they stay *alive*: hop balls traverse them and the `N(v)^{r̄+1}`
        // removal must still reach through them, or later ball shapes —
        // and hence the schedule — would change.
        let mut warm = 0u64;
        self.order.clear();
        if self.order.capacity() < n {
            warm += 1;
            self.order.reserve(n);
        }
        match input.positive_readers() {
            // The covering-schedule driver maintains the positive set
            // incrementally; trusting it replaces the per-slot O(n) scan.
            Some(p) => self.order.extend_from_slice(p),
            None => self.order.extend((0..n).filter(|&v| singleton[v] > 0)),
        }
        // Counting sort into (weight desc, id desc): `order` is ascending
        // by id, so placing ids in reverse scan order lands each weight
        // bucket in descending id. O(P + max_w) against the comparison
        // sort's O(P log P) — the difference is material in the fat first
        // slots where P is most of n.
        let max_w = self.order.iter().map(|&v| singleton[v]).max().unwrap_or(0);
        if self.counts.capacity() < max_w + 1 {
            warm += 1;
        }
        self.counts.clear();
        self.counts.resize(max_w + 1, 0);
        for &v in &self.order {
            self.counts[singleton[v]] += 1;
        }
        let mut start = 0u32;
        for w in (1..=max_w).rev() {
            let c = self.counts[w];
            self.counts[w] = start;
            start += c;
        }
        if self.sorted.capacity() < n {
            warm += 1;
            self.sorted.reserve(n);
        }
        self.sorted.clear();
        self.sorted.resize(self.order.len(), 0);
        for &v in self.order.iter().rev() {
            let slot = &mut self.counts[singleton[v]];
            self.sorted[*slot as usize] = v;
            *slot += 1;
        }
        std::mem::swap(&mut self.order, &mut self.sorted);
        // Alive reset: undo only last call's kills instead of refilling
        // all n flags (`O(kills)`, and kills track the work actually done).
        if self.alive.len() != n {
            warm += 1;
            self.alive.reset(n);
            self.killed.clear();
            self.killed.reserve(n);
        } else {
            for u in self.killed.drain(..) {
                self.alive.revive(u);
            }
        }
        // Ball output is bounded by n; reserving up front keeps later
        // slots allocation-free even when their balls outgrow earlier ones.
        if self.ball.capacity() < n {
            warm += 1;
            self.ball.reserve(n);
        }
        if self.gamma.capacity() < n {
            warm += 1;
            self.gamma.reserve(n);
            self.gamma_next.reserve(n);
        }
        self.arena.prepare(input.coverage, input.unread, n);
        self.arena.note_allocs(warm);
        let mut cursor = 0usize;
        let mut x: Vec<ReaderId> = Vec::new();
        loop {
            while cursor < self.order.len() && !self.alive.get(self.order[cursor]) {
                cursor += 1;
            }
            let Some(&v) = self.order.get(cursor) else {
                break;
            };
            let (r, ball_is_dead_ball) = grow_local_mwfs_in(
                &mut self.arena.mwfs,
                &mut self.arena.balls,
                &mut self.ball,
                &mut self.gamma,
                &mut self.gamma_next,
                input.coverage,
                graph,
                input.unread,
                Some(&singleton),
                v,
                &self.alive,
                self.rho,
                self.max_hops,
            );
            counter!(sub, "alg2.seeds");
            histogram!(sub, "alg2.growth_radius", r as u64);
            counter!(sub, "alg2.committed_readers", self.gamma.len() as u64);
            x.extend_from_slice(&self.gamma);
            // Remove N(v)^{r̄+1} from the (alive-induced) graph. When the
            // growth loop's last failed probe already computed that ball,
            // reuse it instead of repeating the BFS.
            if !ball_is_dead_ball {
                self.arena
                    .balls
                    .ball_into(graph, v, r + 1, &self.alive, &mut self.ball);
            }
            for &u in &self.ball {
                self.alive.kill(u);
                self.killed.push(u);
            }
        }
        x.sort_unstable();
        x.dedup();
        x
    }

    fn take_scratch_allocations(&mut self) -> u64 {
        self.arena.take_allocs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, Deployment, RadiusModel};

    fn paper_like(n_readers: usize, seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags: 300,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn figure2_finds_the_optimum() {
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // The three readers are pairwise independent → the 1-hop ball of the
        // heaviest (B) is just {B}… but with no edges every ball is a
        // singleton, so the algorithm processes each reader separately and
        // returns all three. Weight 3 — here the interference graph carries
        // no geometry, and that is exactly the information Algorithm 2 lacks
        // versus Algorithm 1.
        let set = LocalGreedy::default().schedule(&input);
        assert!(d.is_feasible(&set));
        assert_eq!(set, vec![0, 1, 2]);
        assert_eq!(input.weight_of(&set), 3);
    }

    #[test]
    fn output_is_always_feasible() {
        for seed in 0..8 {
            let d = paper_like(40, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = rfid_model::TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let set = LocalGreedy::default().schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn reused_instance_matches_fresh_instances_and_stops_allocating() {
        // Cross-call scratch reuse must be invisible in the output, and a
        // warm instance must not grow its buffers again.
        let d = paper_like(40, 5);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut unread = rfid_model::TagSet::all_unread(d.n_tags());
        let mut warm = LocalGreedy::default();
        for round in 0..4 {
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let from_warm = warm.schedule(&input);
            let from_fresh = LocalGreedy::default().schedule(&input);
            assert_eq!(from_warm, from_fresh, "round {round}");
            if round == 0 {
                assert!(warm.take_scratch_allocations() > 0, "cold call warms up");
            } else {
                assert_eq!(warm.take_scratch_allocations(), 0, "round {round}");
            }
            // Retire the tags just served so the next round differs.
            let served = rfid_model::WeightEvaluator::new(&c).well_covered(&from_warm, &unread);
            unread.mark_all_read(&served);
        }
    }

    #[test]
    fn respects_theorem4_bound_against_exact() {
        // w(X) ≥ w(OPT)/ρ on instances small enough for the exact solver.
        for seed in 0..5 {
            let d = paper_like(14, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = rfid_model::TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let rho = 1.25;
            let set = LocalGreedy::new(rho, 4).schedule(&input);
            let opt = crate::exact::ExactScheduler::default().schedule(&input);
            let w_set = input.weight_of(&set) as f64;
            let w_opt = input.weight_of(&opt) as f64;
            assert!(
                w_set + 1e-9 >= w_opt / rho,
                "seed {seed}: {w_set} < {w_opt}/ρ"
            );
        }
    }

    #[test]
    fn larger_rho_never_grows_farther() {
        let d = paper_like(40, 3);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(d.n_tags());
        let alive = AliveSet::all_alive(d.n_readers());
        let mut weights = rfid_model::WeightEvaluator::new(&c);
        let singleton = weights.all_singleton_weights(&unread);
        let v = (0..d.n_readers()).max_by_key(|&v| singleton[v]).unwrap();
        let (_, r_small) = grow_local_mwfs(&g, &c, &unread, v, &alive, 1.05, 5);
        let (_, r_big) = grow_local_mwfs(&g, &c, &unread, v, &alive, 2.0, 5);
        assert!(
            r_big <= r_small,
            "ρ=2 grew farther ({r_big}) than ρ=1.05 ({r_small})"
        );
    }

    #[test]
    fn no_tags_schedules_nothing() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(2.0, 2.0), Point::new(8.0, 8.0)],
            vec![2.0, 2.0],
            vec![1.0, 1.0],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(LocalGreedy::default().schedule(&input).is_empty());
    }

    #[test]
    fn restricted_ball_ignores_dead_nodes() {
        // path 0-1-2-3; with node 1 dead, 0's 2-hop ball is just {0}.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut alive = AliveSet::all_alive(4);
        alive.kill(1);
        assert_eq!(ball_restricted(&g, 0, 2, &alive), vec![0]);
        assert_eq!(ball_restricted(&g, 2, 1, &alive), vec![2, 3]);
    }
}
