//! Survive-disk computation and the relevant-square tree.

use rfid_geometry::{Disk, HierarchicalGrid, LevelAssignment, Rect, Shifting, SquareId};
use rfid_model::{Deployment, ReaderId};
use std::collections::BTreeMap;

/// The survivors of one `(r, s)`-shifting, organised as a forest of
/// *relevant squares* (squares owning at least one surviving disk of their
/// own level).
#[derive(Debug)]
pub struct Survivors {
    /// The shifted grid the tree lives on.
    pub grid: HierarchicalGrid,
    /// Scaled interference disk of every surviving reader.
    pub disks: BTreeMap<ReaderId, Disk>,
    /// The relevant-square forest.
    pub tree: SquareTree,
}

/// Forest of relevant squares: each node records the surviving disks homed
/// there and its relevant descendants (children skip non-relevant levels —
/// a child's nearest relevant proper ancestor is its tree parent).
#[derive(Debug, Default)]
pub struct SquareTree {
    nodes: BTreeMap<SquareId, SquareNode>,
    roots: Vec<SquareId>,
}

#[derive(Debug, Default)]
struct SquareNode {
    /// Survivors of level `square.level` homed in this square.
    own: Vec<ReaderId>,
    children: Vec<SquareId>,
}

impl SquareTree {
    /// `true` iff there are no relevant squares (nothing survived).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root squares (pairwise disjoint regions), sorted.
    pub fn roots(&self) -> &[SquareId] {
        &self.roots
    }

    /// Survivors of the square's own level homed here.
    pub fn own_disks(&self, sq: SquareId) -> &[ReaderId] {
        &self.nodes[&sq].own
    }

    /// Tree children (relevant squares whose nearest relevant ancestor is
    /// `sq`), sorted.
    pub fn children(&self, sq: SquareId) -> &[SquareId] {
        &self.nodes[&sq].children
    }

    /// Number of relevant squares.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
}

/// Computes survivors and their square forest for one shifting.
///
/// `candidates` are global reader ids; `levels` must have been built from
/// the candidates' interference radii **in the same order**.
pub fn compute_survivors(
    deployment: &Deployment,
    candidates: &[ReaderId],
    levels: &LevelAssignment,
    shift: Shifting,
) -> Survivors {
    assert_eq!(
        candidates.len(),
        levels.levels.len(),
        "levels must match candidates"
    );
    let grid = HierarchicalGrid::new(levels.k, shift);
    let mut disks = BTreeMap::new();
    let mut by_square: BTreeMap<SquareId, Vec<ReaderId>> = BTreeMap::new();
    for (ci, &v) in candidates.iter().enumerate() {
        let level = levels.levels[ci];
        let disk = levels.scale_disk(
            deployment.reader_positions()[v],
            deployment.interference_radii()[v],
        );
        if grid.survives(&disk, level) {
            let home = grid.home_square(&disk, level);
            by_square.entry(home).or_default().push(v);
            disks.insert(v, disk);
        }
    }
    // Assemble the forest: for every relevant square, walk the parent chain
    // to its nearest relevant proper ancestor.
    let mut tree = SquareTree::default();
    for (&sq, own) in &by_square {
        tree.nodes.entry(sq).or_default().own = own.clone();
    }
    let squares: Vec<SquareId> = by_square.keys().copied().collect();
    for &sq in &squares {
        let mut cur = sq;
        let mut parent_found = None;
        while let Some(p) = grid.parent(cur) {
            if by_square.contains_key(&p) {
                parent_found = Some(p);
                break;
            }
            cur = p;
        }
        match parent_found {
            Some(p) => tree
                .nodes
                .get_mut(&p)
                .expect("parent is relevant")
                .children
                .push(sq),
            None => tree.roots.push(sq),
        }
    }
    for node in tree.nodes.values_mut() {
        node.children.sort_unstable();
    }
    tree.roots.sort_unstable();
    Survivors { grid, disks, tree }
}

impl Survivors {
    /// Scaled bounds of a square.
    pub fn square_bounds(&self, sq: SquareId) -> Rect {
        self.grid.square_bounds(sq)
    }

    /// `true` iff reader `v`'s (scaled) interference disk intersects the
    /// square — the "I intersecting S" filter of the DP recursion.
    pub fn disk_intersects(&self, v: ReaderId, sq: SquareId) -> bool {
        let d = &self.disks[&v];
        self.square_bounds(sq).intersects_disk(d.center, d.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::Point;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    fn deployment(n: usize, seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: n,
            n_tags: 10,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 12.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed)
    }

    fn survivors_for(d: &Deployment, k: usize, shift: Shifting) -> Survivors {
        let candidates: Vec<ReaderId> = (0..d.n_readers()).collect();
        let levels = LevelAssignment::new(d.interference_radii(), k);
        compute_survivors(d, &candidates, &levels, shift)
    }

    #[test]
    fn survivors_are_confined_to_their_home_square() {
        let d = deployment(40, 1);
        let s = survivors_for(&d, 3, Shifting { r: 1, s: 2 });
        for (&v, disk) in &s.disks {
            let levels = LevelAssignment::new(d.interference_radii(), 3);
            let home = s.grid.home_square(disk, levels.levels[v]);
            let b = s.square_bounds(home);
            assert!(
                disk.center.x - disk.radius >= b.min_x - 1e-9
                    && disk.center.x + disk.radius <= b.max_x + 1e-9
                    && disk.center.y - disk.radius >= b.min_y - 1e-9
                    && disk.center.y + disk.radius <= b.max_y + 1e-9,
                "reader {v} crosses its home square"
            );
        }
    }

    #[test]
    fn forest_structure_is_consistent() {
        let d = deployment(50, 2);
        let s = survivors_for(&d, 3, Shifting { r: 0, s: 0 });
        // Every relevant square is reachable from exactly one root.
        let mut seen = std::collections::BTreeSet::new();
        let mut stack: Vec<SquareId> = s.tree.roots().to_vec();
        while let Some(sq) = stack.pop() {
            assert!(seen.insert(sq), "square {sq:?} reached twice");
            for &c in s.tree.children(sq) {
                assert!(c.level > sq.level, "child level must be deeper");
                // child's area inside parent's area
                let cb = s.square_bounds(c);
                let pb = s.square_bounds(sq);
                assert!(pb.contains_rect(&cb));
                stack.push(c);
            }
        }
        assert_eq!(seen.len(), s.tree.len());
        // Disk counts match survivor count.
        let total: usize = seen.iter().map(|&sq| s.tree.own_disks(sq).len()).sum();
        assert_eq!(total, s.disks.len());
    }

    #[test]
    fn some_shifting_retains_most_disks() {
        let d = deployment(50, 3);
        let mut best = 0usize;
        for shift in Shifting::all(3) {
            best = best.max(survivors_for(&d, 3, shift).disks.len());
        }
        assert!(
            best * 2 >= d.n_readers(),
            "best shifting kept only {best}/{} disks",
            d.n_readers()
        );
    }

    #[test]
    fn different_roots_are_disjoint_regions() {
        let d = deployment(50, 4);
        let s = survivors_for(&d, 3, Shifting { r: 2, s: 1 });
        let roots = s.tree.roots();
        for (i, &a) in roots.iter().enumerate() {
            for &b in &roots[i + 1..] {
                let ra = s.square_bounds(a);
                let rb = s.square_bounds(b);
                let overlap =
                    ra.intersects(&rb) && !(ra.contains_rect(&rb) || rb.contains_rect(&ra));
                // Roots may touch along grid lines but never properly
                // overlap, and no root contains another (else it would be
                // its ancestor square).
                if ra.contains_rect(&rb) || rb.contains_rect(&ra) {
                    panic!("nested roots {a:?} {b:?}");
                }
                if overlap {
                    // Allow boundary touching only.
                    let w = (ra.max_x.min(rb.max_x) - ra.min_x.max(rb.min_x)).max(0.0);
                    let h = (ra.max_y.min(rb.max_y) - ra.min_y.max(rb.min_y)).max(0.0);
                    assert!(
                        w * h < 1e-12,
                        "roots {a:?} and {b:?} overlap with area {}",
                        w * h
                    );
                }
            }
        }
    }

    #[test]
    fn single_reader_forest() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(5.0, 5.0)],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let candidates = vec![0];
        let levels = LevelAssignment::new(&[2.0], 2);
        // Try all shiftings: the lone max-radius disk (scaled to 1/2, level
        // 0, squares of side k=2) survives whenever it clears the kept
        // lines; at least one shifting must keep it.
        let kept = Shifting::all(2)
            .into_iter()
            .filter(|&sh| {
                let s = compute_survivors(&d, &candidates, &levels, sh);
                !s.tree.is_empty()
            })
            .count();
        assert!(kept >= 1, "no shifting kept the only disk");
    }
}
