//! Algorithm 1 — PTAS for MWFS **with location information** (paper
//! Section IV).
//!
//! Readers may have arbitrary, per-reader interference radii. The scheme:
//!
//! 1. Scale all interference disks so the largest radius is `1/2`
//!    and partition them into *levels*: level `j` holds the disks with
//!    `1/(k+1)^{j+1} < 2R_i ≤ 1/(k+1)^j` ([`rfid_geometry::LevelAssignment`]).
//! 2. For every `(r, s)`-shifting of the hierarchical grid
//!    ([`rfid_geometry::HierarchicalGrid`]), discard each disk that *hits* a
//!    kept line of its own level — the **survive** test. Surviving disks are
//!    strictly confined to one square per level, which decouples the plane
//!    into a square hierarchy.
//! 3. Run a dynamic program over the relevant squares, coarsest level last:
//!    `MWFS(S, I)` enumerates the independent sets `D` of level-`level(S)`
//!    disks inside `S` that are compatible with the boundary context `I`
//!    (at most `Λ` disks, per the paper's pseudo-code) and combines them
//!    with the children’s memoised solutions (the `dp` submodule).
//! 4. Keep the best shifting. Theorem 2: some shifting preserves
//!    `(1 − 1/k)²` of the optimum weight.
//!
//! Because the weight is sub-additive (`w(X₁∪X₂) ≤ w(X₁)+w(X₂)` — the
//! paper's stated complication over Erlebach–Jansen–Seidel), every candidate
//! union is re-scored with the exact global weight function rather than by
//! adding partial weights.
//!
//! Implementation refinement (documented in DESIGN.md): after the DP, the
//! solution is greedily augmented with discarded (non-surviving) readers
//! that still fit feasibly with positive marginal weight. This never hurts
//! and recovers most of the weight the shifting discarded; disable with
//! [`PtasScheduler::augment`]` = false` to measure the bare DP (the
//! ablation bench does exactly that).

mod dp;
mod survivors;

pub use survivors::{compute_survivors, SquareTree};

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_geometry::{LevelAssignment, Shifting};
use rfid_model::{IncrementalWeight, ReaderId, WeightEvaluator};
use rfid_obs::{counter, histogram, span};

/// Algorithm 1 configuration.
#[derive(Debug, Clone, Copy)]
pub struct PtasScheduler {
    /// Grid parameter `k ≥ 2`; the guarantee is `(1 − 1/k)²` per Theorem 2
    /// and the work grows with the `k²` shiftings.
    pub k: usize,
    /// `Λ`: maximum number of same-level disks enumerated per square (the
    /// paper's "for all `J ⊆ Y` with at most Λ disks").
    pub lambda_cap: usize,
    /// Greedily re-add non-surviving readers after the DP (see module doc).
    pub augment: bool,
    /// Evaluate the `k²` shiftings through the [`crate::par`] facade; the
    /// shiftings are embarrassingly parallel and the outcome is
    /// deterministic regardless of thread count (ties resolve in shifting
    /// order after joining).
    pub parallel: bool,
}

impl Default for PtasScheduler {
    fn default() -> Self {
        PtasScheduler {
            k: 4,
            lambda_cap: 4,
            augment: true,
            parallel: true,
        }
    }
}

impl OneShotScheduler for PtasScheduler {
    fn name(&self) -> &'static str {
        "alg1-ptas"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        assert!(self.k >= 2, "k must be ≥ 2");
        let sub = input.subscriber();
        let _span = span!(sub, "ptas.schedule");
        let n = input.deployment.n_readers();
        if n == 0 {
            return Vec::new();
        }
        let mut weights = WeightEvaluator::new(input.coverage);
        let singleton = weights.all_singleton_weights(input.unread);
        // Readers covering no unread tag can never raise the weight; prune
        // them from the search space.
        let candidates: Vec<ReaderId> = (0..n).filter(|&v| singleton[v] > 0).collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let radii: Vec<f64> = candidates
            .iter()
            .map(|&v| input.deployment.interference_radii()[v])
            .collect();
        let levels = LevelAssignment::new(&radii, self.k);

        let shifts = Shifting::all(self.k);
        let solutions: Vec<Vec<ReaderId>> = if self.parallel && shifts.len() > 1 {
            crate::par::map(&shifts, |&shift| {
                self.solve_shifting(input, &candidates, &levels, shift)
            })
        } else {
            shifts
                .iter()
                .map(|&shift| self.solve_shifting(input, &candidates, &levels, shift))
                .collect()
        };
        counter!(sub, "ptas.shiftings", solutions.len() as u64);
        counter!(sub, "ptas.candidates", candidates.len() as u64);
        let mut best: Vec<ReaderId> = Vec::new();
        let mut best_w = 0usize;
        for x in solutions {
            let w = weights.weight(&x, input.unread);
            histogram!(sub, "ptas.shifting_weight", w as u64);
            if w > best_w || (w == best_w && x.len() < best.len()) {
                best_w = w;
                best = x;
            }
        }
        if self.augment {
            best = augment_greedy(input, best, &singleton);
        }
        best.sort_unstable();
        best
    }
}

impl PtasScheduler {
    /// One `(r, s)`-shifting: survivors → square tree → DP → union of root
    /// solutions.
    fn solve_shifting(
        &self,
        input: &OneShotInput<'_>,
        candidates: &[ReaderId],
        levels: &LevelAssignment,
        shift: Shifting,
    ) -> Vec<ReaderId> {
        let survivors = compute_survivors(input.deployment, candidates, levels, shift);
        if survivors.tree.is_empty() {
            return Vec::new();
        }
        let mut solver = dp::DpSolver::new(input, &survivors, self.lambda_cap);
        let mut x: Vec<ReaderId> = Vec::new();
        for root in survivors.tree.roots() {
            x.extend(solver.solve(*root, &[]));
        }
        x
    }
}

/// Greedy augmentation: try every reader outside `x` in descending
/// singleton-weight order; add it when it is independent from the current
/// set and strictly increases the weight.
fn augment_greedy(
    input: &OneShotInput<'_>,
    x: Vec<ReaderId>,
    singleton: &[usize],
) -> Vec<ReaderId> {
    let mut inc = IncrementalWeight::new(input.coverage, input.unread);
    let mut blocked = vec![false; input.deployment.n_readers()];
    for &v in &x {
        inc.add(v);
        for &t in input.graph.neighbors(v) {
            blocked[t as usize] = true;
        }
    }
    let mut order: Vec<ReaderId> = (0..input.deployment.n_readers())
        .filter(|&v| !inc.is_active(v) && singleton[v] > 0)
        .collect();
    order.sort_by(|&a, &b| singleton[b].cmp(&singleton[a]).then(a.cmp(&b)));
    for v in order {
        if blocked[v] || inc.is_active(v) {
            continue;
        }
        if inc.delta_if_added(v) > 0 {
            inc.add(v);
            for &t in input.graph.neighbors(v) {
                blocked[t as usize] = true;
            }
        }
    }
    inc.active().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, Deployment, RadiusModel, TagSet};

    fn paper_like(n_readers: usize, seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags: 300,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn figure2_finds_the_optimum() {
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let set = PtasScheduler::default().schedule(&input);
        assert!(d.is_feasible(&set));
        assert_eq!(
            input.weight_of(&set),
            4,
            "PTAS should find the {{A, C}} optimum"
        );
    }

    #[test]
    fn output_is_always_feasible() {
        for seed in 0..8 {
            let d = paper_like(40, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let set = PtasScheduler::default().schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn close_to_exact_on_small_instances() {
        // Theorem 2 promises (1−1/k)² of OPT for the best shifting; with
        // augmentation the implementation should do at least that.
        for seed in 0..5 {
            let d = paper_like(14, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let k = 3;
            let set = PtasScheduler {
                k,
                ..Default::default()
            }
            .schedule(&input);
            let opt = crate::exact::ExactScheduler::default().schedule(&input);
            let w_set = input.weight_of(&set) as f64;
            let w_opt = input.weight_of(&opt) as f64;
            let bound = (1.0 - 1.0 / k as f64).powi(2);
            assert!(
                w_set + 1e-9 >= bound * w_opt,
                "seed {seed}: {w_set} < {bound}·{w_opt}"
            );
        }
    }

    #[test]
    fn bare_dp_is_never_better_than_augmented() {
        for seed in 0..4 {
            let d = paper_like(30, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let bare = PtasScheduler {
                augment: false,
                ..Default::default()
            }
            .schedule(&input);
            let full = PtasScheduler::default().schedule(&input);
            assert!(
                input.weight_of(&full) >= input.weight_of(&bare),
                "seed {seed}"
            );
            assert!(d.is_feasible(&bare));
        }
    }

    #[test]
    fn no_coverable_tags_schedules_nothing() {
        let d = Deployment::new(
            Rect::square(50.0),
            vec![Point::new(10.0, 10.0), Point::new(40.0, 40.0)],
            vec![5.0, 5.0],
            vec![2.0, 2.0],
            vec![Point::new(25.0, 25.0)], // out of both interrogation disks
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(1);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(PtasScheduler::default().schedule(&input).is_empty());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        for seed in 0..4 {
            let d = paper_like(35, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let par = PtasScheduler {
                parallel: true,
                ..Default::default()
            }
            .schedule(&input);
            let seq = PtasScheduler {
                parallel: false,
                ..Default::default()
            }
            .schedule(&input);
            assert_eq!(
                par, seq,
                "seed {seed}: thread count must not change the result"
            );
        }
    }

    #[test]
    fn k_two_also_works() {
        let d = paper_like(25, 3);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let set = PtasScheduler {
            k: 2,
            ..Default::default()
        }
        .schedule(&input);
        assert!(d.is_feasible(&set));
    }
}
