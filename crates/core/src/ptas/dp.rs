//! The memoised dynamic program over relevant squares.
//!
//! `MWFS(S, I)` (paper Algorithm 1): the best feasible set of surviving
//! disks strictly inside square `S`, compatible with the boundary context
//! `I` (already-chosen coarser-level disks whose interference disks
//! intersect `S`). For each candidate set `D` of own-level disks (at most
//! `Λ`, pairwise independent, independent of `I`) the children's memoised
//! solutions under context `(I ∪ D)` are combined; candidates are compared
//! by the **exact** weight `w(X ∪ I)` — never by adding partial weights,
//! because `w` is sub-additive.
//!
//! Leaf squares skip the enumeration entirely and call the exact
//! branch-and-bound with `I` as the fixed base, which is both faster and
//! exactly the `D`-scan's limit behaviour.

use super::survivors::Survivors;
use crate::exact::exact_mwfs_restricted;
use crate::scheduler::OneShotInput;
use rfid_geometry::SquareId;
use rfid_model::{ReaderId, WeightEvaluator};
use std::collections::HashMap;

/// Cap on enumerated `D` sets per `(S, I)` subproblem — a safety valve for
/// pathological inputs (hundreds of same-level disks in one square). The
/// paper's 50-reader instances never approach it.
const MAX_ENUMERATIONS: usize = 100_000;

pub(super) struct DpSolver<'a, 'b> {
    input: &'a OneShotInput<'b>,
    survivors: &'a Survivors,
    lambda_cap: usize,
    weights: WeightEvaluator<'a>,
    memo: HashMap<(SquareId, Vec<u32>), Vec<ReaderId>>,
}

impl<'a, 'b> DpSolver<'a, 'b> {
    pub(super) fn new(
        input: &'a OneShotInput<'b>,
        survivors: &'a Survivors,
        lambda_cap: usize,
    ) -> Self {
        DpSolver {
            input,
            survivors,
            lambda_cap: lambda_cap.max(1),
            weights: WeightEvaluator::new(input.coverage),
            memo: HashMap::new(),
        }
    }

    /// `MWFS(S, I)`: best set of survivors inside `S`'s subtree compatible
    /// with context `I` (global reader ids, sorted). Returns the chosen
    /// readers (excluding `I`).
    pub(super) fn solve(&mut self, square: SquareId, context: &[ReaderId]) -> Vec<ReaderId> {
        // Only the context members whose disks touch this square constrain
        // anything inside it; filtering keeps memo keys canonical and small.
        let relevant: Vec<ReaderId> = context
            .iter()
            .copied()
            .filter(|&v| self.survivors.disk_intersects(v, square))
            .collect();
        let key = (
            square,
            relevant.iter().map(|&v| v as u32).collect::<Vec<u32>>(),
        );
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let result = self.solve_uncached(square, &relevant);
        self.memo.insert(key, result.clone());
        result
    }

    fn solve_uncached(&mut self, square: SquareId, context: &[ReaderId]) -> Vec<ReaderId> {
        let graph = self.input.graph;
        // Own-level candidates independent of the context.
        let own: Vec<ReaderId> = self
            .survivors
            .tree
            .own_disks(square)
            .iter()
            .copied()
            .filter(|&v| context.iter().all(|&u| !graph.has_edge(u, v)))
            .collect();
        let children = self.survivors.tree.children(square);

        if children.is_empty() {
            // Leaf: exact best D ⊆ own under fixed base `context`.
            return exact_mwfs_restricted(
                self.input.coverage,
                graph,
                self.input.unread,
                &own,
                context,
            );
        }

        // Internal square: enumerate independent D ⊆ own, |D| ≤ Λ.
        let mut best: Vec<ReaderId> = Vec::new();
        let mut best_w = 0usize;
        let mut first = true;
        let mut enumerated = 0usize;
        let mut d: Vec<ReaderId> = Vec::new();
        // Recursive subset enumeration expressed iteratively via an explicit
        // stack of (next index to consider).
        self.enumerate(
            square,
            context,
            children,
            &own,
            0,
            &mut d,
            &mut enumerated,
            &mut |this, x| {
                let w = this.weights.weight(
                    &x.iter()
                        .copied()
                        .chain(context.iter().copied())
                        .collect::<Vec<_>>(),
                    this.input.unread,
                );
                if first || w > best_w || (w == best_w && x.len() < best.len()) {
                    first = false;
                    best_w = w;
                    best = x;
                }
            },
        );
        best
    }

    /// Enumerates candidate sets `D` (independent subsets of `own[from..]`
    /// of size ≤ Λ), completes each with children solutions and feeds the
    /// resulting `X` to `emit`.
    #[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
    fn enumerate(
        &mut self,
        square: SquareId,
        context: &[ReaderId],
        children: &[SquareId],
        own: &[ReaderId],
        from: usize,
        d: &mut Vec<ReaderId>,
        enumerated: &mut usize,
        emit: &mut impl FnMut(&mut Self, Vec<ReaderId>),
    ) {
        *enumerated += 1;
        if *enumerated > MAX_ENUMERATIONS {
            return;
        }
        // Complete the current D with children's solutions.
        let mut x: Vec<ReaderId> = d.clone();
        let child_context: Vec<ReaderId> = {
            let mut c: Vec<ReaderId> = context.iter().copied().chain(d.iter().copied()).collect();
            c.sort_unstable();
            c
        };
        for &child in children {
            x.extend(self.solve(child, &child_context));
        }
        emit(self, x);
        // Extend D.
        if d.len() >= self.lambda_cap {
            return;
        }
        for i in from..own.len() {
            let v = own[i];
            if d.iter().all(|&u| !self.input.graph.has_edge(u, v)) {
                d.push(v);
                self.enumerate(square, context, children, own, i + 1, d, enumerated, emit);
                d.pop();
            }
        }
    }
}
