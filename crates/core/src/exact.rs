//! Exact maximum weighted feasible scheduling set by branch and bound.
//!
//! The weight `w(X)` is sub-additive, not additive, so this is *not* plain
//! maximum-weight independent set. The solver branches include/exclude over
//! candidates sorted by singleton weight and prunes with the sub-additivity
//! bound `w(X ∪ Y) ≤ w(X) + Σ_{v∈Y} w({v})`: once the current weight plus
//! the remaining singleton mass cannot beat the incumbent, the branch dies.
//!
//! Exponential in the worst case — it is the paper's implicit "enumeration"
//! primitive: Algorithm 2/3 call it on small `r`-hop neighbourhoods, the
//! PTAS calls it inside grid squares, tests call it for ground truth on
//! instances up to a few dozen readers.

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, IncrementalWeight, ReaderId, TagSet, WeightEvaluator};

/// Budget on branch-and-bound node expansions. When exceeded the search
/// returns the best set found so far (anytime behaviour) — on the paper's
/// instance sizes the budget is never reached.
pub const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

/// Best `X ⊆ candidates` such that `X ∪ base` is feasible, maximising
/// `w(X ∪ base)`.
///
/// * `graph` must be the interference graph of the deployment behind
///   `coverage`; feasibility is checked through it.
/// * `base` is a feasible context set (disjoint from `candidates`); its
///   members are fixed "on" and participate in RRc weight interactions.
///   Pass `&[]` for a plain MWFS.
///
/// Returns the chosen subset of `candidates` only (not including `base`),
/// sorted ascending.
pub fn exact_mwfs_restricted(
    coverage: &Coverage,
    graph: &Csr,
    unread: &TagSet,
    candidates: &[ReaderId],
    base: &[ReaderId],
) -> Vec<ReaderId> {
    exact_mwfs_budgeted(
        coverage,
        graph,
        unread,
        candidates,
        base,
        DEFAULT_NODE_BUDGET,
    )
    .0
}

/// As [`exact_mwfs_restricted`], also reporting whether the search completed
/// within the node budget (`true`) or returned an anytime best (`false`).
pub fn exact_mwfs_budgeted(
    coverage: &Coverage,
    graph: &Csr,
    unread: &TagSet,
    candidates: &[ReaderId],
    base: &[ReaderId],
    node_budget: u64,
) -> (Vec<ReaderId>, bool) {
    let mut scratch = MwfsScratch::new(coverage, unread);
    exact_mwfs_in(&mut scratch, graph, candidates, base, node_budget)
}

/// Reusable solver state: the weight structures cost `O(n_tags)` to
/// build, which dominated [`exact_mwfs_budgeted`] when Algorithm 2 calls
/// it once per hop ball (a few dozen candidates each). Callers running
/// many restricted searches against the *same* unread set construct one
/// scratch per slot and pass it to [`exact_mwfs_in`];
/// [`reset`](Self::reset) re-snapshots it for the next slot.
#[derive(Debug, Clone)]
pub struct MwfsScratch<'a> {
    pub(crate) weights: WeightEvaluator<'a>,
    inc: IncrementalWeight<'a>,
}

impl<'a> MwfsScratch<'a> {
    /// Builds the scratch for one (coverage, unread) snapshot.
    pub fn new(coverage: &'a Coverage, unread: &TagSet) -> Self {
        MwfsScratch {
            weights: WeightEvaluator::new(coverage),
            inc: IncrementalWeight::new(coverage, unread),
        }
    }

    /// Re-snapshots the unread set (`O(n_tags)`, no allocation).
    pub fn reset(&mut self, unread: &TagSet) {
        self.inc.reset(unread);
    }
}

/// [`exact_mwfs_budgeted`] against a caller-owned [`MwfsScratch`] — the
/// unread set is the one snapshotted in the scratch. Bit-identical to the
/// allocating form; the scratch is returned clean (empty active set) for
/// the next call.
pub fn exact_mwfs_in(
    scratch: &mut MwfsScratch<'_>,
    graph: &Csr,
    candidates: &[ReaderId],
    base: &[ReaderId],
    node_budget: u64,
) -> (Vec<ReaderId>, bool) {
    debug_assert!(graph.is_independent_set(base), "base must be feasible");
    let inc = &mut scratch.inc;
    debug_assert!(inc.active().is_empty(), "scratch passed in dirty");

    // Keep only candidates independent of every base reader, with their
    // singleton weights; order by descending singleton weight (ties by id)
    // so strong sets are found early and the bound bites.
    let mut cands: Vec<(ReaderId, usize)> = candidates
        .iter()
        .copied()
        .filter(|&v| base.iter().all(|&b| b != v && !graph.has_edge(b, v)))
        .map(|v| (v, inc.singleton_weight(v)))
        .collect();
    cands.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    cands.dedup_by_key(|c| c.0);

    // Suffix singleton-mass for the sub-additive upper bound.
    let mut suffix: Vec<usize> = vec![0; cands.len() + 1];
    for i in (0..cands.len()).rev() {
        suffix[i] = suffix[i + 1] + cands[i].1;
    }

    for &b in base {
        inc.add(b);
    }
    let base_weight = inc.weight();

    struct Search<'s, 'a> {
        graph: &'s Csr,
        cands: &'s [(ReaderId, usize)],
        suffix: &'s [usize],
        inc: &'s mut IncrementalWeight<'a>,
        chosen: Vec<ReaderId>,
        best: Vec<ReaderId>,
        best_w: usize,
        nodes: u64,
        budget: u64,
        complete: bool,
    }

    impl Search<'_, '_> {
        fn go(&mut self, idx: usize) {
            self.nodes += 1;
            if self.nodes > self.budget {
                self.complete = false;
                return;
            }
            let w = self.inc.weight();
            if w > self.best_w {
                self.best_w = w;
                self.best = self.chosen.clone();
            }
            if idx >= self.cands.len() || w + self.suffix[idx] <= self.best_w {
                return;
            }
            let (v, _) = self.cands[idx];
            // Include v if independent from everything chosen so far.
            let ok = self.chosen.iter().all(|&u| !self.graph.has_edge(u, v));
            if ok {
                self.inc.add(v);
                self.chosen.push(v);
                self.go(idx + 1);
                self.chosen.pop();
                self.inc.remove(v);
            }
            // Exclude v.
            self.go(idx + 1);
        }
    }

    let mut search = Search {
        graph,
        cands: &cands,
        suffix: &suffix,
        inc,
        chosen: Vec::new(),
        best: Vec::new(),
        best_w: base_weight,
        nodes: 0,
        budget: node_budget,
        complete: true,
    };
    search.go(0);
    // Leave the scratch clean: `go` unwinds its own additions, the base
    // context is ours to undo.
    for &b in base {
        search.inc.remove(b);
    }
    let mut best = search.best;
    best.sort_unstable();
    (best, search.complete)
}

/// The exact algorithm packaged as a [`OneShotScheduler`] (ground truth for
/// tests and the approximation-ratio ablation; exponential — keep `n`
/// small).
#[derive(Debug, Clone, Default)]
pub struct ExactScheduler {
    /// Optional override of the node budget.
    pub node_budget: Option<u64>,
}

impl OneShotScheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let all: Vec<ReaderId> = (0..input.deployment.n_readers()).collect();
        exact_mwfs_budgeted(
            input.coverage,
            input.graph,
            input.unread,
            &all,
            &[],
            self.node_budget.unwrap_or(DEFAULT_NODE_BUDGET),
        )
        .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::{Coverage, Deployment};

    /// The Figure-2 deployment: exact MWFS must prefer {A, C} over
    /// {A, B, C}.
    fn figure2() -> (Deployment, Coverage, Csr) {
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn figure2_optimum_drops_the_middle_reader() {
        let (d, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        let best = exact_mwfs_restricted(&c, &g, &unread, &[0, 1, 2], &[]);
        assert_eq!(best, vec![0, 2]);
        assert!(d.is_feasible(&best));
    }

    #[test]
    fn base_context_changes_the_optimum() {
        let (_, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        // With B fixed on, adding A and C costs their overlap tags with B:
        // w({A,B,C}) = 3 vs w({B,A}) = 3, w({B,C}) = 3, w({B}) = 3 — all tie;
        // solver may return any subset achieving 3. Just check feasible +
        // weight.
        let best = exact_mwfs_restricted(&c, &g, &unread, &[0, 2], &[1]);
        let mut whole = best.clone();
        whole.push(1);
        let mut w = WeightEvaluator::new(&c);
        assert_eq!(w.weight(&whole, &unread), 3);
    }

    #[test]
    fn adjacent_candidates_to_base_are_dropped() {
        let (_, c, g) = figure2();
        // Make readers adjacent by re-using graph from a tighter deployment:
        // here just verify via API: candidates equal to base are filtered.
        let unread = TagSet::all_unread(5);
        let best = exact_mwfs_restricted(&c, &g, &unread, &[1], &[1]);
        assert!(best.is_empty());
    }

    #[test]
    fn exhaustive_cross_check_small_random() {
        use rfid_model::scenario::{Scenario, ScenarioKind};
        use rfid_model::RadiusModel;
        for seed in 0..5u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 10,
                n_tags: 60,
                region_side: 60.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 12.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let all: Vec<usize> = (0..10).collect();
            let best = exact_mwfs_restricted(&c, &g, &unread, &all, &[]);
            assert!(d.is_feasible(&best), "seed {seed}");
            let mut w = WeightEvaluator::new(&c);
            let best_w = w.weight(&best, &unread);
            // Brute force all 2^10 subsets.
            let mut brute = 0usize;
            for mask in 0u32..(1 << 10) {
                let set: Vec<usize> = (0..10).filter(|&i| mask >> i & 1 == 1).collect();
                if g.is_independent_set(&set) {
                    brute = brute.max(w.weight(&set, &unread));
                }
            }
            assert_eq!(best_w, brute, "seed {seed}");
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (_, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        let (set, complete) = exact_mwfs_budgeted(&c, &g, &unread, &[0, 1, 2], &[], 2);
        assert!(!complete);
        // Anytime: whatever came back is feasible.
        assert!(g.is_independent_set(&set));
    }

    #[test]
    fn empty_candidates_yield_empty_set() {
        let (_, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        assert!(exact_mwfs_restricted(&c, &g, &unread, &[], &[]).is_empty());
    }

    #[test]
    fn scheduler_wrapper_runs() {
        let (d, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = ExactScheduler::default();
        let set = s.schedule(&input);
        assert_eq!(set, vec![0, 2]);
        assert_eq!(input.weight_of(&set), 4);
    }

    use rfid_model::WeightEvaluator;
}
