//! Exact maximum weighted feasible scheduling set by branch and bound.
//!
//! The weight `w(X)` is sub-additive, not additive, so this is *not* plain
//! maximum-weight independent set. The solver branches include/exclude over
//! candidates sorted by singleton weight and prunes with the sub-additivity
//! bound `w(X ∪ Y) ≤ w(X) + Σ_{v∈Y} w({v})`: once the current weight plus
//! the remaining singleton mass cannot beat the incumbent, the branch dies.
//!
//! Exponential in the worst case — it is the paper's implicit "enumeration"
//! primitive: Algorithm 2/3 call it on small `r`-hop neighbourhoods, the
//! PTAS calls it inside grid squares, tests call it for ground truth on
//! instances up to a few dozen readers.

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, EvalScratch, IncrementalCore, ReaderId, TagSet};

/// Budget on branch-and-bound node expansions. When exceeded the search
/// returns the best set found so far (anytime behaviour) — on the paper's
/// instance sizes the budget is never reached.
pub const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

/// Best `X ⊆ candidates` such that `X ∪ base` is feasible, maximising
/// `w(X ∪ base)`.
///
/// * `graph` must be the interference graph of the deployment behind
///   `coverage`; feasibility is checked through it.
/// * `base` is a feasible context set (disjoint from `candidates`); its
///   members are fixed "on" and participate in RRc weight interactions.
///   Pass `&[]` for a plain MWFS.
///
/// Returns the chosen subset of `candidates` only (not including `base`),
/// sorted ascending.
pub fn exact_mwfs_restricted(
    coverage: &Coverage,
    graph: &Csr,
    unread: &TagSet,
    candidates: &[ReaderId],
    base: &[ReaderId],
) -> Vec<ReaderId> {
    exact_mwfs_budgeted(
        coverage,
        graph,
        unread,
        candidates,
        base,
        DEFAULT_NODE_BUDGET,
    )
    .0
}

/// As [`exact_mwfs_restricted`], also reporting whether the search completed
/// within the node budget (`true`) or returned an anytime best (`false`).
pub fn exact_mwfs_budgeted(
    coverage: &Coverage,
    graph: &Csr,
    unread: &TagSet,
    candidates: &[ReaderId],
    base: &[ReaderId],
    node_budget: u64,
) -> (Vec<ReaderId>, bool) {
    let mut scratch = MwfsScratch::new(coverage, unread);
    exact_mwfs_in(&mut scratch, coverage, graph, candidates, base, node_budget)
}

/// Reusable solver state: the weight structures cost `O(n_tags)` to
/// build, which dominated [`exact_mwfs_budgeted`] when Algorithm 2 calls
/// it once per hop ball (a few dozen candidates each). Callers running
/// many restricted searches against the *same* unread set construct one
/// scratch per slot and pass it to [`exact_mwfs_in`];
/// [`reset`](Self::reset) re-snapshots it for the next slot.
///
/// Besides the weight cores the scratch also owns the search's working
/// vectors (candidate list, suffix bounds, chosen/best stacks), so a warm
/// restricted search performs no heap allocation at all — Algorithm 2
/// runs one per seed, about a million times at n = 100k.
///
/// The scratch borrows nothing, so long-lived schedulers keep one across
/// covering-schedule slots (inside a [`crate::arena::SlotArena`]): a warm
/// reset is a packed-word memcpy plus a stamp bump, never an allocation.
#[derive(Debug, Clone, Default)]
pub struct MwfsScratch {
    pub(crate) weights: EvalScratch,
    inc: IncrementalCore,
    cands: Vec<(ReaderId, usize)>,
    suffix: Vec<usize>,
    chosen: Vec<ReaderId>,
    best: Vec<ReaderId>,
    /// Local-evaluator arena (see [`LocalEval`]): the candidates' unread
    /// tags, dedup'd and sorted ascending — the dense index space the
    /// search counts over.
    local_union: Vec<u32>,
    /// Flat per-candidate lists of indexes into `local_union`.
    local_lists: Vec<u32>,
    /// Candidate `i`'s list is `local_lists[local_offsets[i]..local_offsets[i+1]]`.
    local_offsets: Vec<u32>,
    /// Coverage multiplicity per union tag for the currently-chosen set.
    local_counts: Vec<u32>,
    /// Candidate-pair adjacency as bitmasks over candidate indexes:
    /// `local_adj[i] & (1 << j) != 0` iff candidates `i`, `j` interfere.
    local_adj: Vec<u64>,
}

impl MwfsScratch {
    /// Builds the scratch for one (coverage, unread) snapshot.
    pub fn new(coverage: &Coverage, unread: &TagSet) -> Self {
        let mut s = MwfsScratch::default();
        s.reset(coverage, unread);
        s
    }

    /// Re-snapshots the unread set; allocation-free once warm.
    pub fn reset(&mut self, coverage: &Coverage, unread: &TagSet) {
        self.weights.ensure(coverage.n_tags());
        self.inc.reset(coverage, unread);
    }

    /// Fresh heap allocations since the last call (the `mcs.alloc` feed).
    pub fn take_allocs(&mut self) -> u64 {
        self.inc.take_allocs()
    }
}

/// [`exact_mwfs_budgeted`] against a caller-owned [`MwfsScratch`] — the
/// unread set is the one snapshotted in the scratch, and `coverage` must
/// be the table it was reset against. Bit-identical to the allocating
/// form; the scratch is returned clean (empty active set) for the next
/// call.
pub fn exact_mwfs_in(
    scratch: &mut MwfsScratch,
    coverage: &Coverage,
    graph: &Csr,
    candidates: &[ReaderId],
    base: &[ReaderId],
    node_budget: u64,
) -> (Vec<ReaderId>, bool) {
    let mut out = Vec::new();
    let (_, complete) = exact_mwfs_weighted(
        scratch,
        coverage,
        graph,
        candidates,
        base,
        node_budget,
        None,
        &mut out,
    );
    (out, complete)
}

/// The allocation-free core behind every exact-MWFS entry point: writes
/// the best subset of `candidates` (sorted ascending) into `out` and
/// returns `(w(out ∪ base), completed-within-budget)` — the weight the
/// branch and bound already tracked, so callers comparing weights (the
/// Algorithm 2 growth test) skip a full re-evaluation.
///
/// `singleton`, when given, must satisfy `singleton[v] == w({v})` under
/// the scratch's unread snapshot for every candidate; the search then
/// reads its bound keys from the slice instead of rescanning coverage
/// rows (the covering-schedule driver maintains exactly this array).
///
/// Zero-singleton candidates are dropped before the search. They can
/// never be explored: candidates are ordered by descending singleton
/// weight, so at the first zero-weight index the remaining suffix mass is
/// zero and the sub-additive prune `w + suffix ≤ best_w` (with
/// `best_w ≥ w` after the just-performed incumbent update) always fires.
/// Dropping them only shrinks the sorted prefix work, never the result.
#[allow(clippy::too_many_arguments)] // mirrors exact_mwfs_in plus the two fast-path inputs
pub fn exact_mwfs_weighted(
    scratch: &mut MwfsScratch,
    coverage: &Coverage,
    graph: &Csr,
    candidates: &[ReaderId],
    base: &[ReaderId],
    node_budget: u64,
    singleton: Option<&[usize]>,
    out: &mut Vec<ReaderId>,
) -> (usize, bool) {
    debug_assert!(graph.is_independent_set(base), "base must be feasible");
    let MwfsScratch {
        weights: _,
        inc,
        cands,
        suffix,
        chosen,
        best,
        local_union,
        local_lists,
        local_offsets,
        local_counts,
        local_adj,
    } = scratch;
    debug_assert!(inc.active().is_empty(), "scratch passed in dirty");

    // Keep only candidates independent of every base reader, with their
    // singleton weights; order by descending singleton weight (ties by id)
    // so strong sets are found early and the bound bites. Zero-weight
    // candidates are unreachable (see above) and dropped here.
    cands.clear();
    cands.extend(
        candidates
            .iter()
            .copied()
            .filter(|&v| base.iter().all(|&b| b != v && !graph.has_edge(b, v)))
            .map(|v| {
                let w = match singleton {
                    Some(s) => {
                        debug_assert_eq!(s[v], inc.singleton_weight(coverage, v));
                        s[v]
                    }
                    None => inc.singleton_weight(coverage, v),
                };
                (v, w)
            })
            .filter(|&(_, w)| w > 0),
    );
    cands.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    cands.dedup_by_key(|c| c.0);

    // The overwhelmingly common Algorithm 2 case at scale: one positive
    // candidate, no base context. The search would expand exactly three
    // nodes and pick it; answer directly (budget ≥ 3 keeps the
    // `complete` flag identical to the generic path).
    if base.is_empty() && cands.len() == 1 && node_budget >= 3 {
        let (v, w) = cands[0];
        out.clear();
        out.push(v);
        return (w, true);
    }

    // Suffix singleton-mass for the sub-additive upper bound.
    suffix.clear();
    suffix.resize(cands.len() + 1, 0);
    for i in (0..cands.len()).rev() {
        suffix[i] = suffix[i + 1] + cands[i].1;
    }

    chosen.clear();
    best.clear();
    // Base-free searches — every Algorithm 2/3 hop ball and the one-shot
    // exact scheduler — run against a *local* mirror of the incremental
    // core. Only the candidates' unread tags can ever move the weight, so
    // those tags are remapped once into a dense union index and the
    // branch and bound bumps cache-resident counters per node instead of
    // issuing random accesses into the O(n_tags) count arrays. The total
    // singleton mass `suffix[0]` bounds the flat list length, giving an
    // a-priori size gate that keeps the arena small. The traversal is the
    // same `Search` either way — same prunes, node counts, tie-breaks —
    // and the local weight equals the global one on every visited set
    // (tags outside the union are read or uncovered and contribute 0), so
    // the answer is bit-identical by construction.
    let (best_w, complete) = if base.is_empty() && suffix[0] <= LOCAL_TAGS_MAX {
        // Pairwise interference as bitmasks over candidate indexes: one
        // CSR probe per pair here replaces a probe per chosen member per
        // search node. A candidate set that turns out to be a clique —
        // common for 1-hop balls in dense regions — is answered outright:
        // every pair conflicts, so the optimum is the strongest single
        // candidate, exactly the incumbent the ordered search locks in
        // first and never displaces. The budget gate over-counts the
        // clique search's nodes ((k+1)² bounds its ≤ one-include paths),
        // keeping the `complete` flag identical even under toy budgets.
        let k = cands.len();
        let adj = if k <= 64 {
            local_adj.clear();
            local_adj.resize(k, 0);
            for i in 1..k {
                for j in 0..i {
                    if graph.has_edge(cands[i].0, cands[j].0) {
                        local_adj[i] |= 1 << j;
                        local_adj[j] |= 1 << i;
                    }
                }
            }
            let full = if k == 64 { !0u64 } else { (1u64 << k) - 1 };
            if k >= 2
                && node_budget >= ((k as u64) + 1).pow(2)
                && local_adj
                    .iter()
                    .enumerate()
                    .all(|(i, &m)| m == full ^ (1 << i))
            {
                let (v, w) = cands[0];
                out.clear();
                out.push(v);
                return (w, true);
            }
            true
        } else {
            false
        };
        local_lists.clear();
        local_offsets.clear();
        local_offsets.push(0);
        for &(v, _) in cands.iter() {
            local_lists.extend(
                coverage
                    .tags_of(v)
                    .iter()
                    .copied()
                    .filter(|&t| inc.is_unread(t as usize)),
            );
            local_offsets.push(local_lists.len() as u32);
        }
        // Remap global tag ids to dense union indexes. Each candidate's
        // segment is sorted ascending (coverage rows are), so for the few-
        // candidate searches Algorithm 2 issues by the million, a k-way
        // min-scan merge assigns indexes in one pass — no sort, no
        // dedup, no binary search. Wide candidate sets take the sort
        // path, where O(total log total) beats O(total · k).
        const MERGE_K: usize = 8;
        let union_len = if cands.len() <= MERGE_K {
            let mut cur = [0usize; MERGE_K];
            for (i, c) in cur.iter_mut().enumerate().take(cands.len()) {
                *c = local_offsets[i] as usize;
            }
            let mut next_id = 0u32;
            loop {
                let mut min = u32::MAX;
                for i in 0..cands.len() {
                    if cur[i] < local_offsets[i + 1] as usize {
                        min = min.min(local_lists[cur[i]]);
                    }
                }
                if min == u32::MAX {
                    break;
                }
                for i in 0..cands.len() {
                    let c = cur[i];
                    if c < local_offsets[i + 1] as usize && local_lists[c] == min {
                        local_lists[c] = next_id;
                        cur[i] += 1;
                    }
                }
                next_id += 1;
            }
            next_id as usize
        } else {
            local_union.clear();
            local_union.extend_from_slice(local_lists);
            local_union.sort_unstable();
            local_union.dedup();
            for t in local_lists.iter_mut() {
                *t = local_union
                    .binary_search(t)
                    .expect("tag indexes its own union") as u32;
            }
            local_union.len()
        };
        // The counter arena only grows; entries are zero between calls
        // because every search unwinds its additions on the way out
        // (including budget-exhausted branches — the unwind sits after
        // the recursive call, not inside it).
        if local_counts.len() < union_len {
            local_counts.resize(union_len, 0);
        }
        let mut search = Search {
            graph,
            cands: &cands[..],
            suffix: &suffix[..],
            eval: LocalEval {
                lists: local_lists,
                offsets: local_offsets,
                counts: local_counts,
                w: 0,
            },
            adj: adj.then_some(&local_adj[..]),
            mask: 0,
            chosen: &mut *chosen,
            best: &mut *best,
            best_w: 0,
            nodes: 0,
            budget: node_budget,
            complete: true,
        };
        search.go(0);
        (search.best_w, search.complete)
    } else {
        for &b in base {
            inc.add(coverage, b);
        }
        let base_weight = inc.weight();
        let mut search = Search {
            graph,
            cands: &cands[..],
            suffix: &suffix[..],
            eval: GlobalEval {
                coverage,
                inc: &mut *inc,
            },
            adj: None,
            mask: 0,
            chosen: &mut *chosen,
            best: &mut *best,
            best_w: base_weight,
            nodes: 0,
            budget: node_budget,
            complete: true,
        };
        search.go(0);
        let result = (search.best_w, search.complete);
        // Leave the scratch clean: `go` unwinds its own additions, the
        // base context is ours to undo.
        for &b in base {
            inc.remove(coverage, b);
        }
        result
    };
    out.clear();
    out.extend_from_slice(best);
    out.sort_unstable();
    (best_w, complete)
}

/// Flat-list size cap for the local evaluator. Big enough that every hop
/// ball and every test-scale whole-instance search qualifies; a search
/// over more unread tag mass than this falls back to the global core,
/// whose arrays it would thrash anyway.
const LOCAL_TAGS_MAX: usize = 4096;

/// The branch and bound's view of `w(chosen ∪ base)`: `O(1)` reads plus
/// incremental add/remove of candidate `idx`. Two implementations share
/// the one `Search` below, so both paths take identical decisions at
/// identical nodes — the local mirror cannot drift from the reference.
trait DeltaWeight {
    fn weight(&self) -> usize;
    fn add(&mut self, idx: usize, v: ReaderId);
    fn remove(&mut self, idx: usize, v: ReaderId);
}

/// The reference evaluator: the persistent [`IncrementalCore`] over the
/// full tag space. Handles base contexts (the PTAS grid squares) and
/// arbitrarily heavy candidate sets.
struct GlobalEval<'s> {
    coverage: &'s Coverage,
    inc: &'s mut IncrementalCore,
}

impl DeltaWeight for GlobalEval<'_> {
    #[inline]
    fn weight(&self) -> usize {
        self.inc.weight()
    }
    #[inline]
    fn add(&mut self, _idx: usize, v: ReaderId) {
        self.inc.add(self.coverage, v);
    }
    #[inline]
    fn remove(&mut self, _idx: usize, v: ReaderId) {
        self.inc.remove(self.coverage, v);
    }
}

/// The scaled-down mirror for base-free searches: candidate `idx`'s
/// unread tags as indexes into a dense union array, with coverage
/// multiplicities in `counts`. `w` tracks the exactly-once unread count
/// under the same bump rules as the global core; every union tag is
/// unread by construction, so no membership test is needed per bump.
struct LocalEval<'s> {
    lists: &'s [u32],
    offsets: &'s [u32],
    counts: &'s mut [u32],
    w: usize,
}

impl LocalEval<'_> {
    #[inline]
    fn list(&self, idx: usize) -> std::ops::Range<usize> {
        self.offsets[idx] as usize..self.offsets[idx + 1] as usize
    }
}

impl DeltaWeight for LocalEval<'_> {
    #[inline]
    fn weight(&self) -> usize {
        self.w
    }
    #[inline]
    fn add(&mut self, idx: usize, _v: ReaderId) {
        for i in self.list(idx) {
            let c = &mut self.counts[self.lists[i] as usize];
            *c += 1;
            match *c {
                1 => self.w += 1,
                2 => self.w -= 1,
                _ => {}
            }
        }
    }
    #[inline]
    fn remove(&mut self, idx: usize, _v: ReaderId) {
        for i in self.list(idx) {
            let c = &mut self.counts[self.lists[i] as usize];
            *c -= 1;
            match *c {
                0 => self.w -= 1,
                1 => self.w += 1,
                _ => {}
            }
        }
    }
}

struct Search<'s, E> {
    graph: &'s Csr,
    cands: &'s [(ReaderId, usize)],
    suffix: &'s [usize],
    eval: E,
    /// Precomputed candidate-pair adjacency (≤ 64 candidates), with the
    /// chosen set mirrored in `mask`: feasibility of an include becomes
    /// one AND instead of a CSR probe per chosen member. `None` falls
    /// back to probing the graph.
    adj: Option<&'s [u64]>,
    mask: u64,
    chosen: &'s mut Vec<ReaderId>,
    best: &'s mut Vec<ReaderId>,
    best_w: usize,
    nodes: u64,
    budget: u64,
    complete: bool,
}

impl<E: DeltaWeight> Search<'_, E> {
    fn go(&mut self, idx: usize) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.complete = false;
            return;
        }
        let w = self.eval.weight();
        if w > self.best_w {
            self.best_w = w;
            self.best.clear();
            self.best.extend_from_slice(self.chosen);
        }
        if idx >= self.cands.len() || w + self.suffix[idx] <= self.best_w {
            return;
        }
        // Second-chance bound when the O(1) suffix test is too loose:
        // candidates conflicting with the chosen set can never be added in
        // this subtree, so their mass doesn't belong in the optimism. Any
        // subtree pruned here has w ≤ bound ≤ best_w throughout, and best
        // only moves on strict improvement — the argmax (and its DFS-order
        // tie-break) is untouched; only visited-node counts shrink.
        if self.mask != 0 {
            if let Some(adj) = self.adj {
                let mut bound = w;
                for (&a, c) in adj[idx..].iter().zip(&self.cands[idx..]) {
                    if a & self.mask == 0 {
                        bound += c.1;
                    }
                }
                if bound <= self.best_w {
                    return;
                }
            }
        }
        let (v, _) = self.cands[idx];
        // Include v if independent from everything chosen so far.
        let ok = match self.adj {
            Some(adj) => adj[idx] & self.mask == 0,
            None => self.chosen.iter().all(|&u| !self.graph.has_edge(u, v)),
        };
        if ok {
            self.eval.add(idx, v);
            self.chosen.push(v);
            if self.adj.is_some() {
                self.mask |= 1 << idx;
            }
            self.go(idx + 1);
            if self.adj.is_some() {
                self.mask &= !(1 << idx);
            }
            self.chosen.pop();
            self.eval.remove(idx, v);
        }
        // Exclude v.
        self.go(idx + 1);
    }
}

/// The exact algorithm packaged as a [`OneShotScheduler`] (ground truth for
/// tests and the approximation-ratio ablation; exponential — keep `n`
/// small).
#[derive(Debug, Clone, Default)]
pub struct ExactScheduler {
    /// Optional override of the node budget.
    pub node_budget: Option<u64>,
}

impl OneShotScheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let all: Vec<ReaderId> = (0..input.deployment.n_readers()).collect();
        exact_mwfs_budgeted(
            input.coverage,
            input.graph,
            input.unread,
            &all,
            &[],
            self.node_budget.unwrap_or(DEFAULT_NODE_BUDGET),
        )
        .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::{Coverage, Deployment};

    /// The Figure-2 deployment: exact MWFS must prefer {A, C} over
    /// {A, B, C}.
    fn figure2() -> (Deployment, Coverage, Csr) {
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn figure2_optimum_drops_the_middle_reader() {
        let (d, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        let best = exact_mwfs_restricted(&c, &g, &unread, &[0, 1, 2], &[]);
        assert_eq!(best, vec![0, 2]);
        assert!(d.is_feasible(&best));
    }

    #[test]
    fn base_context_changes_the_optimum() {
        let (_, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        // With B fixed on, adding A and C costs their overlap tags with B:
        // w({A,B,C}) = 3 vs w({B,A}) = 3, w({B,C}) = 3, w({B}) = 3 — all tie;
        // solver may return any subset achieving 3. Just check feasible +
        // weight.
        let best = exact_mwfs_restricted(&c, &g, &unread, &[0, 2], &[1]);
        let mut whole = best.clone();
        whole.push(1);
        let mut w = WeightEvaluator::new(&c);
        assert_eq!(w.weight(&whole, &unread), 3);
    }

    #[test]
    fn adjacent_candidates_to_base_are_dropped() {
        let (_, c, g) = figure2();
        // Make readers adjacent by re-using graph from a tighter deployment:
        // here just verify via API: candidates equal to base are filtered.
        let unread = TagSet::all_unread(5);
        let best = exact_mwfs_restricted(&c, &g, &unread, &[1], &[1]);
        assert!(best.is_empty());
    }

    #[test]
    fn exhaustive_cross_check_small_random() {
        use rfid_model::scenario::{Scenario, ScenarioKind};
        use rfid_model::RadiusModel;
        for seed in 0..5u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 10,
                n_tags: 60,
                region_side: 60.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 12.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let all: Vec<usize> = (0..10).collect();
            let best = exact_mwfs_restricted(&c, &g, &unread, &all, &[]);
            assert!(d.is_feasible(&best), "seed {seed}");
            let mut w = WeightEvaluator::new(&c);
            let best_w = w.weight(&best, &unread);
            // Brute force all 2^10 subsets.
            let mut brute = 0usize;
            for mask in 0u32..(1 << 10) {
                let set: Vec<usize> = (0..10).filter(|&i| mask >> i & 1 == 1).collect();
                if g.is_independent_set(&set) {
                    brute = brute.max(w.weight(&set, &unread));
                }
            }
            assert_eq!(best_w, brute, "seed {seed}");
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (_, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        let (set, complete) = exact_mwfs_budgeted(&c, &g, &unread, &[0, 1, 2], &[], 2);
        assert!(!complete);
        // Anytime: whatever came back is feasible.
        assert!(g.is_independent_set(&set));
    }

    #[test]
    fn empty_candidates_yield_empty_set() {
        let (_, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        assert!(exact_mwfs_restricted(&c, &g, &unread, &[], &[]).is_empty());
    }

    #[test]
    fn scheduler_wrapper_runs() {
        let (d, c, g) = figure2();
        let unread = TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = ExactScheduler::default();
        let set = s.schedule(&input);
        assert_eq!(set, vec![0, 2]);
        assert_eq!(input.weight_of(&set), 4);
    }

    use rfid_model::WeightEvaluator;
}
