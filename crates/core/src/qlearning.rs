//! Q-learning slot allocation — the HiQ-style comparator from the paper's
//! related work (Section VII, ref \[14\]).
//!
//! "For a given network of readers and communication pattern, \[14\]
//! proposes a Q-learning process that yields an optimized resource
//! (channel and time slot) allocation scheme after a training period. …
//! They assume a fixed number of time slots, and aim at maximizing the
//! frequency and time utilization ratio. This work does not provide any
//! performance guarantee."
//!
//! We implement the flat (single-server) variant over time slots: every
//! reader keeps a Q-value per slot, trains with ε-greedy episodes where
//! the reward is its exclusively-covered unread tag count (negative on a
//! collision with a same-slot neighbour), and finally commits to its best
//! slot. For the one-shot comparison the scheduler returns the
//! highest-weight slot class, repaired to feasibility by dropping the
//! lighter endpoint of any residual interference edge (training usually
//! leaves none).

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_model::{ReaderId, WeightEvaluator};

/// HiQ-style Q-learning scheduler (extra baseline; no guarantee).
#[derive(Debug, Clone)]
pub struct QLearningScheduler {
    /// Number of time slots readers learn to spread across.
    pub slots: usize,
    /// Training episodes.
    pub episodes: usize,
    /// Exploration rate (ε-greedy).
    pub epsilon: f64,
    /// Learning rate.
    pub alpha: f64,
    rng: StdRng,
}

impl QLearningScheduler {
    /// Default HiQ-ish hyper-parameters with a seeded RNG.
    pub fn seeded(seed: u64) -> Self {
        QLearningScheduler {
            slots: 8,
            episodes: 300,
            epsilon: 0.15,
            alpha: 0.3,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs the training and returns each reader's learned slot.
    pub fn train(&mut self, input: &OneShotInput<'_>) -> Vec<usize> {
        assert!(self.slots >= 1 && self.episodes >= 1);
        assert!((0.0..=1.0).contains(&self.epsilon) && self.alpha > 0.0 && self.alpha <= 1.0);
        let n = input.deployment.n_readers();
        let mut weights = WeightEvaluator::new(input.coverage);
        let singleton = weights.all_singleton_weights(input.unread);
        let norm = singleton.iter().copied().max().unwrap_or(1).max(1) as f64;
        let mut q = vec![vec![0.0f64; self.slots]; n];
        let mut choice = vec![0usize; n];
        for _ in 0..self.episodes {
            // ε-greedy slot choice per reader.
            for v in 0..n {
                choice[v] = if self.rng.random::<f64>() < self.epsilon {
                    self.rng.random_range(0..self.slots)
                } else {
                    // argmax with deterministic tie-break
                    let mut best = 0usize;
                    for s in 1..self.slots {
                        if q[v][s] > q[v][best] {
                            best = s;
                        }
                    }
                    best
                };
            }
            // Rewards: collision with a same-slot neighbour → −1; otherwise
            // the reader's normalised exclusive coverage in its slot.
            for v in 0..n {
                let s = choice[v];
                let jammed = input
                    .graph
                    .neighbors(v)
                    .iter()
                    .any(|&t| choice[t as usize] == s);
                let reward = if jammed {
                    -1.0
                } else {
                    // exclusive = covered unread tags not covered by another
                    // active same-slot reader; same-slot non-neighbours can
                    // still steal overlap tags.
                    let mut exclusive = 0usize;
                    for &t in input.coverage.tags_of(v) {
                        let t = t as usize;
                        if !input.unread.is_unread(t) {
                            continue;
                        }
                        let stolen = input
                            .coverage
                            .readers_of(t)
                            .iter()
                            .any(|&u| u as usize != v && choice[u as usize] == s);
                        if !stolen {
                            exclusive += 1;
                        }
                    }
                    exclusive as f64 / norm
                };
                q[v][s] += self.alpha * (reward - q[v][s]);
            }
        }
        (0..n)
            .map(|v| {
                let mut best = 0usize;
                for s in 1..self.slots {
                    if q[v][s] > q[v][best] {
                        best = s;
                    }
                }
                best
            })
            .collect()
    }
}

impl OneShotScheduler for QLearningScheduler {
    fn name(&self) -> &'static str {
        "qlearning-hiq"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let n = input.deployment.n_readers();
        if n == 0 {
            return Vec::new();
        }
        let slot_of = self.train(input);
        let mut weights = WeightEvaluator::new(input.coverage);
        let singleton = weights.all_singleton_weights(input.unread);
        // Best slot class by weight, then repair feasibility.
        let mut best: Vec<ReaderId> = Vec::new();
        let mut best_w = 0usize;
        for s in 0..self.slots {
            let mut class: Vec<ReaderId> = (0..n)
                .filter(|&v| slot_of[v] == s && singleton[v] > 0)
                .collect();
            // Repair: while an interference edge remains inside the class,
            // drop the endpoint with the smaller singleton weight.
            loop {
                let mut worst: Option<ReaderId> = None;
                'scan: for (i, &a) in class.iter().enumerate() {
                    for &b in &class[i + 1..] {
                        if input.graph.has_edge(a, b) {
                            worst = Some(if singleton[a] <= singleton[b] { a } else { b });
                            break 'scan;
                        }
                    }
                }
                match worst {
                    Some(v) => class.retain(|&x| x != v),
                    None => break,
                }
            }
            let w = weights.weight(&class, input.unread);
            if w > best_w {
                best_w = w;
                best = class;
            }
        }
        best.sort_unstable();
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel, TagSet};

    fn setup(n: usize, seed: u64) -> (rfid_model::Deployment, Coverage, rfid_graph::Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: n,
            n_tags: 200,
            region_side: 80.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn output_is_feasible() {
        for seed in 0..4 {
            let (d, c, g) = setup(25, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let set = QLearningScheduler::seeded(seed).schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}");
        }
    }

    #[test]
    fn training_separates_neighbours() {
        // After training on a dense graph, same-slot neighbour pairs should
        // be rare — the −1 reward actively pushes them apart.
        let (d, c, g) = setup(25, 1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = QLearningScheduler::seeded(1);
        let slot_of = s.train(&input);
        let conflicts = g
            .edges()
            .iter()
            .filter(|&&(a, b)| slot_of[a] == slot_of[b])
            .count();
        assert!(
            conflicts * 4 <= g.m().max(1),
            "{conflicts}/{} edges still conflicting after training",
            g.m()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (d, c, g) = setup(20, 3);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let a = QLearningScheduler::seeded(5).schedule(&input);
        let b = QLearningScheduler::seeded(5).schedule(&input);
        assert_eq!(a, b);
    }

    #[test]
    fn weaker_than_the_guaranteed_algorithms() {
        // The paper's point about [14]: no performance guarantee. Compare
        // against Algorithm 2 on a handful of instances — Q-learning may
        // win occasionally but must not dominate.
        let mut ql_total = 0usize;
        let mut alg2_total = 0usize;
        for seed in 0..5 {
            let (d, c, g) = setup(30, seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            ql_total += input.weight_of(&QLearningScheduler::seeded(seed).schedule(&input));
            alg2_total +=
                input.weight_of(&crate::local_greedy::LocalGreedy::default().schedule(&input));
        }
        assert!(
            alg2_total >= ql_total,
            "Algorithm 2 ({alg2_total}) should beat Q-learning ({ql_total}) in aggregate"
        );
    }

    #[test]
    fn empty_deployment() {
        let d = rfid_model::Deployment::new(
            rfid_geometry::Rect::square(1.0),
            vec![],
            vec![],
            vec![],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(QLearningScheduler::seeded(0).schedule(&input).is_empty());
    }
}
