//! Name→scheduler registry and the stateless [`Scheduler`] facade.
//!
//! Before this module, three places kept their own algorithm tables: the
//! cli's `parse_algorithm` match, the sweep harness's factory calls and
//! the cross-validation tests' lineup loops. The registry is now the one
//! table mapping canonical labels (and their cli aliases) to
//! [`AlgorithmKind`]s and factory calls; [`make_scheduler`] remains the
//! low-level constructor behind it.

use crate::scheduler::{make_scheduler, AlgorithmKind, OneShotInput, OneShotScheduler};
use rfid_model::ReaderId;

/// A feasible scheduling set returned by [`Scheduler::one_shot`]: pairwise
/// independent readers, in the order the algorithm produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeasibleSet {
    readers: Vec<ReaderId>,
}

impl FeasibleSet {
    /// The activated readers.
    pub fn readers(&self) -> &[ReaderId] {
        &self.readers
    }

    /// Consumes the set into its reader vector.
    pub fn into_vec(self) -> Vec<ReaderId> {
        self.readers
    }

    /// Number of activated readers.
    pub fn len(&self) -> usize {
        self.readers.len()
    }

    /// `true` when no reader is activated.
    pub fn is_empty(&self) -> bool {
        self.readers.is_empty()
    }
}

impl From<Vec<ReaderId>> for FeasibleSet {
    fn from(readers: Vec<ReaderId>) -> Self {
        FeasibleSet { readers }
    }
}

impl AsRef<[ReaderId]> for FeasibleSet {
    fn as_ref(&self) -> &[ReaderId] {
        &self.readers
    }
}

/// The stateless one-shot scheduling facade: a fresh run per call, no
/// mutable borrow needed.
///
/// Blanket-implemented for every [`OneShotScheduler`] that is `Clone`
/// (all six built-ins), by running a clone — so harnesses can hold one
/// configured instance and schedule from shared references, while the
/// mutable [`OneShotScheduler`] remains the trait algorithms implement.
pub trait Scheduler {
    /// Stable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Computes an (approximate) maximum weighted feasible scheduling
    /// set for one time slot.
    fn one_shot(&self, input: &OneShotInput<'_>) -> FeasibleSet;
}

impl<T: OneShotScheduler + Clone> Scheduler for T {
    fn name(&self) -> &'static str {
        OneShotScheduler::name(self)
    }

    fn one_shot(&self, input: &OneShotInput<'_>) -> FeasibleSet {
        self.clone().schedule(input).into()
    }
}

/// One registry row: the canonical label, its cli aliases and a short
/// description.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerEntry {
    /// The algorithm this row names.
    pub kind: AlgorithmKind,
    /// Canonical label — identical to [`AlgorithmKind::label`].
    pub label: &'static str,
    /// Accepted aliases (cli spellings).
    pub aliases: &'static [&'static str],
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
}

static ENTRIES: [SchedulerEntry; 6] = [
    SchedulerEntry {
        kind: AlgorithmKind::Ptas,
        label: "alg1-ptas",
        aliases: &["alg1", "ptas"],
        summary: "Algorithm 1 — shifting-strips PTAS (needs locations)",
    },
    SchedulerEntry {
        kind: AlgorithmKind::LocalGreedy,
        label: "alg2-central",
        aliases: &["alg2", "central"],
        summary: "Algorithm 2 — centralized local greedy",
    },
    SchedulerEntry {
        kind: AlgorithmKind::Distributed,
        label: "alg3-distributed",
        aliases: &["alg3", "distributed"],
        summary: "Algorithm 3 — distributed via message passing",
    },
    SchedulerEntry {
        kind: AlgorithmKind::Colorwave,
        label: "ca-colorwave",
        aliases: &["ca", "colorwave"],
        summary: "Colorwave baseline (graph coloring)",
    },
    SchedulerEntry {
        kind: AlgorithmKind::HillClimbing,
        label: "ghc",
        aliases: &["hill-climbing"],
        summary: "Greedy hill-climbing baseline",
    },
    SchedulerEntry {
        kind: AlgorithmKind::Exact,
        label: "exact",
        aliases: &["branch-and-bound"],
        summary: "Exact branch-and-bound (small instances only)",
    },
];

/// The single name↔algorithm table shared by cli, harnesses and tests.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerRegistry {
    entries: &'static [SchedulerEntry],
}

impl SchedulerRegistry {
    /// The built-in registry covering every [`AlgorithmKind`].
    pub fn global() -> Self {
        SchedulerRegistry { entries: &ENTRIES }
    }

    /// All rows, in paper lineup order followed by `exact`.
    pub fn entries(&self) -> &'static [SchedulerEntry] {
        self.entries
    }

    /// The registry row for `kind`.
    pub fn entry(&self, kind: AlgorithmKind) -> &'static SchedulerEntry {
        self.entries
            .iter()
            .find(|e| e.kind == kind)
            .expect("every AlgorithmKind has a registry row")
    }

    /// Case-insensitive lookup by canonical label or alias.
    pub fn resolve(&self, name: &str) -> Option<AlgorithmKind> {
        let needle = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|e| e.label == needle || e.aliases.contains(&needle.as_str()))
            .map(|e| e.kind)
    }

    /// Like [`resolve`](Self::resolve) but with an error message listing
    /// every accepted spelling.
    pub fn parse(&self, name: &str) -> Result<AlgorithmKind, String> {
        self.resolve(name).ok_or_else(|| {
            let known: Vec<&str> = self
                .entries
                .iter()
                .flat_map(|e| std::iter::once(e.label).chain(e.aliases.iter().copied()))
                .collect();
            format!("unknown algorithm {name:?}; known: {}", known.join(", "))
        })
    }

    /// Instantiates the named scheduler (label or alias) with its default
    /// parameters; `seed` feeds the randomised algorithms.
    pub fn build(&self, name: &str, seed: u64) -> Result<Box<dyn OneShotScheduler>, String> {
        self.parse(name).map(|kind| make_scheduler(kind, seed))
    }

    /// Instantiates a scheduler for an already-resolved kind.
    pub fn instantiate(&self, kind: AlgorithmKind, seed: u64) -> Box<dyn OneShotScheduler> {
        make_scheduler(kind, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::{Coverage, Scenario, TagSet};

    #[test]
    fn labels_match_algorithm_kind() {
        for e in SchedulerRegistry::global().entries() {
            assert_eq!(e.label, e.kind.label());
        }
    }

    #[test]
    fn every_kind_has_exactly_one_row() {
        let reg = SchedulerRegistry::global();
        for kind in AlgorithmKind::paper_lineup()
            .into_iter()
            .chain(std::iter::once(AlgorithmKind::Exact))
        {
            assert_eq!(reg.entry(kind).kind, kind);
        }
        assert_eq!(reg.entries().len(), 6);
    }

    #[test]
    fn aliases_resolve_case_insensitively() {
        let reg = SchedulerRegistry::global();
        assert_eq!(reg.resolve("ALG2"), Some(AlgorithmKind::LocalGreedy));
        assert_eq!(reg.resolve("ghc"), Some(AlgorithmKind::HillClimbing));
        assert_eq!(reg.resolve("Colorwave"), Some(AlgorithmKind::Colorwave));
        assert!(reg.resolve("nope").is_none());
        let err = reg.parse("nope").unwrap_err();
        assert!(err.contains("alg2-central"), "{err}");
    }

    #[test]
    fn build_errors_are_structured_not_panics() {
        let reg = SchedulerRegistry::global();
        let err = reg
            .build("definitely-not-an-algorithm", 0)
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
        // The error must teach: every accepted spelling is listed.
        for e in reg.entries() {
            assert!(
                err.contains(e.label),
                "error omits label {}: {err}",
                e.label
            );
            for a in e.aliases {
                assert!(err.contains(a), "error omits alias {a}: {err}");
            }
        }
        assert!(reg.parse("").is_err());
        assert!(reg.parse(" alg2").is_err(), "no whitespace trimming");
    }

    #[test]
    fn every_spelling_builds_a_scheduler() {
        let reg = SchedulerRegistry::global();
        for e in reg.entries() {
            let built = reg.build(e.label, 7).expect(e.label).name();
            for a in e.aliases {
                assert_eq!(reg.build(a, 7).expect(a).name(), built, "{a}");
            }
        }
    }

    #[test]
    fn no_label_or_alias_collides() {
        let mut names: Vec<&str> = SchedulerRegistry::global()
            .entries()
            .iter()
            .flat_map(|e| std::iter::once(e.label).chain(e.aliases.iter().copied()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry spelling");
    }

    #[test]
    fn stateless_facade_matches_the_mutable_trait() {
        fn check<S: OneShotScheduler + Clone>(s: S, input: &OneShotInput<'_>) {
            let stateless = Scheduler::one_shot(&s, input).into_vec();
            let mut owned = s;
            assert_eq!(stateless, owned.schedule(input), "{}", owned.name());
        }
        let d = Scenario::paper_evaluation(14.0, 6.0).generate(11);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::builder(&d, &c, &g).unread(&unread).build();
        check(crate::ptas::PtasScheduler::default(), &input);
        check(crate::local_greedy::LocalGreedy::default(), &input);
        check(crate::hill_climbing::HillClimbing::default(), &input);
        check(crate::colorwave::Colorwave::seeded(7), &input);
    }
}
