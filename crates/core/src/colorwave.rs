//! Colorwave baseline (CA) — Waldrop, Engels, Sarma, WCNC 2003 (paper ref
//! \[21\]).
//!
//! Colorwave's Distributed Color Selection (DCS) colours the interference
//! graph by repeated randomised conflict resolution: every reader holds a
//! colour (time slot id) in `[0, max_colors)`; when two neighbours share a
//! colour, one of them "kicks" — re-draws a fresh random colour — and the
//! process repeats until the colouring is proper (or a round budget runs
//! out, after which deterministic first-fit repairs the leftovers so the
//! output is always a valid schedule).
//!
//! For the one-shot comparison we give the baseline its best case: the
//! returned activation is the colour class with the largest Definition-3
//! weight. (Each colour class of a proper colouring is an independent set
//! of the interference graph, hence a feasible scheduling set.)

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_graph::Csr;
use rfid_model::{ReaderId, WeightEvaluator};
use rfid_obs::{counter, span, Subscriber};

/// The Colorwave (CA) baseline scheduler.
#[derive(Debug, Clone)]
pub struct Colorwave {
    /// Colour-space size; `None` = max degree + 1 (always sufficient).
    pub max_colors: Option<usize>,
    /// Rounds of randomised conflict resolution before deterministic
    /// repair.
    pub max_rounds: usize,
    rng: StdRng,
}

impl Colorwave {
    /// Creates the baseline with a seeded RNG (reproducible runs).
    pub fn seeded(seed: u64) -> Self {
        Colorwave {
            max_colors: None,
            max_rounds: 200,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// WCNC'03 VDCS (Variable-DCS): start from a small colour space and
    /// let the conflict rate steer its size — grow it when more than
    /// `up_threshold` of readers kicked this round, shrink it when fewer
    /// than `down_threshold` did. Returns `(coloring, final_color_count)`;
    /// the colouring is always proper (deterministic repair as in DCS).
    pub fn color_vdcs(
        &mut self,
        graph: &Csr,
        up_threshold: f64,
        down_threshold: f64,
    ) -> (Vec<usize>, usize) {
        assert!(
            0.0 <= down_threshold && down_threshold < up_threshold && up_threshold <= 1.0,
            "need 0 ≤ down < up ≤ 1"
        );
        let n = graph.n();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let mut colors = 2usize;
        let cap = graph.max_degree() + 1;
        let mut color: Vec<usize> = (0..n).map(|_| self.rng.random_range(0..colors)).collect();
        for _ in 0..self.max_rounds {
            let mut kicked = vec![false; n];
            let mut any = false;
            for (a, b) in graph.edges() {
                if color[a] == color[b] {
                    any = true;
                    kicked[a.min(b)] = true;
                }
            }
            if !any {
                return (color, colors);
            }
            let kick_rate = kicked.iter().filter(|&&k| k).count() as f64 / n as f64;
            if kick_rate > up_threshold && colors < cap {
                colors += 1;
            } else if kick_rate < down_threshold && colors > 2 {
                colors -= 1;
                // colours may now be out of range; redraw the overflowers
                for c in color.iter_mut() {
                    if *c >= colors {
                        *c = self.rng.random_range(0..colors);
                    }
                }
            }
            for v in 0..n {
                if kicked[v] {
                    color[v] = self.rng.random_range(0..colors);
                }
            }
        }
        // Deterministic repair (may exceed `colors`).
        for v in 0..n {
            let clash = graph
                .neighbors(v)
                .iter()
                .any(|&t| color[t as usize] == color[v]);
            if clash {
                let used: std::collections::BTreeSet<usize> = graph
                    .neighbors(v)
                    .iter()
                    .map(|&t| color[t as usize])
                    .collect();
                color[v] = (0..)
                    .find(|c| !used.contains(c))
                    .expect("some colour is free");
            }
        }
        let used = color.iter().copied().max().unwrap_or(0) + 1;
        (color, used)
    }

    /// Runs DCS and returns a proper colouring of `graph`.
    pub fn color(&mut self, graph: &Csr) -> Vec<usize> {
        self.color_observed(graph, None)
    }

    /// [`color`](Self::color) with round/kick counters reported to `sub`.
    /// The colouring is bit-identical whether or not a subscriber listens.
    pub fn color_observed(&mut self, graph: &Csr, sub: Option<&dyn Subscriber>) -> Vec<usize> {
        let n = graph.n();
        let colors = self.max_colors.unwrap_or(graph.max_degree() + 1).max(1);
        let mut color: Vec<usize> = (0..n).map(|_| self.rng.random_range(0..colors)).collect();
        for _ in 0..self.max_rounds {
            counter!(sub, "colorwave.rounds");
            // Collect conflicted readers; the lower-id endpoint of each
            // conflicted edge kicks (re-draws) — the WCNC paper resolves by
            // "the reader that detects the collision first"; with
            // synchronous rounds we break the symmetry by id.
            let mut kicked = vec![false; n];
            let mut any = false;
            for (a, b) in graph.edges() {
                if color[a] == color[b] {
                    any = true;
                    kicked[a.min(b)] = true;
                }
            }
            if !any {
                return color;
            }
            for v in 0..n {
                if kicked[v] {
                    counter!(sub, "colorwave.kicks");
                    color[v] = self.rng.random_range(0..colors);
                }
            }
        }
        // Round budget exhausted: repair remaining conflicts first-fit so
        // the colouring is proper (may exceed `colors`).
        for v in 0..n {
            let clash = graph
                .neighbors(v)
                .iter()
                .any(|&t| color[t as usize] == color[v]);
            if clash {
                let used: std::collections::BTreeSet<usize> = graph
                    .neighbors(v)
                    .iter()
                    .map(|&t| color[t as usize])
                    .collect();
                color[v] = (0..)
                    .find(|c| !used.contains(c))
                    .expect("some colour is free");
            }
        }
        color
    }
}

impl OneShotScheduler for Colorwave {
    fn name(&self) -> &'static str {
        "ca-colorwave"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let sub = input.subscriber();
        let _span = span!(sub, "colorwave.schedule");
        let n = input.deployment.n_readers();
        if n == 0 {
            return Vec::new();
        }
        let color = self.color_observed(input.graph, sub);
        let num_colors = color.iter().copied().max().unwrap_or(0) + 1;
        counter!(sub, "colorwave.colors", num_colors as u64);
        let mut classes: Vec<Vec<ReaderId>> = vec![Vec::new(); num_colors];
        for v in 0..n {
            classes[color[v]].push(v);
        }
        // Best colour class by weight (generous reading of the baseline).
        // Classes are scored through the `par` facade when the total work
        // justifies the per-chunk evaluator setup; the selection below
        // replicates `max_by_key` exactly (last maximum wins on ties).
        let total_work: usize = classes
            .iter()
            .flatten()
            .map(|&v| input.coverage.tags_of(v).len())
            .sum();
        let scores: Vec<usize> =
            if classes.len() >= 4 && total_work >= 4 * crate::par::MIN_PAR_INDEX_WORK {
                crate::par::map_with(
                    &classes,
                    || WeightEvaluator::new(input.coverage),
                    |weights, class| weights.weight(class, input.unread),
                )
            } else {
                let mut weights = WeightEvaluator::new(input.coverage);
                classes
                    .iter()
                    .map(|class| weights.weight(class, input.unread))
                    .collect()
            };
        let mut best: Option<((usize, std::cmp::Reverse<usize>), usize)> = None;
        for (i, class) in classes.iter().enumerate() {
            let key = (
                scores[i],
                std::cmp::Reverse(class.first().copied().unwrap_or(usize::MAX)),
            );
            if best.as_ref().is_none_or(|&(bk, _)| key >= bk) {
                best = Some((key, i));
            }
        }
        match best {
            Some((_, i)) => std::mem::take(&mut classes[i]),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_graph::is_proper_coloring;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel, TagSet};

    fn scenario(n_readers: usize, seed: u64) -> rfid_model::Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags: 100,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 15.0,
                lambda_interrogation: 7.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn coloring_is_always_proper() {
        for seed in 0..5 {
            let d = scenario(40, seed);
            let g = interference_graph(&d);
            let mut cw = Colorwave::seeded(seed);
            let color = cw.color(&g);
            assert!(is_proper_coloring(&g, &color), "seed {seed}");
        }
    }

    #[test]
    fn tiny_round_budget_still_proper_via_repair() {
        let d = scenario(40, 1);
        let g = interference_graph(&d);
        let mut cw = Colorwave::seeded(1);
        cw.max_rounds = 0; // force deterministic repair path
        let color = cw.color(&g);
        assert!(is_proper_coloring(&g, &color));
    }

    #[test]
    fn vdcs_is_proper_and_often_leaner_than_dcs() {
        let mut leaner = 0;
        for seed in 0..6 {
            let d = scenario(40, seed);
            let g = interference_graph(&d);
            let mut cw = Colorwave::seeded(seed);
            let (coloring, used) = cw.color_vdcs(&g, 0.15, 0.02);
            assert!(is_proper_coloring(&g, &coloring), "seed {seed}");
            assert!(used >= rfid_graph::coloring::num_colors(&coloring).min(used));
            if used < g.max_degree() + 1 {
                leaner += 1;
            }
        }
        assert!(
            leaner >= 3,
            "VDCS should usually need fewer colours than Δ+1 ({leaner}/6)"
        );
    }

    #[test]
    fn vdcs_handles_degenerate_graphs() {
        let empty = rfid_graph::Csr::from_edges(0, &[]);
        let mut cw = Colorwave::seeded(0);
        assert_eq!(cw.color_vdcs(&empty, 0.2, 0.05), (vec![], 0));
        let edgeless = rfid_graph::Csr::from_edges(5, &[]);
        let (coloring, _) = cw.color_vdcs(&edgeless, 0.2, 0.05);
        assert!(is_proper_coloring(&edgeless, &coloring));
    }

    #[test]
    #[should_panic(expected = "need 0 ≤ down < up")]
    fn vdcs_rejects_bad_thresholds() {
        let g = rfid_graph::Csr::from_edges(2, &[(0, 1)]);
        let _ = Colorwave::seeded(0).color_vdcs(&g, 0.1, 0.5);
    }

    #[test]
    fn schedule_is_feasible_and_nonempty() {
        let d = scenario(40, 2);
        let g = interference_graph(&d);
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut cw = Colorwave::seeded(2);
        let set = cw.schedule(&input);
        assert!(!set.is_empty());
        assert!(d.is_feasible(&set));
    }

    #[test]
    fn seeded_runs_reproduce() {
        let d = scenario(30, 3);
        let g = interference_graph(&d);
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let a = Colorwave::seeded(7).schedule(&input);
        let b = Colorwave::seeded(7).schedule(&input);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_schedules_nothing() {
        let d = rfid_model::Deployment::new(
            rfid_geometry::Rect::square(1.0),
            vec![],
            vec![],
            vec![],
            vec![],
        );
        let g = interference_graph(&d);
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(Colorwave::seeded(0).schedule(&input).is_empty());
    }
}
