//! Algorithm 3 — **distributed** scheduling without location information
//! (paper Section V-B), executed on the `rfid-netsim` message-passing
//! substrate.
//!
//! Every reader runs the same state machine over the interference graph:
//!
//! 1. **Gather** (`2c+2` rounds): incremental flooding of node records
//!    (id, neighbour list, covered-unread-tag list) so each reader learns
//!    its `(2c+2)`-hop neighbourhood `N(v)^{2c+2}`.
//! 2. **Election**: a White reader whose `(singleton weight, id)` is
//!    maximal among the non-eliminated readers it knows becomes a
//!    *coordinator* (head). Because any two readers within `2c+2` hops know
//!    each other after gathering, simultaneous heads are always more than
//!    `2c+2` hops apart — their local solutions cannot interfere.
//! 3. **Local MWFS**: the head runs the same ρ-growth as Algorithm 2
//!    (`Γ_0, Γ_1, …` until `w(Γ_{r+1}) < ρ·w(Γ_r)`, capped at `c`) on its
//!    *local* reconstructed subgraph, then floods
//!    `RESULT(Γ_{r̄}, N^{r̄+1})` with TTL `r̄+1+2c+2` — exactly far enough
//!    that every reader whose ball overlaps the removed region hears it.
//! 4. **Colouring**: a reader in `Γ_{r̄}` turns **Red** (activated), a
//!    reader in `N^{r̄+1} ∖ Γ_{r̄}` turns **Black** (suppressed); every
//!    other recipient deletes the eliminated readers from its knowledge and
//!    re-checks the election condition.
//!
//! Theorem 6: the Red set is a feasible scheduling set with
//! `w(X) ≥ w(OPT)/ρ`.

use crate::local_greedy::grow_local_mwfs;
use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, ReaderId, TagSet};
use rfid_netsim::{Envelope, NetStats, Network, Node, Outbox, Payload};
use std::collections::{BTreeMap, BTreeSet};

/// One reader's gossiped self-description.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeRecord {
    id: u32,
    neighbors: Vec<u32>,
    /// Unread tags inside this reader's interrogation region at slot start.
    tags: Vec<u32>,
}

/// Protocol messages.
#[derive(Debug, Clone)]
enum Msg {
    /// Incremental knowledge flooding during the gather phase.
    Info(Vec<NodeRecord>),
    /// A coordinator's announcement.
    Result { head: u32, members: Vec<u32>, removed: Vec<u32>, ttl: u32 },
}

impl Payload for Msg {
    fn size_bytes(&self) -> usize {
        match self {
            Msg::Info(records) => records
                .iter()
                .map(|r| 4 + 4 * r.neighbors.len() + 4 * r.tags.len())
                .sum(),
            Msg::Result { members, removed, .. } => 8 + 4 * members.len() + 4 * removed.len(),
        }
    }
}

/// Reader colour per the paper's Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    White,
    Red,
    Black,
}

/// One observable protocol event, for the execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `node` won the election and announced (members, removed sizes).
    HeadElected {
        /// Electing reader.
        node: u32,
        /// Size of the announced Γ.
        members: usize,
        /// Size of the removed ball.
        removed: usize,
    },
    /// `node` turned Red (activated) because of `head`'s announcement.
    ColoredRed {
        /// Affected reader.
        node: u32,
        /// Announcing coordinator.
        head: u32,
    },
    /// `node` turned Black (suppressed) because of `head`'s announcement.
    ColoredBlack {
        /// Affected reader.
        node: u32,
        /// Announcing coordinator.
        head: u32,
    },
}

/// The per-reader state machine.
struct ReaderAgent {
    id: u32,
    rho: f64,
    c: u32,
    gather_rounds: u64,
    color: Color,
    /// Everything this reader knows: id → record.
    knowledge: BTreeMap<u32, NodeRecord>,
    /// Records to flood next round (first learned last round).
    fresh: Vec<NodeRecord>,
    /// Readers known to be Red/Black somewhere.
    eliminated: BTreeSet<u32>,
    /// Result announcements already forwarded (by head id).
    forwarded: BTreeSet<u32>,
    /// Fault injection: stop participating from this round on.
    crash_at: Option<u64>,
    /// Set once the crash round has been reached.
    crashed: bool,
    /// Observable events with their round, for the execution trace.
    events: Vec<(u64, TraceEvent)>,
}

impl ReaderAgent {
    fn new(record: NodeRecord, rho: f64, c: u32) -> Self {
        let gather_rounds = (2 * c + 2) as u64;
        ReaderAgent {
            id: record.id,
            rho,
            c,
            gather_rounds,
            color: Color::White,
            knowledge: BTreeMap::from([(record.id, record.clone())]),
            fresh: vec![record],
            eliminated: BTreeSet::new(),
            forwarded: BTreeSet::new(),
            crash_at: None,
            crashed: false,
            events: Vec::new(),
        }
    }

    fn singleton_weight(&self, id: u32) -> usize {
        self.knowledge.get(&id).map_or(0, |r| r.tags.len())
    }

    /// The election predicate: strictly maximal `(weight, id)` among known,
    /// non-eliminated readers. Strict total order (ids unique) means two
    /// mutually-known readers can never both win.
    fn is_local_max(&self) -> bool {
        let mine = (self.singleton_weight(self.id), self.id);
        self.knowledge
            .keys()
            .filter(|&&u| u != self.id && !self.eliminated.contains(&u))
            .all(|&u| (self.singleton_weight(u), u) < mine)
    }

    /// Reconstructs the local alive subgraph and runs the ρ-growth on it.
    /// Returns `(Γ_{r̄}, removed ball N^{r̄+1})` in global ids.
    ///
    /// A zero-weight head (no unread tag anywhere in its view — possible
    /// only when every reader it knows is equally empty) activates nobody
    /// but still retires its neighbourhood so the protocol terminates.
    fn compute_local_solution(&self) -> (Vec<u32>, Vec<u32>) {
        // Local relabelling of alive (non-eliminated) known readers.
        let alive_ids: Vec<u32> = self
            .knowledge
            .keys()
            .copied()
            .filter(|u| !self.eliminated.contains(u))
            .collect();
        let local_of: BTreeMap<u32, usize> =
            alive_ids.iter().enumerate().map(|(l, &g)| (g, l)).collect();
        let mut edges = Vec::new();
        let mut tag_local: BTreeMap<u32, usize> = BTreeMap::new();
        for &g in &alive_ids {
            let rec = &self.knowledge[&g];
            for &nb in &rec.neighbors {
                if let Some(&lnb) = local_of.get(&nb) {
                    let l = local_of[&g];
                    if l < lnb {
                        edges.push((l, lnb));
                    }
                }
            }
            for &t in &rec.tags {
                let next = tag_local.len();
                tag_local.entry(t).or_insert(next);
            }
        }
        let graph = Csr::from_edges(alive_ids.len(), &edges);
        let mut tag_readers = vec![Vec::new(); tag_local.len()];
        for &g in &alive_ids {
            for &t in &self.knowledge[&g].tags {
                tag_readers[tag_local[&t]].push(local_of[&g] as u32);
            }
        }
        let coverage = Coverage::from_lists(alive_ids.len(), tag_readers);
        let unread = TagSet::all_unread(tag_local.len());
        let alive = vec![true; alive_ids.len()];
        let me = local_of[&self.id];
        let (gamma, r) =
            grow_local_mwfs(&graph, &coverage, &unread, me, &alive, self.rho, self.c);
        // Removed ball N^{r̄+1}(me) over the alive local graph.
        let removed_local =
            crate::local_greedy::ball_restricted(&graph, me, r + 1, &alive);
        let members: Vec<u32> = if self.singleton_weight(self.id) == 0 {
            Vec::new()
        } else {
            gamma.iter().map(|&l| alive_ids[l]).collect()
        };
        let removed: Vec<u32> = removed_local.iter().map(|&l| alive_ids[l]).collect();
        (members, removed)
    }

    fn apply_result(&mut self, round: u64, head: u32, members: &[u32], removed: &[u32]) {
        for &u in members.iter().chain(removed.iter()) {
            self.eliminated.insert(u);
        }
        if members.contains(&self.id) && self.color == Color::White {
            self.color = Color::Red;
            self.events.push((round, TraceEvent::ColoredRed { node: self.id, head }));
        } else if removed.contains(&self.id) && self.color == Color::White {
            self.color = Color::Black;
            self.events.push((round, TraceEvent::ColoredBlack { node: self.id, head }));
        }
    }

    /// Builds, applies and returns this head's announcement.
    fn announce(&mut self, round: u64) -> Msg {
        let (members, removed) = self.compute_local_solution();
        let r_bar_plus_1 = self.c + 1; // conservative: r̄ ≤ c
        let ttl = r_bar_plus_1 + 2 * self.c + 2;
        self.events.push((
            round,
            TraceEvent::HeadElected {
                node: self.id,
                members: members.len(),
                removed: removed.len(),
            },
        ));
        self.apply_result(round, self.id, &members, &removed);
        debug_assert!(self.color != Color::White, "head must colour itself");
        self.forwarded.insert(self.id);
        Msg::Result { head: self.id, members, removed, ttl }
    }
}

impl Node for ReaderAgent {
    type Msg = Msg;

    fn step(&mut self, round: u64, inbox: &[Envelope<Msg>], out: &mut Outbox<Msg>) {
        // --- Fault injection: a crashed reader is dark — it neither
        // ingests nor relays nor announces.
        if self.crash_at.is_some_and(|at| round >= at) {
            self.crashed = true;
            return;
        }
        // --- Ingest ------------------------------------------------------
        let mut results_to_forward: Vec<Msg> = Vec::new();
        for env in inbox {
            match &env.msg {
                Msg::Info(records) => {
                    for rec in records {
                        if !self.knowledge.contains_key(&rec.id) {
                            self.knowledge.insert(rec.id, rec.clone());
                            self.fresh.push(rec.clone());
                        }
                    }
                }
                Msg::Result { head, members, removed, ttl } => {
                    if self.forwarded.insert(*head) {
                        self.apply_result(round, *head, members, removed);
                        if *ttl > 1 {
                            results_to_forward.push(Msg::Result {
                                head: *head,
                                members: members.clone(),
                                removed: removed.clone(),
                                ttl: ttl - 1,
                            });
                        }
                    }
                }
            }
        }
        // --- Relay results (all colours relay; the radio still works) ----
        for msg in results_to_forward {
            out.broadcast(msg);
        }
        // --- Gather phase: flood fresh records ---------------------------
        if round < self.gather_rounds {
            if !self.fresh.is_empty() {
                let batch = std::mem::take(&mut self.fresh);
                out.broadcast(Msg::Info(batch));
            }
            return;
        }
        self.fresh.clear();
        // --- Election + announcement -------------------------------------
        if self.color == Color::White && self.is_local_max() {
            let msg = self.announce(round);
            out.broadcast(msg);
        }
    }

    fn is_done(&self) -> bool {
        self.color != Color::White || self.crashed
    }
}

/// Algorithm 3 packaged as a [`OneShotScheduler`].
///
/// The simulation statistics of the most recent run (rounds, messages,
/// bytes) are kept in [`last_stats`](Self::last_stats) for the
/// communication-cost ablation.
#[derive(Debug, Clone, Default)]
pub struct DistributedScheduler {
    /// Growth threshold ρ; `None` → 1.1 (matching [`crate::LocalGreedy`]).
    pub rho: Option<f64>,
    /// Growth cap `c`; `None` → 3.
    pub c: Option<u32>,
    /// Unreliable links: `(drop probability, seed)`. Under loss, gathered
    /// knowledge and result floods may be incomplete; the carrier-sense
    /// repair (below) keeps the output feasible while the robustness
    /// ablation measures the weight degradation.
    pub loss: Option<(f64, u64)>,
    /// Fault injection: `(reader, round)` pairs — the reader goes dark
    /// from that round on (crash-stop model).
    pub crashes: Vec<(ReaderId, u64)>,
    /// Bounded asynchrony: `(max extra rounds, seed)` — each message is
    /// delayed by an extra uniform number of rounds. The synchronous
    /// gather phase then sees *incomplete* neighbourhoods, so the
    /// carrier-sense repair may engage; the output stays feasible.
    pub delay: Option<(u64, u64)>,
    /// Stats of the last `schedule` call.
    pub last_stats: Option<NetStats>,
    /// Execution trace of the last `schedule` call: `(round, event)`,
    /// sorted by round then node.
    pub last_trace: Option<Vec<(u64, TraceEvent)>>,
}

impl DistributedScheduler {
    /// Creates a scheduler with explicit parameters.
    pub fn with_params(rho: f64, c: u32) -> Self {
        DistributedScheduler {
            rho: Some(rho),
            c: Some(c),
            loss: None,
            crashes: Vec::new(),
            delay: None,
            last_stats: None,
            last_trace: None,
        }
    }

    /// Enables the unreliable-link model.
    pub fn with_loss(mut self, p: f64, seed: u64) -> Self {
        self.loss = Some((p, seed));
        self
    }
}

impl OneShotScheduler for DistributedScheduler {
    fn name(&self) -> &'static str {
        "alg3-distributed"
    }

    fn comm_stats(&self) -> Option<NetStats> {
        self.last_stats
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let rho = self.rho.unwrap_or(1.1);
        let c = self.c.unwrap_or(3);
        assert!(rho > 1.0, "ρ must exceed 1");
        let n = input.deployment.n_readers();
        if n == 0 {
            self.last_stats = Some(NetStats::default());
            return Vec::new();
        }
        // Each reader's initial record: direct neighbours + its unread tags.
        let agents: Vec<ReaderAgent> = (0..n)
            .map(|v| {
                let tags: Vec<u32> = input
                    .coverage
                    .tags_of(v)
                    .iter()
                    .copied()
                    .filter(|&t| input.unread.is_unread(t as usize))
                    .collect();
                let record = NodeRecord {
                    id: v as u32,
                    neighbors: input.graph.neighbors(v).to_vec(),
                    tags,
                };
                let mut agent = ReaderAgent::new(record, rho, c);
                agent.crash_at = self
                    .crashes
                    .iter()
                    .find(|&&(r, _)| r == v)
                    .map(|&(_, at)| at);
                agent
            })
            .collect();
        let mut net = Network::new(input.graph.clone(), agents);
        if let Some((p, seed)) = self.loss {
            net = net.with_loss(p, seed);
        }
        if let Some((max_extra, seed)) = self.delay {
            net = net.with_delay(max_extra, seed);
        }
        // Generous round budget: gather + (heads are elected at least every
        // O(TTL) rounds and at least one reader is eliminated per head).
        let budget = (2 * c as u64 + 2) + (n as u64 + 1) * (3 * c as u64 + 5) + 16;
        net.run_until_quiescent(budget);
        assert!(
            self.loss.is_some()
                || !self.crashes.is_empty()
                || self.delay.is_some()
                || net.is_quiescent(),
            "distributed protocol failed to converge within {budget} rounds"
        );
        let (agents, stats) = net.into_parts();
        self.last_stats = Some(stats);
        let mut trace: Vec<(u64, TraceEvent)> = agents
            .iter()
            .flat_map(|a| a.events.iter().cloned())
            .collect();
        trace.sort_by_key(|(round, e)| {
            let node = match e {
                TraceEvent::HeadElected { node, .. }
                | TraceEvent::ColoredRed { node, .. }
                | TraceEvent::ColoredBlack { node, .. } => *node,
            };
            (*round, node)
        });
        self.last_trace = Some(trace);
        // A reader that actually went dark during the protocol cannot
        // transmit: exclude it from the activation even if it was Red
        // before crashing. (A crash scheduled beyond convergence never
        // fired and changes nothing.)
        let mut x: Vec<ReaderId> = agents
            .iter()
            .filter(|a| a.color == Color::Red && !a.crashed)
            .map(|a| a.id as ReaderId)
            .collect();
        x.sort_unstable();
        // Carrier-sense activation repair. On reliable links this is a
        // no-op (the protocol's invariants make the Red set independent);
        // with lossy links two Red readers may be mutually unaware, and a
        // real reader would detect the jam at power-up: the lighter-weight
        // endpoint defers (turns itself off for this slot).
        let mut weights = rfid_model::WeightEvaluator::new(input.coverage);
        loop {
            let mut drop: Option<ReaderId> = None;
            'scan: for (i, &a) in x.iter().enumerate() {
                for &b in &x[i + 1..] {
                    if input.graph.has_edge(a, b) {
                        let (wa, wb) = (
                            weights.singleton_weight(a, input.unread),
                            weights.singleton_weight(b, input.unread),
                        );
                        drop = Some(if wa <= wb { a } else { b });
                        break 'scan;
                    }
                }
            }
            match drop {
                Some(v) => {
                    debug_assert!(
                        self.loss.is_some() || !self.crashes.is_empty() || self.delay.is_some(),
                        "repair must be a no-op on reliable links"
                    );
                    x.retain(|&u| u != v);
                }
                None => break,
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel, WeightEvaluator};

    fn paper_like(n_readers: usize, seed: u64) -> rfid_model::Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags: 300,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn converges_and_is_feasible() {
        for seed in 0..6 {
            let d = paper_like(40, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut s = DistributedScheduler::default();
            let set = s.schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            assert!(!set.is_empty(), "seed {seed}");
            let stats = s.last_stats.unwrap();
            assert!(stats.messages > 0);
        }
    }

    #[test]
    fn is_deterministic() {
        let d = paper_like(30, 9);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let a = DistributedScheduler::default().schedule_twice(&input);
        assert_eq!(a.0, a.1);
    }

    impl DistributedScheduler {
        fn schedule_twice(mut self, input: &OneShotInput<'_>) -> (Vec<usize>, Vec<usize>) {
            let x = self.schedule(input);
            let y = self.schedule(input);
            (x, y)
        }
    }

    #[test]
    fn matches_centralized_on_disconnected_singletons() {
        // No interference at all: every reader is its own head and the
        // answer is every reader with positive weight.
        let d = Scenario {
            kind: ScenarioKind::LatticeReaders,
            n_readers: 9,
            n_tags: 50,
            region_side: 90.0,
            radius_model: RadiusModel::Fixed { interference: 4.0, interrogation: 4.0 },
        }
        .generate(0);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        assert_eq!(g.m(), 0, "lattice spacing 30 ≫ interference 4");
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let dist = DistributedScheduler::default().schedule(&input);
        let mut weights = WeightEvaluator::new(&c);
        let expect: Vec<usize> = (0..9)
            .filter(|&v| weights.singleton_weight(v, &unread) > 0)
            .collect();
        assert_eq!(dist, expect);
    }

    #[test]
    fn respects_theorem6_bound_against_exact() {
        for seed in 0..4 {
            let d = paper_like(13, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let rho = 1.25;
            let set = DistributedScheduler::with_params(rho, 4).schedule(&input);
            let opt = crate::exact::ExactScheduler::default().schedule(&input);
            let w_set = input.weight_of(&set) as f64;
            let w_opt = input.weight_of(&opt) as f64;
            assert!(
                w_set + 1e-9 >= w_opt / rho,
                "seed {seed}: w = {w_set} < {w_opt}/ρ"
            );
        }
    }

    #[test]
    fn message_cost_grows_with_c() {
        let d = paper_like(35, 2);
        let cov = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &cov, &g, &unread);
        let mut small = DistributedScheduler::with_params(1.25, 1);
        let mut big = DistributedScheduler::with_params(1.25, 4);
        small.schedule(&input);
        big.schedule(&input);
        // The gather phase alone takes 2c+2 rounds, so a larger c always
        // costs more rounds; byte volume saturates once the knowledge flood
        // covers the component, so rounds are the stable monotone metric.
        assert!(
            big.last_stats.unwrap().rounds > small.last_stats.unwrap().rounds,
            "larger c must run more rounds"
        );
    }

    #[test]
    fn empty_deployment() {
        let d = rfid_model::Deployment::new(
            rfid_geometry::Rect::square(1.0),
            vec![],
            vec![],
            vec![],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(DistributedScheduler::default().schedule(&input).is_empty());
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    fn setup(seed: u64) -> (rfid_model::Deployment, Coverage, Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 400,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn output_is_feasible_under_any_loss_rate() {
        for &p in &[0.05, 0.2, 0.5, 0.9] {
            for seed in 0..3u64 {
                let (d, c, g) = setup(seed);
                let unread = TagSet::all_unread(d.n_tags());
                let input = OneShotInput::new(&d, &c, &g, &unread);
                let set = DistributedScheduler::default().with_loss(p, seed).schedule(&input);
                assert!(d.is_feasible(&set), "p={p} seed={seed}: {set:?}");
            }
        }
    }

    #[test]
    fn zero_loss_matches_reliable_run() {
        let (d, c, g) = setup(0);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let reliable = DistributedScheduler::default().schedule(&input);
        let zero_loss = DistributedScheduler::default().with_loss(0.0, 1).schedule(&input);
        assert_eq!(reliable, zero_loss);
    }

    #[test]
    fn drops_are_accounted() {
        let (d, c, g) = setup(1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = DistributedScheduler::default().with_loss(0.3, 7);
        s.schedule(&input);
        let stats = s.last_stats.unwrap();
        assert!(stats.dropped > 0);
        assert!(stats.dropped < stats.messages);
    }

    #[test]
    fn weight_degrades_gracefully_not_catastrophically() {
        // Mean over seeds: 20% loss should keep most of the weight.
        let mut clean = 0usize;
        let mut lossy = 0usize;
        for seed in 0..5u64 {
            let (d, c, g) = setup(seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            clean += input.weight_of(&DistributedScheduler::default().schedule(&input));
            lossy += input
                .weight_of(&DistributedScheduler::default().with_loss(0.2, seed).schedule(&input));
        }
        assert!(
            lossy * 2 >= clean,
            "20% loss should retain ≥ half the weight ({lossy} vs {clean})"
        );
    }
}

#[cfg(test)]
mod trace_and_crash_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    fn setup(seed: u64) -> (rfid_model::Deployment, Coverage, Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 400,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn trace_is_complete_and_consistent() {
        let (d, c, g) = setup(0);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = DistributedScheduler::default();
        let set = s.schedule(&input);
        let trace = s.last_trace.clone().unwrap();
        assert!(!trace.is_empty());
        // Every activated reader has exactly one ColoredRed event.
        let red_events: Vec<u32> = trace
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::ColoredRed { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        let mut red_sorted: Vec<usize> = red_events.iter().map(|&n| n as usize).collect();
        red_sorted.sort_unstable();
        assert_eq!(red_sorted, set);
        // Heads announce non-empty removals and rounds are ordered.
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        let heads = trace
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::HeadElected { .. }))
            .count();
        assert!(heads >= 1);
        // Head elections happen only after the gather phase (2c+2 = 8).
        for (round, e) in &trace {
            if matches!(e, TraceEvent::HeadElected { .. }) {
                assert!(*round >= 8, "head elected during gather at round {round}");
            }
        }
    }

    #[test]
    fn crashed_readers_never_activate() {
        let (d, c, g) = setup(1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // Crash the globally heaviest reader before it can announce.
        let mut weights = rfid_model::WeightEvaluator::new(&c);
        let heaviest = (0..d.n_readers())
            .max_by_key(|&v| weights.singleton_weight(v, &unread))
            .unwrap();
        let mut s = DistributedScheduler::default();
        s.crashes = vec![(heaviest, 0)];
        let set = s.schedule(&input);
        assert!(!set.contains(&heaviest));
        assert!(d.is_feasible(&set));
    }

    #[test]
    fn late_crash_changes_little() {
        let (d, c, g) = setup(2);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let clean = DistributedScheduler::default().schedule(&input);
        let mut s = DistributedScheduler::default();
        s.crashes = vec![(0, 10_000)]; // far beyond convergence
        let with_late_crash = s.schedule(&input);
        assert_eq!(clean, with_late_crash);
    }

    #[test]
    fn mass_crash_still_yields_feasible_output() {
        let (d, c, g) = setup(3);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = DistributedScheduler::default();
        // A third of the fleet dies mid-gather.
        s.crashes = (0..10).map(|v| (v, 3u64)).collect();
        let set = s.schedule(&input);
        assert!(d.is_feasible(&set));
        for v in 0..10 {
            assert!(!set.contains(&v), "crashed reader {v} activated");
        }
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    #[test]
    fn feasible_under_bounded_asynchrony() {
        for seed in 0..4u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 30,
                n_tags: 400,
                region_side: 100.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 14.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut s = DistributedScheduler::default();
            s.delay = Some((3, seed));
            let set = s.schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            // asynchrony costs some weight but not everything
            let clean = DistributedScheduler::default().schedule(&input);
            let w_delay = input.weight_of(&set) as f64;
            let w_clean = input.weight_of(&clean) as f64;
            assert!(w_delay >= 0.4 * w_clean, "seed {seed}: {w_delay} vs {w_clean}");
        }
    }
}
