//! Algorithm 3 — **distributed** scheduling without location information
//! (paper Section V-B), executed on the `rfid-netsim` message-passing
//! substrate.
//!
//! Every reader runs the same state machine over the interference graph:
//!
//! 1. **Gather** (`2c+2` rounds): incremental flooding of node records
//!    (id, neighbour list, covered-unread-tag list) so each reader learns
//!    its `(2c+2)`-hop neighbourhood `N(v)^{2c+2}`.
//! 2. **Election**: a White reader whose `(singleton weight, id)` is
//!    maximal among the non-eliminated readers it knows becomes a
//!    *coordinator* (head). Because any two readers within `2c+2` hops know
//!    each other after gathering, simultaneous heads are always more than
//!    `2c+2` hops apart — their local solutions cannot interfere.
//! 3. **Local MWFS**: the head runs the same ρ-growth as Algorithm 2
//!    (`Γ_0, Γ_1, …` until `w(Γ_{r+1}) < ρ·w(Γ_r)`, capped at `c`) on its
//!    *local* reconstructed subgraph, then floods
//!    `RESULT(Γ_{r̄}, N^{r̄+1})` with TTL `r̄+1+2c+2` — exactly far enough
//!    that every reader whose ball overlaps the removed region hears it.
//! 4. **Colouring**: a reader in `Γ_{r̄}` turns **Red** (activated), a
//!    reader in `N^{r̄+1} ∖ Γ_{r̄}` turns **Black** (suppressed); every
//!    other recipient deletes the eliminated readers from its knowledge and
//!    re-checks the election condition.
//!
//! Theorem 6: the Red set is a feasible scheduling set with
//! `w(X) ≥ w(OPT)/ρ`.

use crate::local_greedy::grow_local_mwfs;
use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_graph::Csr;
use rfid_model::{Coverage, ReaderId, TagSet};
use rfid_netsim::{Envelope, FaultPlan, NetStats, Network, Node, Outbox, Payload};
use rfid_obs::{counter, span};
use std::collections::{BTreeMap, BTreeSet};

/// One reader's gossiped self-description.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeRecord {
    id: u32,
    neighbors: Vec<u32>,
    /// Unread tags inside this reader's interrogation region at slot start.
    tags: Vec<u32>,
}

/// Protocol messages. `seq` is a per-sender sequence number used by the
/// reliability layer (ack matching and duplicate suppression); it stays 0
/// and unused on reliable links, where no acks are exchanged at all.
#[derive(Debug, Clone)]
enum Msg {
    /// Incremental knowledge flooding during the gather phase.
    Info { seq: u64, records: Vec<NodeRecord> },
    /// A coordinator's announcement.
    Result {
        seq: u64,
        head: u32,
        members: Vec<u32>,
        removed: Vec<u32>,
        ttl: u32,
    },
    /// Reliability layer: confirms receipt of the sender's message `seq`.
    /// Acks themselves are never acked or retransmitted.
    Ack { seq: u64 },
}

impl Msg {
    fn set_seq(&mut self, s: u64) {
        match self {
            Msg::Info { seq, .. } | Msg::Result { seq, .. } | Msg::Ack { seq } => *seq = s,
        }
    }
}

impl Payload for Msg {
    /// The 8-byte sequence header is control overhead below the accounting
    /// granularity; payload volume counts the same fields as the paper's
    /// cost model so reliable and unreliable runs stay comparable.
    fn size_bytes(&self) -> usize {
        match self {
            Msg::Info { records, .. } => records
                .iter()
                .map(|r| 4 + 4 * r.neighbors.len() + 4 * r.tags.len())
                .sum(),
            Msg::Result {
                members, removed, ..
            } => 8 + 4 * members.len() + 4 * removed.len(),
            Msg::Ack { .. } => 8,
        }
    }
}

/// Reader colour per the paper's Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    White,
    Red,
    Black,
}

/// One observable protocol event, for the execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `node` won the election and announced (members, removed sizes).
    HeadElected {
        /// Electing reader.
        node: u32,
        /// Size of the announced Γ.
        members: usize,
        /// Size of the removed ball.
        removed: usize,
    },
    /// `node` turned Red (activated) because of `head`'s announcement.
    ColoredRed {
        /// Affected reader.
        node: u32,
        /// Announcing coordinator.
        head: u32,
    },
    /// `node` turned Black (suppressed) because of `head`'s announcement.
    ColoredBlack {
        /// Affected reader.
        node: u32,
        /// Announcing coordinator.
        head: u32,
    },
    /// Reliability layer: `node` re-sent an unacked message to `to`
    /// (`attempt` counts retransmissions of that message so far).
    Retransmit {
        /// Retransmitting reader.
        node: u32,
        /// Destination neighbour.
        to: u32,
        /// Retransmission attempt number (1-based).
        attempt: u32,
    },
    /// Failure detection: `node` saw no election progress for a full
    /// watchdog window and now suspects `suspect` (its current best head
    /// candidate) of having crashed.
    TimeoutSuspect {
        /// Suspecting reader.
        node: u32,
        /// Reader presumed crashed.
        suspect: u32,
    },
    /// `node` won an election it would have lost to `deposed` had the
    /// latter not been suspected — a re-election after a presumed head
    /// crash.
    ReElected {
        /// Newly elected reader.
        node: u32,
        /// The heavier suspected reader it replaces.
        deposed: u32,
    },
}

/// Retransmission schedule: gap (in rounds) before the next resend of an
/// unacked message, indexed by how many sends have happened so far.
/// The minimum ack round-trip is 2 rounds (deliver, ack back), so the
/// first gap is 2; then exponential backoff and a final 16-round grace
/// before the sender gives up — a message's fate is sealed within
/// `2 + 2 + 4 + 8 + 16 + 16 = 48` rounds of its first send (plus the
/// stretched round-trips under extra delivery delay).
const RETRY_GAPS: [u64; 6] = [2, 2, 4, 8, 16, 16];
/// Retransmissions per message before the sender records a `gave_up`.
const MAX_RETRIES: usize = 5;

/// Reliability-layer configuration, derived from the scheduler's
/// [`FaultPlan`]. When `enabled` is false the agent behaves bit-identically
/// to the original synchronous protocol.
#[derive(Debug, Clone, Copy)]
struct Reliability {
    /// Acks, retransmission, timeouts and failure suspicion on/off.
    enabled: bool,
    /// The network's maximum extra delivery delay, which stretches every
    /// timeout window.
    max_delay: u64,
}

impl Reliability {
    fn off() -> Self {
        Reliability {
            enabled: false,
            max_delay: 0,
        }
    }

    /// Each retransmission gap is stretched by a full worst-case ack
    /// round-trip under extra delivery delay.
    fn gap(&self, attempt: usize) -> u64 {
        RETRY_GAPS[attempt.min(RETRY_GAPS.len() - 1)] + 2 * self.max_delay
    }

    /// Rounds within which a single reliable hop either delivers or the
    /// sender has given up (full backoff schedule + one delivery).
    fn hop_window(&self) -> u64 {
        64 + 16 * self.max_delay
    }

    /// Rounds of total silence after which a gathering reader assumes the
    /// flood has quiesced and proceeds to the election early.
    fn quiet_window(&self) -> u64 {
        24 + 2 * self.max_delay
    }

    /// Rounds without election progress after which a waiting reader
    /// suspects its best head candidate of having crashed.
    fn watchdog_window(&self) -> u64 {
        64 + 4 * self.max_delay
    }
}

/// An unacked message awaiting retransmission.
#[derive(Debug, Clone)]
struct PendingSend {
    to: usize,
    seq: u64,
    msg: Msg,
    /// Retransmissions performed so far.
    attempt: usize,
    /// Round at which the next retransmission (or give-up) is due.
    due: u64,
}

/// The per-reader state machine.
struct ReaderAgent {
    id: u32,
    rho: f64,
    c: u32,
    gather_rounds: u64,
    color: Color,
    /// Everything this reader knows: id → record.
    knowledge: BTreeMap<u32, NodeRecord>,
    /// Records to flood next round (first learned last round).
    fresh: Vec<NodeRecord>,
    /// Readers known to be Red/Black somewhere.
    eliminated: BTreeSet<u32>,
    /// Result announcements already forwarded (by head id).
    forwarded: BTreeSet<u32>,
    /// Fault injection: stop participating from this round on.
    crash_at: Option<u64>,
    /// Set once the crash round has been reached.
    crashed: bool,
    /// Observable events with their round, for the execution trace.
    events: Vec<(u64, TraceEvent)>,
    // --- Reliability layer (inert unless `rel.enabled`) ------------------
    rel: Reliability,
    /// Next per-sender sequence number.
    next_seq: u64,
    /// Unacked sends awaiting retransmission.
    pending: Vec<PendingSend>,
    /// `(sender, seq)` pairs already processed (duplicate suppression).
    seen: BTreeSet<(usize, u64)>,
    /// Readers this agent suspects of having crashed; excluded from the
    /// election and from local solutions, exactly like eliminated readers.
    suspected: BTreeSet<u32>,
    /// Messages abandoned after exhausting every retransmission.
    gave_up: u64,
    /// Last round in which any message arrived (gather quiescence detector).
    last_msg_round: u64,
    /// Last round with election progress (new knowledge, a result applied,
    /// or a suspicion recorded) — the watchdog's baseline.
    last_progress: u64,
    /// Round at which this agent first considered its gather complete.
    gather_done_at: Option<u64>,
}

impl ReaderAgent {
    fn new(record: NodeRecord, rho: f64, c: u32, rel: Reliability) -> Self {
        let gather_rounds = (2 * c + 2) as u64;
        ReaderAgent {
            id: record.id,
            rho,
            c,
            gather_rounds,
            color: Color::White,
            knowledge: BTreeMap::from([(record.id, record.clone())]),
            fresh: vec![record],
            eliminated: BTreeSet::new(),
            forwarded: BTreeSet::new(),
            crash_at: None,
            crashed: false,
            events: Vec::new(),
            rel,
            next_seq: 1,
            pending: Vec::new(),
            seen: BTreeSet::new(),
            suspected: BTreeSet::new(),
            gave_up: 0,
            last_msg_round: 0,
            last_progress: 0,
            gather_done_at: None,
        }
    }

    fn singleton_weight(&self, id: u32) -> usize {
        self.knowledge.get(&id).map_or(0, |r| r.tags.len())
    }

    /// `true` iff `u` no longer competes in elections: it is eliminated
    /// (coloured somewhere) or suspected of having crashed.
    fn retired(&self, u: u32) -> bool {
        self.eliminated.contains(&u) || self.suspected.contains(&u)
    }

    /// The election predicate: strictly maximal `(weight, id)` among known,
    /// non-retired readers. Strict total order (ids unique) means two
    /// mutually-known readers can never both win.
    fn is_local_max(&self) -> bool {
        let mine = (self.singleton_weight(self.id), self.id);
        self.knowledge
            .keys()
            .filter(|&&u| u != self.id && !self.retired(u))
            .all(|&u| (self.singleton_weight(u), u) < mine)
    }

    /// The known, non-retired reader with the maximal `(weight, id)` other
    /// than this one — the candidate whose announcement this reader is
    /// waiting for, and therefore the one to suspect on timeout.
    fn blocking_candidate(&self) -> Option<u32> {
        self.knowledge
            .keys()
            .filter(|&&u| u != self.id && !self.retired(u))
            .max_by_key(|&&u| (self.singleton_weight(u), u))
            .copied()
    }

    /// Reconstructs the local alive subgraph and runs the ρ-growth on it.
    /// Returns `(Γ_{r̄}, removed ball N^{r̄+1})` in global ids.
    ///
    /// A zero-weight head (no unread tag anywhere in its view — possible
    /// only when every reader it knows is equally empty) activates nobody
    /// but still retires its neighbourhood so the protocol terminates.
    fn compute_local_solution(&self) -> (Vec<u32>, Vec<u32>) {
        // Local relabelling of alive (non-eliminated) known readers.
        let alive_ids: Vec<u32> = self
            .knowledge
            .keys()
            .copied()
            .filter(|&u| !self.retired(u))
            .collect();
        let local_of: BTreeMap<u32, usize> =
            alive_ids.iter().enumerate().map(|(l, &g)| (g, l)).collect();
        let mut edges = Vec::new();
        let mut tag_local: BTreeMap<u32, usize> = BTreeMap::new();
        for &g in &alive_ids {
            let rec = &self.knowledge[&g];
            for &nb in &rec.neighbors {
                if let Some(&lnb) = local_of.get(&nb) {
                    let l = local_of[&g];
                    if l < lnb {
                        edges.push((l, lnb));
                    }
                }
            }
            for &t in &rec.tags {
                let next = tag_local.len();
                tag_local.entry(t).or_insert(next);
            }
        }
        let graph = Csr::from_edges(alive_ids.len(), &edges);
        let mut tag_readers = vec![Vec::new(); tag_local.len()];
        for &g in &alive_ids {
            for &t in &self.knowledge[&g].tags {
                tag_readers[tag_local[&t]].push(local_of[&g] as u32);
            }
        }
        let coverage = Coverage::from_lists(alive_ids.len(), tag_readers);
        let unread = TagSet::all_unread(tag_local.len());
        let alive = crate::arena::AliveSet::all_alive(alive_ids.len());
        let me = local_of[&self.id];
        let (gamma, r) = grow_local_mwfs(&graph, &coverage, &unread, me, &alive, self.rho, self.c);
        // Removed ball N^{r̄+1}(me) over the alive local graph.
        let removed_local = crate::local_greedy::ball_restricted(&graph, me, r + 1, &alive);
        let members: Vec<u32> = if self.singleton_weight(self.id) == 0 {
            Vec::new()
        } else {
            gamma.iter().map(|&l| alive_ids[l]).collect()
        };
        let removed: Vec<u32> = removed_local.iter().map(|&l| alive_ids[l]).collect();
        (members, removed)
    }

    fn apply_result(&mut self, round: u64, head: u32, members: &[u32], removed: &[u32]) {
        for &u in members.iter().chain(removed.iter()) {
            self.eliminated.insert(u);
        }
        if members.contains(&self.id) && self.color == Color::White {
            self.color = Color::Red;
            self.events.push((
                round,
                TraceEvent::ColoredRed {
                    node: self.id,
                    head,
                },
            ));
        } else if removed.contains(&self.id) && self.color == Color::White {
            self.color = Color::Black;
            self.events.push((
                round,
                TraceEvent::ColoredBlack {
                    node: self.id,
                    head,
                },
            ));
        }
    }

    /// Builds, applies and returns this head's announcement.
    fn announce(&mut self, round: u64) -> Msg {
        // A win that only happened because a heavier reader is suspected
        // is a re-election; record whom this head replaces.
        let mine = (self.singleton_weight(self.id), self.id);
        let deposed = self
            .suspected
            .iter()
            .filter(|&&u| !self.eliminated.contains(&u))
            .filter(|&&u| (self.singleton_weight(u), u) > mine)
            .max_by_key(|&&u| (self.singleton_weight(u), u))
            .copied();
        if let Some(deposed) = deposed {
            self.events.push((
                round,
                TraceEvent::ReElected {
                    node: self.id,
                    deposed,
                },
            ));
        }
        let (members, removed) = self.compute_local_solution();
        let r_bar_plus_1 = self.c + 1; // conservative: r̄ ≤ c
        let ttl = r_bar_plus_1 + 2 * self.c + 2;
        self.events.push((
            round,
            TraceEvent::HeadElected {
                node: self.id,
                members: members.len(),
                removed: removed.len(),
            },
        ));
        self.apply_result(round, self.id, &members, &removed);
        debug_assert!(self.color != Color::White, "head must colour itself");
        self.forwarded.insert(self.id);
        Msg::Result {
            seq: 0,
            head: self.id,
            members,
            removed,
            ttl,
        }
    }

    /// Broadcasts `msg` to every neighbour; on reliable links this is the
    /// plain flood, otherwise each copy is tracked for ack-based
    /// retransmission with exponential backoff.
    fn flood(&mut self, round: u64, out: &mut Outbox<Msg>, mut msg: Msg) {
        if !self.rel.enabled {
            out.broadcast(msg);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        msg.set_seq(seq);
        let neighbors: Vec<usize> = out.neighbors().to_vec();
        for to in neighbors {
            out.send(to, msg.clone());
            self.pending.push(PendingSend {
                to,
                seq,
                msg: msg.clone(),
                attempt: 0,
                due: round + self.rel.gap(0),
            });
        }
    }

    /// Retransmits every overdue unacked message, abandoning those that
    /// exhausted their retries.
    fn sweep_retransmits(&mut self, round: u64, out: &mut Outbox<Msg>) {
        if self.pending.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].due > round {
                i += 1;
                continue;
            }
            if self.pending[i].attempt >= MAX_RETRIES {
                self.gave_up += 1;
                self.pending.remove(i);
                continue;
            }
            let gap = self.rel.gap(self.pending[i].attempt + 1);
            let p = &mut self.pending[i];
            p.attempt += 1;
            p.due = round + gap;
            out.send(p.to, p.msg.clone());
            out.note_retransmit();
            self.events.push((
                round,
                TraceEvent::Retransmit {
                    node: self.id,
                    to: p.to as u32,
                    attempt: p.attempt as u32,
                },
            ));
            i += 1;
        }
    }

    /// Whether this reader considers its gather phase over and may move on
    /// to the election. Without the reliability layer this is the paper's
    /// fixed `2c+2` rounds; with it, the reader waits for either a hard
    /// deadline (every hop's retransmission fate sealed) or an adaptive
    /// quiet period with nothing left in flight.
    fn gather_complete(&self, round: u64) -> bool {
        if !self.rel.enabled {
            return round >= self.gather_rounds;
        }
        if round < self.gather_rounds {
            return false;
        }
        if round >= self.gather_rounds * self.rel.hop_window() {
            return true;
        }
        self.fresh.is_empty()
            && self.pending.is_empty()
            && round.saturating_sub(self.last_msg_round) >= self.rel.quiet_window()
    }
}

impl Node for ReaderAgent {
    type Msg = Msg;

    fn step(&mut self, round: u64, inbox: &[Envelope<Msg>], out: &mut Outbox<Msg>) {
        // --- Fault injection: a crashed reader is dark — it neither
        // ingests nor relays nor announces.
        if self.crash_at.is_some_and(|at| round >= at) {
            self.crashed = true;
            return;
        }
        // --- Ingest ------------------------------------------------------
        if !inbox.is_empty() {
            self.last_msg_round = round;
        }
        let mut results_to_forward: Vec<Msg> = Vec::new();
        for env in inbox {
            match &env.msg {
                Msg::Ack { seq } => {
                    self.pending
                        .retain(|p| !(p.to == env.from && p.seq == *seq));
                }
                Msg::Info { seq, records } => {
                    if self.rel.enabled {
                        out.send(env.from, Msg::Ack { seq: *seq });
                        if !self.seen.insert((env.from, *seq)) {
                            continue; // duplicate delivery (ack was lost)
                        }
                    }
                    for rec in records {
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            self.knowledge.entry(rec.id)
                        {
                            e.insert(rec.clone());
                            self.fresh.push(rec.clone());
                            self.last_progress = round;
                        }
                    }
                }
                Msg::Result {
                    seq,
                    head,
                    members,
                    removed,
                    ttl,
                } => {
                    if self.rel.enabled {
                        out.send(env.from, Msg::Ack { seq: *seq });
                        if !self.seen.insert((env.from, *seq)) {
                            continue;
                        }
                    }
                    if self.forwarded.insert(*head) {
                        self.apply_result(round, *head, members, removed);
                        self.last_progress = round;
                        if *ttl > 1 {
                            results_to_forward.push(Msg::Result {
                                seq: 0,
                                head: *head,
                                members: members.clone(),
                                removed: removed.clone(),
                                ttl: ttl - 1,
                            });
                        }
                    }
                }
            }
        }
        // --- Relay results (all colours relay; the radio still works) ----
        for msg in results_to_forward {
            self.flood(round, out, msg);
        }
        // --- Reliability: retransmit overdue unacked messages ------------
        self.sweep_retransmits(round, out);
        // --- Gather phase: flood fresh records ---------------------------
        if !self.gather_complete(round) {
            if !self.fresh.is_empty() {
                let batch = std::mem::take(&mut self.fresh);
                self.flood(
                    round,
                    out,
                    Msg::Info {
                        seq: 0,
                        records: batch,
                    },
                );
            }
            return;
        }
        if self.gather_done_at.is_none() {
            self.gather_done_at = Some(round);
        }
        self.fresh.clear();
        // --- Failure detection: a head that never announces is presumed
        // crashed after a full watchdog window without progress, clearing
        // the way for a re-election among the survivors.
        if self.rel.enabled && self.color == Color::White && !self.is_local_max() {
            let base = self.last_progress.max(self.gather_done_at.unwrap_or(0));
            if round.saturating_sub(base) >= self.rel.watchdog_window() {
                if let Some(suspect) = self.blocking_candidate() {
                    self.suspected.insert(suspect);
                    self.events.push((
                        round,
                        TraceEvent::TimeoutSuspect {
                            node: self.id,
                            suspect,
                        },
                    ));
                    self.last_progress = round;
                }
            }
        }
        // --- Election + announcement -------------------------------------
        if self.color == Color::White && self.is_local_max() {
            let msg = self.announce(round);
            self.flood(round, out, msg);
        }
    }

    fn is_done(&self) -> bool {
        self.crashed || (self.color != Color::White && self.pending.is_empty())
    }
}

/// Outcome digest of one distributed run under faults — what the chaos
/// harness and the robustness ablation key their assertions on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Every surviving reader reached a terminal colour.
    pub completed: bool,
    /// The network was quiescent when the round budget ended.
    pub quiescent: bool,
    /// Readers still alive at the end of the run.
    pub survivors: usize,
    /// Readers that crash-stopped during the run.
    pub crashed: usize,
    /// Messages abandoned after exhausting every retransmission.
    pub gave_up: u64,
    /// Crash suspicions raised by watchdog timeouts (may include false
    /// positives; those only cost schedule weight, never feasibility).
    pub suspected: u64,
    /// Readers deactivated by the carrier-sense repair pass.
    pub repaired: usize,
}

/// Algorithm 3 packaged as a [`OneShotScheduler`].
///
/// The simulation statistics of the most recent run (rounds, messages,
/// bytes) are kept in [`last_stats`](Self::last_stats) for the
/// communication-cost ablation.
#[derive(Debug, Clone, Default)]
pub struct DistributedScheduler {
    /// Growth threshold ρ; `None` → 1.1 (matching [`crate::LocalGreedy`]).
    pub rho: Option<f64>,
    /// Growth cap `c`; `None` → 3.
    pub c: Option<u32>,
    /// Unreliable links: `(drop probability, seed)`. Under loss, gathered
    /// knowledge and result floods may be incomplete; the carrier-sense
    /// repair (below) keeps the output feasible while the robustness
    /// ablation measures the weight degradation.
    pub loss: Option<(f64, u64)>,
    /// Fault injection: `(reader, round)` pairs — the reader goes dark
    /// from that round on (crash-stop model).
    pub crashes: Vec<(ReaderId, u64)>,
    /// Bounded asynchrony: `(max extra rounds, seed)` — each message is
    /// delayed by an extra uniform number of rounds. The synchronous
    /// gather phase then sees *incomplete* neighbourhoods, so the
    /// carrier-sense repair may engage; the output stays feasible.
    pub delay: Option<(u64, u64)>,
    /// Unified fault injection. When set, it supersedes the legacy
    /// `loss`/`crashes`/`delay` knobs above and additionally arms the
    /// reliability layer (acks, retransmission, timeout-driven phase
    /// progression, head re-election) whenever the plan can actually lose
    /// messages. `Some(FaultPlan::none())` behaves bit-identically to
    /// `None`.
    pub fault_plan: Option<FaultPlan>,
    /// Stats of the last `schedule` call.
    pub last_stats: Option<NetStats>,
    /// Execution trace of the last `schedule` call: `(round, event)`,
    /// sorted by round then node.
    pub last_trace: Option<Vec<(u64, TraceEvent)>>,
    /// Outcome digest of the last `schedule` call.
    pub last_summary: Option<RunSummary>,
    /// Readers that crash-stopped during the last `schedule` call (from
    /// either the fault plan or the legacy `crashes` knob), ascending.
    pub last_crashed: Vec<ReaderId>,
}

impl DistributedScheduler {
    /// Creates a scheduler with explicit parameters.
    pub fn with_params(rho: f64, c: u32) -> Self {
        DistributedScheduler {
            rho: Some(rho),
            c: Some(c),
            ..Default::default()
        }
    }

    /// Enables the unreliable-link model.
    pub fn with_loss(mut self, p: f64, seed: u64) -> Self {
        self.loss = Some((p, seed));
        self
    }

    /// Runs the protocol under `plan`, with the reliability layer armed
    /// iff the plan can lose messages.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

impl OneShotScheduler for DistributedScheduler {
    fn name(&self) -> &'static str {
        "alg3-distributed"
    }

    fn comm_stats(&self) -> Option<NetStats> {
        self.last_stats
    }

    fn crashed_readers(&self) -> Vec<ReaderId> {
        self.last_crashed.clone()
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let sub = input.subscriber();
        let _span = span!(sub, "alg3.schedule");
        let rho = self.rho.unwrap_or(1.1);
        let c = self.c.unwrap_or(3);
        assert!(rho > 1.0, "ρ must exceed 1");
        let n = input.deployment.n_readers();
        if n == 0 {
            self.last_stats = Some(NetStats::default());
            self.last_summary = Some(RunSummary {
                completed: true,
                quiescent: true,
                ..Default::default()
            });
            return Vec::new();
        }
        // The reliability layer costs acks and retransmissions, so it is
        // armed only when the fault plan can actually lose messages; a
        // delay-only or empty plan keeps the original lock-step protocol.
        let rel = match &self.fault_plan {
            Some(plan) if plan.can_lose_messages() => Reliability {
                enabled: true,
                max_delay: plan.max_delay(),
            },
            _ => Reliability::off(),
        };
        // Each reader's initial record: direct neighbours + its unread tags.
        let agents: Vec<ReaderAgent> = (0..n)
            .map(|v| {
                let tags: Vec<u32> = input
                    .coverage
                    .tags_of(v)
                    .iter()
                    .copied()
                    .filter(|&t| input.unread.is_unread(t as usize))
                    .collect();
                let record = NodeRecord {
                    id: v as u32,
                    neighbors: input.graph.neighbors(v).to_vec(),
                    tags,
                };
                let mut agent = ReaderAgent::new(record, rho, c, rel);
                agent.crash_at = self
                    .crashes
                    .iter()
                    .find(|&&(r, _)| r == v)
                    .map(|&(_, at)| at);
                agent
            })
            .collect();
        let mut net = Network::new(input.graph.clone(), agents);
        if let Some(plan) = &self.fault_plan {
            net = net.with_faults(plan.clone());
        } else {
            if let Some((p, seed)) = self.loss {
                net = net.with_loss(p, seed);
            }
            if let Some((max_extra, seed)) = self.delay {
                net = net.with_delay(max_extra, seed);
            }
        }
        // Generous round budget: gather + (heads are elected at least every
        // O(TTL) rounds and at least one reader is eliminated per head).
        // With the reliability layer armed, every phase stretches by the
        // hop window (retransmission backoff) and each of the at-most-n
        // serial re-elections may burn a full watchdog window first; this
        // budget is the documented quiescence bound for chaos runs.
        let budget = if rel.enabled {
            (2 * c as u64 + 2) * rel.hop_window()
                + (n as u64 + 1) * (rel.watchdog_window() + 3 * c as u64 + 5)
                + 64
        } else {
            let max_delay = self.fault_plan.as_ref().map_or(0, |p| p.max_delay());
            ((2 * c as u64 + 2) + (n as u64 + 1) * (3 * c as u64 + 5) + 16) * (1 + max_delay)
        };
        net.run_until_quiescent_observed(budget, sub);
        let faulty = self.loss.is_some()
            || !self.crashes.is_empty()
            || self.delay.is_some()
            || self.fault_plan.as_ref().is_some_and(|p| !p.is_none());
        assert!(
            faulty || net.is_quiescent(),
            "distributed protocol failed to converge within {budget} rounds"
        );
        let quiescent = net.is_quiescent();
        let net_crashed: BTreeSet<usize> = net.crashed_nodes().into_iter().collect();
        let (agents, stats) = net.into_parts();
        self.last_stats = Some(stats);
        let mut trace: Vec<(u64, TraceEvent)> = agents
            .iter()
            .flat_map(|a| a.events.iter().cloned())
            .collect();
        trace.sort_by_key(|(round, e)| {
            let node = match e {
                TraceEvent::HeadElected { node, .. }
                | TraceEvent::ColoredRed { node, .. }
                | TraceEvent::ColoredBlack { node, .. }
                | TraceEvent::Retransmit { node, .. }
                | TraceEvent::TimeoutSuspect { node, .. }
                | TraceEvent::ReElected { node, .. } => *node,
            };
            (*round, node)
        });
        if rfid_obs::active(sub).is_some() {
            for (_, e) in &trace {
                let name = match e {
                    TraceEvent::HeadElected { .. } => "alg3.head_elected",
                    TraceEvent::ColoredRed { .. } => "alg3.colored_red",
                    TraceEvent::ColoredBlack { .. } => "alg3.colored_black",
                    TraceEvent::Retransmit { .. } => "alg3.retransmit",
                    TraceEvent::TimeoutSuspect { .. } => "alg3.timeout_suspect",
                    TraceEvent::ReElected { .. } => "alg3.re_elected",
                };
                counter!(sub, name);
            }
        }
        self.last_trace = Some(trace);
        // A reader that actually went dark during the protocol cannot
        // transmit: exclude it from the activation even if it was Red
        // before crashing. (A crash scheduled beyond convergence never
        // fired and changes nothing.) Crashes can come from the legacy
        // per-agent knob or from the network-level fault plan.
        let is_dead = |a: &ReaderAgent| a.crashed || net_crashed.contains(&(a.id as usize));
        let mut x: Vec<ReaderId> = agents
            .iter()
            .filter(|a| a.color == Color::Red && !is_dead(a))
            .map(|a| a.id as ReaderId)
            .collect();
        x.sort_unstable();
        // Carrier-sense activation repair. On reliable links this is a
        // no-op (the protocol's invariants make the Red set independent);
        // with lossy links two Red readers may be mutually unaware, and a
        // real reader would detect the jam at power-up: the lighter-weight
        // endpoint defers (turns itself off for this slot).
        let mut weights = rfid_model::WeightEvaluator::new(input.coverage);
        let mut repaired = 0usize;
        loop {
            let mut drop: Option<ReaderId> = None;
            'scan: for (i, &a) in x.iter().enumerate() {
                for &b in &x[i + 1..] {
                    if input.graph.has_edge(a, b) {
                        let (wa, wb) = (
                            weights.singleton_weight(a, input.unread),
                            weights.singleton_weight(b, input.unread),
                        );
                        drop = Some(if wa <= wb { a } else { b });
                        break 'scan;
                    }
                }
            }
            match drop {
                Some(v) => {
                    debug_assert!(faulty, "repair must be a no-op on reliable links");
                    x.retain(|&u| u != v);
                    repaired += 1;
                }
                None => break,
            }
        }
        let mut dead: Vec<ReaderId> = agents
            .iter()
            .filter(|a| is_dead(a))
            .map(|a| a.id as ReaderId)
            .collect();
        dead.sort_unstable();
        let crashed_count = dead.len();
        self.last_crashed = dead;
        self.last_summary = Some(RunSummary {
            completed: agents
                .iter()
                .filter(|a| !is_dead(a))
                .all(|a| a.color != Color::White),
            quiescent,
            survivors: n - crashed_count,
            crashed: crashed_count,
            gave_up: agents.iter().map(|a| a.gave_up).sum(),
            suspected: agents.iter().map(|a| a.suspected.len() as u64).sum(),
            repaired,
        });
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel, WeightEvaluator};

    fn paper_like(n_readers: usize, seed: u64) -> rfid_model::Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags: 300,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn converges_and_is_feasible() {
        for seed in 0..6 {
            let d = paper_like(40, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut s = DistributedScheduler::default();
            let set = s.schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            assert!(!set.is_empty(), "seed {seed}");
            let stats = s.last_stats.unwrap();
            assert!(stats.messages > 0);
        }
    }

    #[test]
    fn is_deterministic() {
        let d = paper_like(30, 9);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let a = DistributedScheduler::default().schedule_twice(&input);
        assert_eq!(a.0, a.1);
    }

    impl DistributedScheduler {
        fn schedule_twice(mut self, input: &OneShotInput<'_>) -> (Vec<usize>, Vec<usize>) {
            let x = self.schedule(input);
            let y = self.schedule(input);
            (x, y)
        }
    }

    #[test]
    fn matches_centralized_on_disconnected_singletons() {
        // No interference at all: every reader is its own head and the
        // answer is every reader with positive weight.
        let d = Scenario {
            kind: ScenarioKind::LatticeReaders,
            n_readers: 9,
            n_tags: 50,
            region_side: 90.0,
            radius_model: RadiusModel::Fixed {
                interference: 4.0,
                interrogation: 4.0,
            },
        }
        .generate(0);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        assert_eq!(g.m(), 0, "lattice spacing 30 ≫ interference 4");
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let dist = DistributedScheduler::default().schedule(&input);
        let mut weights = WeightEvaluator::new(&c);
        let expect: Vec<usize> = (0..9)
            .filter(|&v| weights.singleton_weight(v, &unread) > 0)
            .collect();
        assert_eq!(dist, expect);
    }

    #[test]
    fn respects_theorem6_bound_against_exact() {
        for seed in 0..4 {
            let d = paper_like(13, seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let rho = 1.25;
            let set = DistributedScheduler::with_params(rho, 4).schedule(&input);
            let opt = crate::exact::ExactScheduler::default().schedule(&input);
            let w_set = input.weight_of(&set) as f64;
            let w_opt = input.weight_of(&opt) as f64;
            assert!(
                w_set + 1e-9 >= w_opt / rho,
                "seed {seed}: w = {w_set} < {w_opt}/ρ"
            );
        }
    }

    #[test]
    fn message_cost_grows_with_c() {
        let d = paper_like(35, 2);
        let cov = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &cov, &g, &unread);
        let mut small = DistributedScheduler::with_params(1.25, 1);
        let mut big = DistributedScheduler::with_params(1.25, 4);
        small.schedule(&input);
        big.schedule(&input);
        // The gather phase alone takes 2c+2 rounds, so a larger c always
        // costs more rounds; byte volume saturates once the knowledge flood
        // covers the component, so rounds are the stable monotone metric.
        assert!(
            big.last_stats.unwrap().rounds > small.last_stats.unwrap().rounds,
            "larger c must run more rounds"
        );
    }

    #[test]
    fn empty_deployment() {
        let d = rfid_model::Deployment::new(
            rfid_geometry::Rect::square(1.0),
            vec![],
            vec![],
            vec![],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        assert!(DistributedScheduler::default().schedule(&input).is_empty());
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    fn setup(seed: u64) -> (rfid_model::Deployment, Coverage, Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 400,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn output_is_feasible_under_any_loss_rate() {
        for &p in &[0.05, 0.2, 0.5, 0.9] {
            for seed in 0..3u64 {
                let (d, c, g) = setup(seed);
                let unread = TagSet::all_unread(d.n_tags());
                let input = OneShotInput::new(&d, &c, &g, &unread);
                let set = DistributedScheduler::default()
                    .with_loss(p, seed)
                    .schedule(&input);
                assert!(d.is_feasible(&set), "p={p} seed={seed}: {set:?}");
            }
        }
    }

    #[test]
    fn zero_loss_matches_reliable_run() {
        let (d, c, g) = setup(0);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let reliable = DistributedScheduler::default().schedule(&input);
        let zero_loss = DistributedScheduler::default()
            .with_loss(0.0, 1)
            .schedule(&input);
        assert_eq!(reliable, zero_loss);
    }

    #[test]
    fn drops_are_accounted() {
        let (d, c, g) = setup(1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = DistributedScheduler::default().with_loss(0.3, 7);
        s.schedule(&input);
        let stats = s.last_stats.unwrap();
        assert!(stats.dropped > 0);
        assert!(stats.dropped < stats.messages);
    }

    #[test]
    fn weight_degrades_gracefully_not_catastrophically() {
        // Mean over seeds: 20% loss should keep most of the weight.
        let mut clean = 0usize;
        let mut lossy = 0usize;
        for seed in 0..5u64 {
            let (d, c, g) = setup(seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            clean += input.weight_of(&DistributedScheduler::default().schedule(&input));
            lossy += input.weight_of(
                &DistributedScheduler::default()
                    .with_loss(0.2, seed)
                    .schedule(&input),
            );
        }
        assert!(
            lossy * 2 >= clean,
            "20% loss should retain ≥ half the weight ({lossy} vs {clean})"
        );
    }
}

#[cfg(test)]
mod trace_and_crash_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    fn setup(seed: u64) -> (rfid_model::Deployment, Coverage, Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 400,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn trace_is_complete_and_consistent() {
        let (d, c, g) = setup(0);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s = DistributedScheduler::default();
        let set = s.schedule(&input);
        let trace = s.last_trace.clone().unwrap();
        assert!(!trace.is_empty());
        // Every activated reader has exactly one ColoredRed event.
        let red_events: Vec<u32> = trace
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::ColoredRed { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        let mut red_sorted: Vec<usize> = red_events.iter().map(|&n| n as usize).collect();
        red_sorted.sort_unstable();
        assert_eq!(red_sorted, set);
        // Heads announce non-empty removals and rounds are ordered.
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        let heads = trace
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::HeadElected { .. }))
            .count();
        assert!(heads >= 1);
        // Head elections happen only after the gather phase (2c+2 = 8).
        for (round, e) in &trace {
            if matches!(e, TraceEvent::HeadElected { .. }) {
                assert!(*round >= 8, "head elected during gather at round {round}");
            }
        }
    }

    #[test]
    fn crashed_readers_never_activate() {
        let (d, c, g) = setup(1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // Crash the globally heaviest reader before it can announce.
        let mut weights = rfid_model::WeightEvaluator::new(&c);
        let heaviest = (0..d.n_readers())
            .max_by_key(|&v| weights.singleton_weight(v, &unread))
            .unwrap();
        let mut s = DistributedScheduler {
            crashes: vec![(heaviest, 0)],
            ..Default::default()
        };
        let set = s.schedule(&input);
        assert!(!set.contains(&heaviest));
        assert!(d.is_feasible(&set));
    }

    #[test]
    fn late_crash_changes_little() {
        let (d, c, g) = setup(2);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let clean = DistributedScheduler::default().schedule(&input);
        // A crash far beyond convergence never fires.
        let mut s = DistributedScheduler {
            crashes: vec![(0, 10_000)],
            ..Default::default()
        };
        let with_late_crash = s.schedule(&input);
        assert_eq!(clean, with_late_crash);
    }

    #[test]
    fn mass_crash_still_yields_feasible_output() {
        let (d, c, g) = setup(3);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // A third of the fleet dies mid-gather.
        let mut s = DistributedScheduler {
            crashes: (0..10).map(|v| (v, 3u64)).collect(),
            ..Default::default()
        };
        let set = s.schedule(&input);
        assert!(d.is_feasible(&set));
        for v in 0..10 {
            assert!(!set.contains(&v), "crashed reader {v} activated");
        }
    }
}

#[cfg(test)]
mod fault_plan_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    // Denser than the legacy modules' setup (smaller region) so crash and
    // partition faults actually hit connected neighbourhoods.
    fn setup(seed: u64) -> (rfid_model::Deployment, Coverage, Csr) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 400,
            region_side: 60.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        (d, c, g)
    }

    #[test]
    fn none_plan_is_bit_identical_to_legacy_run() {
        let (d, c, g) = setup(0);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut legacy = DistributedScheduler::default();
        let mut planned = DistributedScheduler::default().with_faults(FaultPlan::none());
        let x = legacy.schedule(&input);
        let y = planned.schedule(&input);
        assert_eq!(x, y);
        assert_eq!(legacy.last_stats, planned.last_stats);
        assert_eq!(legacy.last_trace, planned.last_trace);
        let summary = planned.last_summary.unwrap();
        assert!(summary.completed && summary.quiescent);
        assert_eq!(summary.crashed, 0);
        assert_eq!(summary.gave_up, 0);
        assert_eq!(summary.suspected, 0);
        assert_eq!(summary.repaired, 0);
    }

    #[test]
    fn retransmissions_recover_from_loss() {
        let (d, c, g) = setup(1);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut s =
            DistributedScheduler::default().with_faults(FaultPlan::seeded(11).with_loss(0.3));
        let set = s.schedule(&input);
        assert!(d.is_feasible(&set), "{set:?}");
        let stats = s.last_stats.unwrap();
        assert!(stats.retransmits > 0, "loss must trigger retransmissions");
        let summary = s.last_summary.unwrap();
        assert!(summary.completed, "{summary:?}");
        assert!(summary.quiescent, "{summary:?}");
        assert_eq!(summary.survivors, 30);
    }

    #[test]
    fn reliability_recovers_most_of_the_weight_under_loss() {
        // The legacy lossy run has no acks, so knowledge floods stay
        // truncated; the reliability layer should claw most weight back.
        let mut clean = 0usize;
        let mut reliable = 0usize;
        for seed in 0..4u64 {
            let (d, c, g) = setup(seed);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            clean += input.weight_of(&DistributedScheduler::default().schedule(&input));
            let mut s =
                DistributedScheduler::default().with_faults(FaultPlan::seeded(seed).with_loss(0.2));
            reliable += input.weight_of(&s.schedule(&input));
        }
        assert!(
            reliable * 10 >= clean * 8,
            "20% loss with retransmission should retain ≥ 80% of the weight \
             ({reliable} vs {clean})"
        );
    }

    #[test]
    fn head_crash_triggers_reelection() {
        let (d, c, g) = setup(2);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // Crash the heaviest *non-isolated* reader right after gather
        // begins: its neighbourhood waits for it, hears nothing, and must
        // suspect it to re-elect. (An isolated reader blocks nobody, so
        // crashing one would never exercise the watchdog.)
        let mut weights = rfid_model::WeightEvaluator::new(&c);
        let heaviest = (0..d.n_readers())
            .filter(|&v| !g.neighbors(v).is_empty())
            .max_by_key(|&v| (weights.singleton_weight(v, &unread), v))
            .unwrap();
        let mut s = DistributedScheduler::default()
            .with_faults(FaultPlan::seeded(3).with_crash(heaviest, 1));
        let set = s.schedule(&input);
        assert!(d.is_feasible(&set), "{set:?}");
        assert!(!set.contains(&heaviest), "crashed reader activated");
        let summary = s.last_summary.unwrap();
        assert_eq!(summary.crashed, 1);
        assert_eq!(summary.survivors, 29);
        assert!(summary.completed, "{summary:?}");
        assert!(summary.suspected > 0, "watchdog never fired");
        let trace = s.last_trace.unwrap();
        let suspected_heaviest = trace.iter().any(|(_, e)| {
            matches!(e, TraceEvent::TimeoutSuspect { suspect, .. }
                     if *suspect == heaviest as u32)
        });
        assert!(suspected_heaviest, "nobody suspected the dead head");
        let reelected = trace.iter().any(|(_, e)| {
            matches!(e, TraceEvent::ReElected { deposed, .. }
                     if *deposed == heaviest as u32)
        });
        assert!(reelected, "no re-election replaced the dead head");
    }

    #[test]
    fn identical_plans_replay_identical_runs() {
        let (d, c, g) = setup(3);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let plan = FaultPlan::seeded(42)
            .with_loss(0.25)
            .with_delay(2)
            .with_crash(5, 20);
        let mut a = DistributedScheduler::default().with_faults(plan.clone());
        let mut b = DistributedScheduler::default().with_faults(plan);
        let x = a.schedule(&input);
        let y = b.schedule(&input);
        assert_eq!(x, y);
        assert_eq!(a.last_stats, b.last_stats);
        assert_eq!(a.last_trace, b.last_trace);
        assert_eq!(a.last_summary, b.last_summary);
    }

    #[test]
    fn partition_heals_and_protocol_completes() {
        let (d, c, g) = setup(4);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        // Cut the low half from the high half for the whole gather phase.
        let plan = FaultPlan::seeded(9).with_partition(0..15, 15..30, 0, 12);
        let mut s = DistributedScheduler::default().with_faults(plan);
        let set = s.schedule(&input);
        assert!(d.is_feasible(&set), "{set:?}");
        let summary = s.last_summary.unwrap();
        assert!(summary.completed && summary.quiescent, "{summary:?}");
        assert_eq!(summary.crashed, 0);
    }

    #[test]
    fn total_crash_of_all_but_one_still_terminates() {
        let (d, c, g) = setup(5);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let mut plan = FaultPlan::seeded(1);
        for v in 1..30 {
            plan = plan.with_crash(v, 2);
        }
        let mut s = DistributedScheduler::default().with_faults(plan);
        let set = s.schedule(&input);
        assert!(d.is_feasible(&set), "{set:?}");
        let summary = s.last_summary.unwrap();
        assert_eq!(summary.survivors, 1);
        assert!(
            summary.completed,
            "the lone survivor must still colour itself"
        );
        assert!(
            set.iter().all(|&v| v == 0),
            "only the survivor may activate"
        );
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::{Coverage, RadiusModel};

    #[test]
    fn feasible_under_bounded_asynchrony() {
        for seed in 0..4u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 30,
                n_tags: 400,
                region_side: 100.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 14.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut s = DistributedScheduler {
                delay: Some((3, seed)),
                ..Default::default()
            };
            let set = s.schedule(&input);
            assert!(d.is_feasible(&set), "seed {seed}: {set:?}");
            // asynchrony costs some weight but not everything
            let clean = DistributedScheduler::default().schedule(&input);
            let w_delay = input.weight_of(&set) as f64;
            let w_clean = input.weight_of(&clean) as f64;
            assert!(
                w_delay >= 0.4 * w_clean,
                "seed {seed}: {w_delay} vs {w_clean}"
            );
        }
    }
}
