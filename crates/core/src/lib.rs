#![warn(missing_docs)]
//! # rfid-core
//!
//! The paper's contribution: one-shot reader-activation schedulers and the
//! greedy minimum-covering-schedule driver built on them.
//!
//! ## One-shot schedulers (Maximum Weighted Feasible Scheduling set)
//!
//! | Module | Paper | Assumptions |
//! |---|---|---|
//! | [`ptas`] | Algorithm 1 | central entity, locations known, arbitrary radii |
//! | [`local_greedy`] | Algorithm 2 | central entity, **no** locations (interference graph only) |
//! | [`distributed`] | Algorithm 3 | **no** central entity, no locations |
//! | [`colorwave`] | CA baseline \[21\] | distributed colouring |
//! | [`hill_climbing`] | GHC baseline | centralized greedy |
//! | [`exact`] | — | exponential ground truth for tests/ablations |
//!
//! All implement [`OneShotScheduler`]; every returned set is a *feasible
//! scheduling set* (pairwise independent readers — no RTc), and its quality
//! is the Definition-3 weight `w(X)`: unread tags covered by exactly one
//! activated reader.
//!
//! ## Covering schedules (MCS)
//!
//! [`mcs::covering_schedule`] iterates a one-shot scheduler slot by slot,
//! marking well-covered tags as served, until every coverable tag has
//! been read — the paper's `log n`-approximation backbone (Theorem 1).
//! [`McsOptions`] selects the algorithm, the [`mcs::FaultPolicy`] and the
//! observation sinks (DESIGN.md §8); it is the only covering-schedule
//! entry point — the pre-0.1 `greedy`/`try_greedy`/
//! `resilient_covering_schedule` shims were removed.
//!
//! ## Observability
//!
//! Every scheduler and the MCS drivers emit spans/counters/histograms
//! through the [`rfid_obs`] facade when a subscriber is attached (via
//! [`OneShotInput::builder`] or [`McsOptions::subscriber`]). Subscribers
//! observe only: schedules are bit-identical with metrics on or off.

pub mod arena;
pub mod colorwave;
pub mod distributed;
pub mod exact;
pub mod hill_climbing;
pub mod local_greedy;
pub mod local_search;
pub mod mcs;
pub mod multichannel;
pub mod par;
pub mod ptas;
pub mod qlearning;
pub mod registry;
pub mod scheduler;
pub mod verify;

pub use arena::{AliveSet, BallScratch, SlotArena};
pub use colorwave::Colorwave;
pub use distributed::{DistributedScheduler, RunSummary, TraceEvent};
pub use exact::ExactScheduler;
pub use hill_climbing::HillClimbing;
pub use local_greedy::LocalGreedy;
pub use local_search::{improve_schedule, ImprovementReport};
pub use mcs::{
    covering_schedule, covering_schedule_with, CoveringSchedule, FaultPolicy, McsOptions, McsRun,
    ResilientSchedule, ScheduleError, SlotRecord,
};
pub use multichannel::{
    multichannel_covering_schedule, ChannelAssignment, MultiChannelGreedy, MultiChannelSchedule,
};
pub use ptas::PtasScheduler;
pub use qlearning::QLearningScheduler;
pub use registry::{FeasibleSet, Scheduler, SchedulerEntry, SchedulerRegistry};
pub use scheduler::{
    make_scheduler, AlgorithmKind, OneShotInput, OneShotInputBuilder, OneShotScheduler,
};
pub use verify::{verify_covering_schedule, ScheduleViolation};
