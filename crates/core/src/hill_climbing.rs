//! Greedy Hill-Climbing baseline (GHC, paper Section VI).
//!
//! "At each step, we select a reader to add to current active reader set,
//! in order to maximize the incremental weight together with other active
//! readers at this time-slot. Then we keep adding the reader to the active
//! set one by one recursively until the weight starts to decrease (the
//! incremental weight becomes negative) due to various collisions."
//!
//! Feasibility is maintained throughout: only readers independent from the
//! current active set are candidates (an RTc-violating addition would zero
//! out a victim reader, which the incremental weight model cannot express —
//! and the paper's feasible-set definition forbids it anyway).
//!
//! The scan over candidates is a singly linked list threaded through the
//! singleton-sorted order: a candidate that becomes active or blocked is
//! unlinked the next time the scan passes it, and — both conditions being
//! monotone within one call — never looked at again. Combined with the
//! persistent [`rfid_model::IncrementalCore`] this turns the
//! quadratic-leaning pick loop into `O(additions × live-prefix)` with an
//! allocation-free warm path across covering-schedule slots.

use crate::scheduler::{OneShotInput, OneShotScheduler};
use rfid_model::{IncrementalCore, ReaderId};
use rfid_obs::{counter, histogram, span};

/// The GHC baseline scheduler (plus its cross-call scratch).
#[derive(Debug, Clone, Default)]
pub struct HillClimbing {
    /// When `true`, stop only when the best incremental weight is strictly
    /// negative (the paper's literal rule, admitting zero-gain additions);
    /// when `false` (default), stop at non-positive increments — a slightly
    /// stronger variant that avoids pointless RRc exposure.
    pub admit_zero_gain: bool,
    inc: IncrementalCore,
    blocked: Vec<bool>,
    /// Candidate readers sorted by (singleton desc, id asc).
    order: Vec<u32>,
    /// `next[i]` = index into `order` of the next live candidate after
    /// position `i` (`order.len()` terminates), maintained by unlinking.
    next: Vec<u32>,
    allocs: u64,
}

impl OneShotScheduler for HillClimbing {
    fn name(&self) -> &'static str {
        "ghc"
    }

    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        let sub = input.subscriber();
        let _span = span!(sub, "ghc.schedule");
        let n = input.deployment.n_readers();
        self.inc.reset(input.coverage, input.unread);
        if self.blocked.len() != n {
            self.blocked = vec![false; n];
            self.allocs += 1;
        } else {
            self.blocked.fill(false);
        }
        // Lazy bound scan: sub-additivity gives `delta_if_added(v) ≤
        // w({v})`, and the singleton weights are fixed for the whole call,
        // so scanning candidates in descending singleton order lets each
        // pick stop as soon as the remaining singletons fall *strictly*
        // below the best delta found — candidates that could still tie
        // (singleton == best delta) are visited, preserving the id
        // tie-break exactly.
        let singleton = input.singleton_or_compute();
        self.order.clear();
        if self.order.capacity() < n {
            self.allocs += 1;
            self.order.reserve(n);
        }
        if self.admit_zero_gain {
            // Zero-gain additions are admissible, so zero-singleton
            // readers (delta exactly 0) stay in the candidate pool.
            self.order.extend(0..n as u32);
        } else if let Some(p) = input.positive_readers() {
            // The covering-schedule driver already maintains the positive
            // set — reuse it and skip the O(n) scan.
            self.order.extend(p.iter().map(|&v| v as u32));
        } else {
            // Strict mode adds only positive deltas; a zero-singleton
            // reader's delta is always 0 and its presence never changes
            // the selected best (a scan that would stop on it stops on
            // the next candidate, or the list end, with the same state).
            self.order
                .extend((0..n as u32).filter(|&v| singleton[v as usize] > 0));
        }
        self.order.sort_unstable_by(|&a, &b| {
            singleton[b as usize]
                .cmp(&singleton[a as usize])
                .then(a.cmp(&b))
        });
        let k = self.order.len();
        self.next.clear();
        if self.next.capacity() < n {
            self.allocs += 1;
            self.next.reserve(n);
        }
        self.next.extend(1..=k as u32);
        let mut head = 0u32;
        loop {
            // Best feasible addition by incremental weight; ties by id
            // (explicit `(delta, Reverse(v))` order — the scan no longer
            // runs in id order, so first-max-wins is not enough).
            let mut best: Option<(isize, ReaderId)> = None;
            let mut prev: Option<usize> = None;
            let mut i = head as usize;
            while i < k {
                let v = self.order[i] as usize;
                if self.blocked[v] || self.inc.is_active(v) {
                    // Monotone within this call — unlink for good.
                    let nx = self.next[i];
                    match prev {
                        None => head = nx,
                        Some(p) => self.next[p] = nx,
                    }
                    i = nx as usize;
                    continue;
                }
                if let Some((bd, _)) = best {
                    if (singleton[v] as isize) < bd {
                        break;
                    }
                }
                let delta = self.inc.delta_if_added(input.coverage, v);
                if best.is_none_or(|(bd, bv)| {
                    (delta, std::cmp::Reverse(v)) > (bd, std::cmp::Reverse(bv))
                }) {
                    best = Some((delta, v));
                }
                prev = Some(i);
                i = self.next[i] as usize;
            }
            let Some((delta, v)) = best else { break };
            let stop = if self.admit_zero_gain {
                delta < 0
            } else {
                delta <= 0
            };
            if stop {
                break;
            }
            self.inc.add(input.coverage, v);
            counter!(sub, "ghc.additions");
            histogram!(sub, "ghc.incremental_weight", delta as u64);
            for &t in input.graph.neighbors(v) {
                self.blocked[t as usize] = true;
            }
        }
        let mut out = self.inc.active().to_vec();
        out.sort_unstable();
        out
    }

    fn take_scratch_allocations(&mut self) -> u64 {
        std::mem::take(&mut self.allocs) + self.inc.take_allocs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::interference::interference_graph;
    use rfid_model::{Coverage, Deployment, TagSet};

    fn figure2() -> (Deployment, Coverage) {
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        (d, c)
    }

    fn zero_gain() -> HillClimbing {
        HillClimbing {
            admit_zero_gain: true,
            ..HillClimbing::default()
        }
    }

    #[test]
    fn figure2_ghc_gets_stuck_on_the_middle_reader() {
        // GHC picks B first (singleton weight 3 beats A/C's 2). Adding A or
        // C then has increment 0 (one fresh tag, one overlap loss), so the
        // climb stalls at weight 3 either way — strictly worse than the
        // optimum {A, C} with weight 4. This is the local-optimum failure
        // the paper's Figure 2 illustrates.
        let (d, c) = figure2();
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(5);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let strict = HillClimbing::default().schedule(&input);
        assert_eq!(strict, vec![1]);
        assert_eq!(input.weight_of(&strict), 3);
        let literal = zero_gain().schedule(&input);
        assert_eq!(literal, vec![0, 1, 2]);
        assert_eq!(input.weight_of(&literal), 3);
        assert!(d.is_feasible(&literal));
    }

    #[test]
    fn never_adds_interfering_readers() {
        // Two overlapping readers: only one can be active.
        let d = Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(8.0, 5.0)],
            vec![6.0, 6.0],
            vec![3.0, 3.0],
            vec![
                Point::new(5.0, 5.0),
                Point::new(8.0, 6.0),
                Point::new(9.0, 5.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(3);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let set = HillClimbing::default().schedule(&input);
        assert_eq!(set.len(), 1);
        assert!(d.is_feasible(&set));
    }

    #[test]
    fn empty_when_no_tags() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(5.0, 5.0)],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(0);
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let set = HillClimbing::default().schedule(&input);
        assert!(set.is_empty(), "no positive increment exists without tags");
    }

    #[test]
    fn zero_gain_variant_may_add_more_readers() {
        // A reader covering only already-read tags has delta 0: the literal
        // paper rule admits it, the default rejects it.
        let d = Deployment::new(
            Rect::square(40.0),
            vec![Point::new(5.0, 5.0), Point::new(30.0, 30.0)],
            vec![4.0, 4.0],
            vec![2.0, 2.0],
            vec![Point::new(5.0, 5.0), Point::new(30.0, 30.0)],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut unread = TagSet::all_unread(2);
        unread.mark_read(1); // reader 1's only tag is gone
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let strict = HillClimbing::default().schedule(&input);
        assert_eq!(strict, vec![0]);
        let lax = zero_gain().schedule(&input);
        assert_eq!(lax, vec![0, 1]);
    }

    #[test]
    fn reused_instance_matches_fresh_instances_and_stops_allocating() {
        use rfid_model::{RadiusModel, Scenario, ScenarioKind};
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 250,
            region_side: 90.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 12.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(11);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut unread;
        for mut warm in [HillClimbing::default(), zero_gain()] {
            unread = TagSet::all_unread(d.n_tags());
            for round in 0..4 {
                let input = OneShotInput::new(&d, &c, &g, &unread);
                let from_warm = warm.schedule(&input);
                let mut fresh = HillClimbing {
                    admit_zero_gain: warm.admit_zero_gain,
                    ..HillClimbing::default()
                };
                assert_eq!(from_warm, fresh.schedule(&input), "round {round}");
                if round == 0 {
                    assert!(warm.take_scratch_allocations() > 0);
                } else {
                    assert_eq!(warm.take_scratch_allocations(), 0, "round {round}");
                }
                let served = rfid_model::WeightEvaluator::new(&c).well_covered(&from_warm, &unread);
                unread.mark_all_read(&served);
            }
        }
    }
}
