//! Covering-schedule verification.
//!
//! A [`CoveringSchedule`] may travel — serialized
//! to JSON by the CLI, produced by a third-party scheduler, or replayed
//! months later against a re-surveyed deployment. [`verify_covering_schedule`]
//! re-derives every claim the structure makes from the deployment alone
//! and reports the first violation: an RTc pair inside a slot, a served
//! tag that was not well-covered, a double-served tag, or coverable tags
//! left unread at the end.

use crate::mcs::CoveringSchedule;
use rfid_model::{audit_activation, Coverage, Deployment, TagSet};

/// Why a schedule failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// Slot `slot` activates an interfering reader pair.
    Infeasible {
        /// Slot index.
        slot: usize,
        /// The jammed/jamming pair (victim, aggressor).
        pair: (usize, usize),
    },
    /// Slot `slot` claims tags that are not its Definition-1 well-covered
    /// set.
    WrongServedSet {
        /// Slot index.
        slot: usize,
    },
    /// `tag` appears in more than one slot's served list.
    DoubleServed {
        /// The repeated tag.
        tag: usize,
    },
    /// Coverable tags remain unread after the final slot.
    Incomplete {
        /// How many coverable tags were never served.
        remaining: usize,
    },
    /// The `uncoverable` list disagrees with the coverage table.
    WrongUncoverable,
}

/// Verifies `schedule` against `deployment` from first principles.
pub fn verify_covering_schedule(
    deployment: &Deployment,
    schedule: &CoveringSchedule,
) -> Result<(), ScheduleViolation> {
    let coverage = Coverage::build(deployment);
    let mut unread = TagSet::all_unread(deployment.n_tags());
    for (i, slot) in schedule.slots.iter().enumerate() {
        let audit = audit_activation(deployment, &coverage, &slot.active, &unread);
        if let Some(&(victim, aggressor)) = audit.rtc_pairs.first() {
            return Err(ScheduleViolation::Infeasible {
                slot: i,
                pair: (victim, aggressor),
            });
        }
        if audit.well_covered != slot.served {
            return Err(ScheduleViolation::WrongServedSet { slot: i });
        }
        for &t in &slot.served {
            if !unread.is_unread(t) {
                return Err(ScheduleViolation::DoubleServed { tag: t });
            }
            unread.mark_read(t);
        }
    }
    let remaining = (0..deployment.n_tags())
        .filter(|&t| unread.is_unread(t) && coverage.is_coverable(t))
        .count();
    if remaining > 0 {
        return Err(ScheduleViolation::Incomplete { remaining });
    }
    let expected_uncoverable: Vec<usize> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    if schedule.uncoverable != expected_uncoverable {
        return Err(ScheduleViolation::WrongUncoverable);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hill_climbing::HillClimbing;
    use crate::mcs::{covering_schedule_with, McsOptions, SlotRecord};
    use rfid_model::interference::interference_graph;
    use rfid_model::scenario::{Scenario, ScenarioKind};
    use rfid_model::RadiusModel;

    fn setup(seed: u64) -> (rfid_model::Deployment, CoveringSchedule) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 15,
            n_tags: 150,
            region_side: 70.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 10.0,
                lambda_interrogation: 5.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let schedule = covering_schedule_with(
            &d,
            &c,
            &g,
            &mut HillClimbing::default(),
            &McsOptions::new().max_slots(10_000),
        )
        .unwrap()
        .schedule;
        (d, schedule)
    }

    #[test]
    fn genuine_schedules_verify() {
        for seed in 0..4 {
            let (d, schedule) = setup(seed);
            assert_eq!(
                verify_covering_schedule(&d, &schedule),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn truncated_schedule_is_incomplete() {
        let (d, mut schedule) = setup(1);
        schedule.slots.pop();
        match verify_covering_schedule(&d, &schedule) {
            Err(ScheduleViolation::Incomplete { remaining }) => assert!(remaining > 0),
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn doctored_served_set_is_caught() {
        let (d, mut schedule) = setup(2);
        // Claim an extra tag in slot 0 (steal it from a later slot).
        let stolen = schedule.slots.last().unwrap().served[0];
        schedule.slots[0].served.push(stolen);
        schedule.slots[0].served.sort_unstable();
        assert!(matches!(
            verify_covering_schedule(&d, &schedule),
            Err(ScheduleViolation::WrongServedSet { slot: 0 })
        ));
    }

    #[test]
    fn interfering_activation_is_caught() {
        let (d, mut schedule) = setup(3);
        // Find an interfering pair and force both into slot 0.
        let g = interference_graph(&d);
        let (a, b) = g.edges()[0];
        schedule.slots[0].active = vec![a, b];
        match verify_covering_schedule(&d, &schedule) {
            Err(ScheduleViolation::Infeasible { slot: 0, .. }) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn wrong_uncoverable_list_is_caught() {
        let (d, mut schedule) = setup(0);
        schedule.uncoverable.push(0); // tag 0 is actually coverable (it was served)
        let r = verify_covering_schedule(&d, &schedule);
        assert!(
            matches!(r, Err(ScheduleViolation::WrongUncoverable)),
            "got {r:?}"
        );
    }

    #[test]
    fn empty_schedule_on_empty_deployment_verifies() {
        let d = rfid_model::Deployment::new(
            rfid_geometry::Rect::square(5.0),
            vec![],
            vec![],
            vec![],
            vec![],
        );
        let schedule = CoveringSchedule {
            slots: vec![],
            uncoverable: vec![],
        };
        assert_eq!(verify_covering_schedule(&d, &schedule), Ok(()));
        // a stray slot claiming nothing is fine; claiming a tag is not
        let schedule = CoveringSchedule {
            slots: vec![SlotRecord {
                active: vec![],
                served: vec![],
                fallback: false,
            }],
            uncoverable: vec![],
        };
        assert_eq!(verify_covering_schedule(&d, &schedule), Ok(()));
    }
}
