//! Deterministic parallel-scoring facade (DESIGN.md §7).
//!
//! Every scheduler hot loop that fans out goes through this module, which
//! gives the workspace exactly one place where threads are introduced and
//! one determinism contract to audit:
//!
//! * **Bit-identical results.** Each primitive is defined by its sequential
//!   semantics; the parallel implementation only changes *when* work runs,
//!   never *what* is returned. [`map`]/[`map_with`] preserve input order;
//!   [`argmax_by_key`] resolves ties toward the smallest index regardless
//!   of chunking (callers embed richer tie-breaks — e.g. the scheduler
//!   `(weight, Reverse(id))` order — in the key itself).
//! * **Chunk-count independence.** Results are reduced in chunk order, so
//!   1, 2, or N chunks produce the same value (enforced by the
//!   differential tests in `tests/perf_equivalence.rs`).
//! * **Feature-gated.** Built without the `parallel` feature the facade
//!   compiles to plain loops and the dependency on the thread pool
//!   disappears.
//!
//! Fine-grained callers pass a work estimate through the `min_work`
//! thresholds so tiny instances (every unit test, the paper's n = 50
//! evaluation) never pay pool-dispatch overhead.
//!
//! Chunk boundaries are rounded up to [`CHUNK_ALIGN`] elements so that
//! workers writing adjacent output ranges (or popcounting adjacent bitset
//! words) never share a cache line — an alignment choice, invisible in
//! the results by the chunk-count-independence contract above.

/// Elements per chunk-boundary alignment step. 64 covers a full cache
/// line of `u8` flags and exactly one packed-bitset `u64` word of tags.
pub const CHUNK_ALIGN: usize = 64;

/// `len / chunks`, rounded up to a [`CHUNK_ALIGN`] multiple. Trailing
/// chunks may be short or empty; reduction order makes that unobservable.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
fn aligned_chunk_len(len: usize, chunks: usize) -> usize {
    len.div_ceil(chunks).next_multiple_of(CHUNK_ALIGN)
}

/// Work threshold (in scored elements) below which index scans stay
/// sequential. Pool dispatch costs a few microseconds per chunk; a scored
/// element here is ~10–100 ns, so parallelism starts paying around a few
/// thousand elements.
pub const MIN_PAR_INDEX_WORK: usize = 4096;

/// Number of worker threads the facade fans out to (1 without the
/// `parallel` feature).
pub fn threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Parallel `items.iter().map(f).collect()`, preserving input order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_chunked(items, None, f)
}

/// [`map`] with an explicit chunk count (`None` = one chunk per pool
/// thread). The chunk count changes scheduling only — the output is
/// identical for every value, which is what the differential tests sweep.
pub fn map_chunked<T, R, F>(items: &[T], chunks: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunks = chunks
        .unwrap_or_else(threads)
        .max(1)
        .min(items.len().max(1));
    if chunks <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    #[cfg(feature = "parallel")]
    {
        let chunk_len = aligned_chunk_len(items.len(), chunks);
        let mut results: Vec<Vec<R>> = (0..chunks).map(|_| Vec::new()).collect();
        let f = &f;
        rayon::scope(|s| {
            for (slot, chunk) in results.iter_mut().zip(items.chunks(chunk_len)) {
                s.spawn(move |_| *slot = chunk.iter().map(f).collect());
            }
        });
        results.into_iter().flatten().collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        items.iter().map(f).collect()
    }
}

/// Order-preserving parallel `(0..n).map(f).collect()`. `min_work` is
/// the caller's estimate of total scoring cost in elements; below
/// [`MIN_PAR_INDEX_WORK`] the map stays sequential.
pub fn map_index<R, F>(n: usize, min_work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = threads().max(1).min(n.max(1));
    if chunks <= 1 || n <= 1 || min_work < MIN_PAR_INDEX_WORK {
        return (0..n).map(f).collect();
    }
    #[cfg(feature = "parallel")]
    {
        let chunk_len = aligned_chunk_len(n, chunks);
        let mut results: Vec<Vec<R>> = (0..chunks).map(|_| Vec::new()).collect();
        let f = &f;
        rayon::scope(|s| {
            for (c, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| {
                    let lo = c * chunk_len;
                    let hi = ((c + 1) * chunk_len).min(n);
                    *slot = (lo..hi).map(f).collect();
                });
            }
        });
        results.into_iter().flatten().collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        (0..n).map(f).collect()
    }
}

/// Order-preserving parallel map with a per-chunk scratch state, for
/// scorers that are expensive to construct (e.g.
/// `rfid_model::WeightEvaluator`): `init` runs once per chunk, `f` reuses
/// the scratch across that chunk's items.
pub fn map_with<S, T, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let chunks = threads().min(items.len().max(1)).max(1);
    if chunks <= 1 || items.len() <= 1 {
        let mut scratch = init();
        return items.iter().map(|t| f(&mut scratch, t)).collect();
    }
    #[cfg(feature = "parallel")]
    {
        let chunk_len = aligned_chunk_len(items.len(), chunks);
        let mut results: Vec<Vec<R>> = (0..chunks).map(|_| Vec::new()).collect();
        let (init, f) = (&init, &f);
        rayon::scope(|s| {
            for (slot, chunk) in results.iter_mut().zip(items.chunks(chunk_len)) {
                s.spawn(move |_| {
                    let mut scratch = init();
                    *slot = chunk.iter().map(|t| f(&mut scratch, t)).collect();
                });
            }
        });
        results.into_iter().flatten().collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut scratch = init();
        items.iter().map(|t| f(&mut scratch, t)).collect()
    }
}

/// Runs `f(i, &mut states[i])` for every state, in parallel when the
/// pool has threads to spare. The index→state assignment is fixed, so a
/// caller that derives its work split from `i` (e.g. chunk `i` of a
/// slice) gets the same partition — and therefore the same per-state
/// result — at every pool width. Purely a scheduling primitive: it
/// imposes no reduction; pair it with a fixed-order merge such as
/// [`merge_planes`] for a deterministic fold.
pub fn for_each_state<S, F>(states: &mut [S], f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    if states.len() <= 1 || threads() <= 1 {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let f = &f;
        rayon::scope(|sc| {
            for (i, s) in states.iter_mut().enumerate() {
                sc.spawn(move |_| f(i, s));
            }
        });
    }
    #[cfg(not(feature = "parallel"))]
    {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
    }
}

/// Folds per-lane saturating-counter bitplanes into `main`, column-
/// parallel and bit-identical to the sequential fixed-order fold.
///
/// Each lane is a `(ge1, ge2)` pair of equal-length word planes encoding
/// "covered ≥ 1 / ≥ 2 times" for a disjoint share of one activation; the
/// merge accumulates them into `main` with the saturating-add recurrence
///
/// ```text
/// g2 |= l2 | (g1 & l1);   g1 |= l1;
/// ```
///
/// which is associative in lane order and processed in ascending lane
/// order for every word — so the merged planes equal the planes a single
/// sequential pass over all rows would have produced, regardless of how
/// many workers split the word range. Word ranges are cut on
/// [`CHUNK_ALIGN`] boundaries so workers never share a cache line.
pub fn merge_planes(main: (&mut [u64], &mut [u64]), lanes: &[(&[u64], &[u64])]) {
    let (g1, g2) = main;
    debug_assert_eq!(g1.len(), g2.len());
    fn merge_range(g1: &mut [u64], g2: &mut [u64], lanes: &[(&[u64], &[u64])], lo: usize) {
        for (l1, l2) in lanes {
            let (l1, l2) = (&l1[lo..lo + g1.len()], &l2[lo..lo + g1.len()]);
            for w in 0..g1.len() {
                g2[w] |= l2[w] | (g1[w] & l1[w]);
                g1[w] |= l1[w];
            }
        }
    }
    let chunks = threads().max(1);
    if chunks <= 1 || g1.len() < CHUNK_ALIGN {
        merge_range(g1, g2, lanes, 0);
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let chunk_len = aligned_chunk_len(g1.len(), chunks);
        rayon::scope(|sc| {
            let mut lo = 0usize;
            let (mut rest1, mut rest2) = (g1, g2);
            while !rest1.is_empty() {
                let cut = chunk_len.min(rest1.len());
                let (c1, r1) = rest1.split_at_mut(cut);
                let (c2, r2) = rest2.split_at_mut(cut);
                let base = lo;
                sc.spawn(move |_| merge_range(c1, c2, lanes, base));
                rest1 = r1;
                rest2 = r2;
                lo += cut;
            }
        });
    }
    #[cfg(not(feature = "parallel"))]
    {
        merge_range(g1, g2, lanes, 0);
    }
}

/// `argmax` over indices `0..n` by an `Ord` key, skipping `None` keys.
/// Ties resolve toward the **smallest index** — the same answer as the
/// canonical sequential scan
/// `(0..n).filter_map(..).max_by(strictly-greater-replaces)` — for every
/// chunk count. `min_work` is the caller's estimate of total scoring cost
/// in elements; below [`MIN_PAR_INDEX_WORK`] the scan stays sequential.
pub fn argmax_by_key<K, F>(n: usize, min_work: usize, key: F) -> Option<(K, usize)>
where
    K: Ord + Send,
    F: Fn(usize) -> Option<K> + Sync,
{
    argmax_chunked(n, None, min_work, key)
}

/// [`argmax_by_key`] with an explicit chunk count (for the differential
/// tests; `None` = one chunk per pool thread).
pub fn argmax_chunked<K, F>(
    n: usize,
    chunks: Option<usize>,
    min_work: usize,
    key: F,
) -> Option<(K, usize)>
where
    K: Ord + Send,
    F: Fn(usize) -> Option<K> + Sync,
{
    fn seq_argmax<K: Ord>(
        range: std::ops::Range<usize>,
        key: impl Fn(usize) -> Option<K>,
    ) -> Option<(K, usize)> {
        let mut best: Option<(K, usize)> = None;
        for i in range {
            if let Some(k) = key(i) {
                // Strictly-greater replaces → first (smallest-index) max wins.
                if best.as_ref().is_none_or(|(bk, _)| k > *bk) {
                    best = Some((k, i));
                }
            }
        }
        best
    }

    let chunks = chunks.unwrap_or_else(threads).max(1).min(n.max(1));
    if chunks <= 1 || n <= 1 || min_work < MIN_PAR_INDEX_WORK {
        return seq_argmax(0..n, key);
    }
    #[cfg(feature = "parallel")]
    {
        let chunk_len = aligned_chunk_len(n, chunks);
        let mut results: Vec<Option<(K, usize)>> = (0..chunks).map(|_| None).collect();
        let key = &key;
        rayon::scope(|s| {
            for (c, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| {
                    let lo = c * chunk_len;
                    let hi = ((c + 1) * chunk_len).min(n);
                    *slot = seq_argmax(lo..hi, key);
                });
            }
        });
        // Reduce in chunk (= index) order with strictly-greater replacement:
        // identical to the sequential scan for any chunking.
        let mut best: Option<(K, usize)> = None;
        for candidate in results.into_iter().flatten() {
            if best.as_ref().is_none_or(|(bk, _)| candidate.0 > *bk) {
                best = Some(candidate);
            }
        }
        best
    }
    #[cfg(not(feature = "parallel"))]
    {
        seq_argmax(0..n, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential_for_every_chunking() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for chunks in [1, 2, 3, 7, 64, 500] {
            assert_eq!(map_chunked(&items, Some(chunks), |x| x * x), expect);
        }
        assert_eq!(map(&items, |x| x * x), expect);
    }

    #[test]
    fn map_index_matches_sequential_above_and_below_threshold() {
        let expect: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(map_index(1000, usize::MAX, |i| i * 3), expect);
        assert_eq!(map_index(1000, 0, |i| i * 3), expect);
        assert_eq!(map_index(0, usize::MAX, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_with_reuses_scratch_within_chunks() {
        let items: Vec<usize> = (0..100).collect();
        let out = map_with(&items, Vec::<usize>::new, |scratch, &x| {
            scratch.push(x);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn argmax_ties_resolve_to_smallest_index_for_every_chunking() {
        // Many duplicate keys; force the parallel path with a large
        // min_work.
        let keys: Vec<u32> = (0..1000u32).map(|i| i % 7).collect();
        let expect = Some((6u32, 6usize));
        for chunks in [1, 2, 3, 8, 999] {
            assert_eq!(
                argmax_chunked(keys.len(), Some(chunks), usize::MAX, |i| Some(keys[i])),
                expect
            );
        }
    }

    #[test]
    fn argmax_skips_none_and_handles_empty() {
        assert_eq!(
            argmax_by_key(10, usize::MAX, |i| (i % 2 == 1).then_some(i)),
            Some((9, 9))
        );
        assert_eq!(argmax_by_key::<usize, _>(0, 0, |_| None), None);
        assert_eq!(argmax_by_key::<usize, _>(5, 0, |_| None), None);
    }

    #[test]
    fn small_work_stays_sequential_but_equal() {
        let a = argmax_by_key(100, 0, Some);
        let b = argmax_by_key(100, usize::MAX, Some);
        assert_eq!(a, b);
        assert_eq!(a, Some((99, 99)));
    }
}
