//! Hierarchical shifted grid subdivisions (paper Section IV).
//!
//! Algorithm 1's PTAS partitions the interference disks into *levels* by
//! radius and, for each `(r, s)`-shifting, lays a grid over every level:
//!
//! * Level-`j` lines are the verticals `x = v/(k+1)^j` and horizontals
//!   `y = h/(k+1)^j`, `v, h ∈ ℤ`.
//! * The `(r, s)`-shifting keeps the vertical lines whose index `v ≡ r
//!   (mod k)` and the horizontal lines whose index `h ≡ s (mod k)`.
//! * Two consecutive *kept* lines per axis bound a **`j`-square** of side
//!   `k/(k+1)^j`; every `j`-square splits into `(k+1)²` `(j+1)`-squares,
//!   because `k+1 ≡ 1 (mod k)` makes every kept level-`j` line a kept
//!   level-`j+1` line (Erlebach–Jansen–Seidel).
//! * A level-`j` disk **survives** the shifting iff it intersects no
//!   boundary of any `j`-square, using the paper's half-open *hit*
//!   predicate `a − R_i < x_i ≤ a + R_i`.
//!
//! All coordinates here are in *scaled* units where the largest interference
//! radius is `1/2`; [`LevelAssignment`] computes the scaling and the level of
//! every disk.

use crate::disk::Disk;
use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Hard cap on the number of levels, guarding against degenerate radius
/// ratios (e.g. a zero radius) blowing up the hierarchy. `(k+1)^{-40}` is far
/// below any physically meaningful radius ratio.
pub const MAX_LEVELS: usize = 40;

/// An `(r, s)`-shifting of the hierarchical subdivision, `0 ≤ r, s < k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shifting {
    /// Vertical-line residue: kept lines have index ≡ r (mod k).
    pub r: usize,
    /// Horizontal-line residue: kept lines have index ≡ s (mod k).
    pub s: usize,
}

impl Shifting {
    /// All `k²` shiftings, in row-major order.
    pub fn all(k: usize) -> Vec<Shifting> {
        let mut out = Vec::with_capacity(k * k);
        for r in 0..k {
            for s in 0..k {
                out.push(Shifting { r, s });
            }
        }
        out
    }
}

/// Identifier of a `j`-square of a fixed `(r, s)`-shifting: `ix`/`iy` count
/// kept-line intervals along each axis (negative indices are legal — the
/// grid covers the whole plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SquareId {
    /// Hierarchy level `j` (0 = coarsest).
    pub level: u32,
    /// Kept-line interval index along x.
    pub ix: i64,
    /// Kept-line interval index along y.
    pub iy: i64,
}

/// Assignment of disks to levels, together with the world→scaled transform.
///
/// Level `j` holds the disks with `1/(k+1)^{j+1} < 2R ≤ 1/(k+1)^j` after
/// scaling the largest radius to exactly `1/2` (so the largest disks land on
/// level 0).
#[derive(Debug, Clone)]
pub struct LevelAssignment {
    /// Multiply world coordinates and radii by this to get scaled units.
    pub scale: f64,
    /// Per-disk level, parallel to the input radii slice.
    pub levels: Vec<u32>,
    /// Number of levels in use (`max level + 1`).
    pub num_levels: u32,
    /// The grid parameter `k ≥ 2`.
    pub k: usize,
}

impl LevelAssignment {
    /// Computes levels for the given world-space radii.
    ///
    /// # Panics
    /// If `k < 2`, if `radii` is empty, or if any radius is negative/NaN.
    pub fn new(radii: &[f64], k: usize) -> Self {
        assert!(k >= 2, "grid parameter k must be ≥ 2, got {k}");
        assert!(!radii.is_empty(), "LevelAssignment needs at least one disk");
        let mut r_max: f64 = 0.0;
        for &r in radii {
            assert!(r >= 0.0 && r.is_finite(), "invalid radius {r}");
            r_max = r_max.max(r);
        }
        // All-zero radii degenerate to a single level with an arbitrary
        // scale; every disk is a point and trivially survives everything.
        let scale = if r_max > 0.0 { 0.5 / r_max } else { 1.0 };
        let base = (k + 1) as f64;
        let mut levels = Vec::with_capacity(radii.len());
        let mut max_level = 0u32;
        for &r in radii {
            let rs = r * scale;
            let level = if rs <= 0.0 {
                (MAX_LEVELS - 1) as u32
            } else {
                // j = ⌊log_{k+1} 1/(2R)⌋, clamped into [0, MAX_LEVELS).
                let raw = -(2.0 * rs).ln() / base.ln();
                // Nudge values that are within fp-noise of an integer down
                // to it, so a radius exactly on a level boundary (2R =
                // (k+1)^{-j}) classifies as level j per the ≤ in the paper.
                let nudged = (raw + 1e-9).floor();
                nudged.clamp(0.0, (MAX_LEVELS - 1) as f64) as u32
            };
            max_level = max_level.max(level);
            levels.push(level);
        }
        LevelAssignment {
            scale,
            levels,
            num_levels: max_level + 1,
            k,
        }
    }

    /// Scales a world-space disk into grid units.
    pub fn scale_disk(&self, center: Point, radius: f64) -> Disk {
        Disk::new(
            Point::new(center.x * self.scale, center.y * self.scale),
            radius * self.scale,
        )
    }
}

/// Geometry of one `(r, s)`-shifted hierarchical grid with parameter `k`.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalGrid {
    k: usize,
    shift: Shifting,
}

impl HierarchicalGrid {
    /// Creates the grid for a shifting. Panics if the shifting is out of
    /// range for `k`.
    pub fn new(k: usize, shift: Shifting) -> Self {
        assert!(k >= 2, "grid parameter k must be ≥ 2");
        assert!(
            shift.r < k && shift.s < k,
            "shifting {shift:?} out of range for k={k}"
        );
        HierarchicalGrid { k, shift }
    }

    /// Grid parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The shifting this grid realises.
    pub fn shifting(&self) -> Shifting {
        self.shift
    }

    /// Spacing of *all* level-`j` lines: `1/(k+1)^j`.
    #[inline]
    pub fn spacing(&self, level: u32) -> f64 {
        ((self.k + 1) as f64).powi(-(level as i32))
    }

    /// Side length of a `j`-square: `k/(k+1)^j`.
    #[inline]
    pub fn square_side(&self, level: u32) -> f64 {
        self.k as f64 * self.spacing(level)
    }

    /// Position of the kept vertical line with interval index `t` at `level`:
    /// `x = (r + k·t)/(k+1)^level`.
    #[inline]
    fn kept_vline(&self, level: u32, t: i64) -> f64 {
        (self.shift.r as f64 + self.k as f64 * t as f64) * self.spacing(level)
    }

    #[inline]
    fn kept_hline(&self, level: u32, t: i64) -> f64 {
        (self.shift.s as f64 + self.k as f64 * t as f64) * self.spacing(level)
    }

    /// The `j`-square containing the (scaled-unit) point `p`. Points exactly
    /// on a kept line belong to the square on their right/top.
    pub fn square_of(&self, p: Point, level: u32) -> SquareId {
        let sp = self.spacing(level);
        let ix = ((p.x / sp - self.shift.r as f64) / self.k as f64).floor() as i64;
        let iy = ((p.y / sp - self.shift.s as f64) / self.k as f64).floor() as i64;
        SquareId { level, ix, iy }
    }

    /// World extent of a square (in scaled units).
    pub fn square_bounds(&self, sq: SquareId) -> Rect {
        Rect::new(
            self.kept_vline(sq.level, sq.ix),
            self.kept_hline(sq.level, sq.iy),
            self.kept_vline(sq.level, sq.ix + 1),
            self.kept_hline(sq.level, sq.iy + 1),
        )
    }

    /// The parent `(j−1)`-square of a `j`-square; `None` for level 0.
    ///
    /// Kept level-`j−1` lines are kept level-`j` lines, so the parent's
    /// bounds contain the child's; we locate it by the child's centre.
    pub fn parent(&self, sq: SquareId) -> Option<SquareId> {
        if sq.level == 0 {
            return None;
        }
        Some(self.square_of(self.square_bounds(sq).center(), sq.level - 1))
    }

    /// `true` iff `child` is one of `parent`'s `(k+1)²` children.
    pub fn is_child_of(&self, child: SquareId, parent: SquareId) -> bool {
        child.level == parent.level + 1 && self.parent(child) == Some(parent)
    }

    /// Survive-disk test (paper §IV): the level-`level` disk survives iff it
    /// *hits* no kept vertical or horizontal line of that level.
    ///
    /// `disk` must be in scaled units. Only kept lines within one disk
    /// diameter of the centre can be hit, and a level-`j` disk's diameter is
    /// at most the level-`j` line spacing, so checking the three nearest
    /// kept lines per axis is exhaustive.
    pub fn survives(&self, disk: &Disk, level: u32) -> bool {
        let sp = self.spacing(level);
        let kf = self.k as f64;
        let tx = ((disk.center.x / sp - self.shift.r as f64) / kf).round() as i64;
        for t in (tx - 1)..=(tx + 1) {
            if disk.hits_vertical(self.kept_vline(level, t)) {
                return false;
            }
        }
        let ty = ((disk.center.y / sp - self.shift.s as f64) / kf).round() as i64;
        for t in (ty - 1)..=(ty + 1) {
            if disk.hits_horizontal(self.kept_hline(level, t)) {
                return false;
            }
        }
        true
    }

    /// The square a surviving disk lives in: the level-`level` square
    /// containing its centre (survival guarantees the whole disk is inside).
    pub fn home_square(&self, disk: &Disk, level: u32) -> SquareId {
        self.square_of(disk.center, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(k: usize, r: usize, s: usize) -> HierarchicalGrid {
        HierarchicalGrid::new(k, Shifting { r, s })
    }

    #[test]
    fn level_assignment_scales_largest_to_half() {
        let la = LevelAssignment::new(&[10.0, 5.0, 2.0], 3);
        assert_eq!(la.scale, 0.05);
        // scaled radii: 0.5, 0.25, 0.1 → 2R: 1, 0.5, 0.2
        // levels (k+1=4): ⌊log_4 1⌋=0, ⌊log_4 2⌋=0, ⌊log_4 5⌋=1
        assert_eq!(la.levels, vec![0, 0, 1]);
        assert_eq!(la.num_levels, 2);
    }

    #[test]
    fn level_boundary_classifies_inclusively() {
        // 2R exactly (k+1)^{-1}: level must be 1 (1/(k+1)^2 < 2R ≤ 1/(k+1)).
        let k = 3;
        // world radii: pick r_max = 0.5 so scale = 1; second radius 1/8 → 2R = 1/4.
        let la = LevelAssignment::new(&[0.5, 0.125], k);
        assert_eq!(la.levels, vec![0, 1]);
    }

    #[test]
    fn zero_radius_goes_to_max_level() {
        let la = LevelAssignment::new(&[1.0, 0.0], 2);
        assert_eq!(la.levels[1], (MAX_LEVELS - 1) as u32);
    }

    #[test]
    fn all_shiftings_enumerated() {
        let all = Shifting::all(3);
        assert_eq!(all.len(), 9);
        assert!(all.contains(&Shifting { r: 2, s: 0 }));
    }

    #[test]
    fn square_geometry_roundtrip() {
        let g = grid(3, 1, 2);
        for level in 0..4u32 {
            for &(x, y) in &[(0.3, 0.4), (-1.7, 2.9), (10.0, -5.5)] {
                let p = Point::new(x, y);
                let sq = g.square_of(p, level);
                let b = g.square_bounds(sq);
                assert!(
                    b.contains(p),
                    "level {level} point {p} square {sq:?} bounds {b:?}"
                );
                assert!(crate::approx_eq(b.width(), g.square_side(level)));
                assert!(crate::approx_eq(b.height(), g.square_side(level)));
            }
        }
    }

    #[test]
    fn kept_lines_nest_across_levels() {
        // A kept level-j line is a kept level-(j+1) line: v(k+1) ≡ v (mod k).
        let g = grid(4, 3, 1);
        for level in 0..3u32 {
            for t in -3i64..3 {
                let x = g.kept_vline(level, t);
                // index of this line at level+1: x / spacing(level+1)
                let v_next = (x / g.spacing(level + 1)).round() as i64;
                assert_eq!(
                    v_next.rem_euclid(g.k as i64),
                    g.shifting().r as i64,
                    "line {x} at level {level} not kept at level {}",
                    level + 1
                );
            }
        }
    }

    #[test]
    fn parent_contains_child() {
        let g = grid(3, 0, 0);
        for level in 1..4u32 {
            for &(x, y) in &[(0.1, 0.1), (2.3, -0.7), (-4.4, 5.9)] {
                let child = g.square_of(Point::new(x, y), level);
                let parent = g.parent(child).unwrap();
                assert_eq!(parent.level, level - 1);
                let cb = g.square_bounds(child);
                let pb = g.square_bounds(parent);
                assert!(
                    pb.contains_rect(&cb),
                    "child {cb:?} not inside parent {pb:?}"
                );
                assert!(g.is_child_of(child, parent));
            }
        }
    }

    #[test]
    fn each_square_has_k_plus_1_squared_children() {
        let g = grid(3, 1, 1);
        let parent = g.square_of(Point::new(0.5, 0.5), 0);
        let pb = g.square_bounds(parent);
        // Enumerate children by sampling centres of a fine (k+1)×(k+1) mesh.
        let mut children = std::collections::HashSet::new();
        let n = g.k + 1;
        for i in 0..n {
            for j in 0..n {
                let cx = pb.min_x + (i as f64 + 0.5) * pb.width() / n as f64;
                let cy = pb.min_y + (j as f64 + 0.5) * pb.height() / n as f64;
                let c = g.square_of(Point::new(cx, cy), 1);
                assert_eq!(g.parent(c), Some(parent));
                children.insert(c);
            }
        }
        assert_eq!(children.len(), (g.k + 1) * (g.k + 1));
    }

    #[test]
    fn survive_means_inside_home_square() {
        let g = grid(3, 2, 1);
        // Sweep a disk across the plane; whenever it survives, its home
        // square must strictly contain it.
        let level = 1u32;
        let radius = 0.4 * g.spacing(level) / 2.0; // well under half-spacing
        let mut survived = 0;
        let mut killed = 0;
        for i in 0..200 {
            for j in 0..40 {
                let c = Point::new(i as f64 * 0.013 - 1.0, j as f64 * 0.017 - 0.3);
                let d = Disk::new(c, radius);
                if g.survives(&d, level) {
                    survived += 1;
                    let b = g.square_bounds(g.home_square(&d, level));
                    // Survival uses the half-open hit predicate, so the disk
                    // may touch the boundary from inside but never cross it.
                    assert!(
                        d.center.x - d.radius >= b.min_x - crate::EPS
                            && d.center.x + d.radius <= b.max_x + crate::EPS
                            && d.center.y - d.radius >= b.min_y - crate::EPS
                            && d.center.y + d.radius <= b.max_y + crate::EPS,
                        "surviving disk {d:?} crosses its square {b:?}"
                    );
                } else {
                    killed += 1;
                }
            }
        }
        assert!(survived > 0 && killed > 0, "sweep should see both outcomes");
    }

    #[test]
    fn survival_rate_roughly_one_minus_two_over_k() {
        // Theorem 2 intuition: per axis a disk dies with probability ≈ 2R/(k·spacing)
        // under a random shift. With diameter = spacing/2 and k=4 the survive
        // probability per axis is 1 − 1/(2k) ≈ 0.875, both axes ≈ 0.77.
        let k = 4;
        let level = 0u32;
        let mut survived = 0usize;
        let mut total = 0usize;
        for r in 0..k {
            for s in 0..k {
                let g = grid(k, r, s);
                let radius = g.spacing(level) / 4.0; // diameter = spacing/2
                for i in 0..100 {
                    let c = Point::new(i as f64 * 0.0917 + 0.005, i as f64 * 0.0533 + 0.002);
                    total += 1;
                    if g.survives(&Disk::new(c, radius), level) {
                        survived += 1;
                    }
                }
            }
        }
        let rate = survived as f64 / total as f64;
        assert!(rate > 0.6 && rate < 0.9, "empirical survive rate {rate}");
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn k_of_one_rejected() {
        let _ = HierarchicalGrid::new(1, Shifting { r: 0, s: 0 });
    }

    #[test]
    fn scale_disk_applies_uniform_scale() {
        let la = LevelAssignment::new(&[10.0], 2);
        let d = la.scale_disk(Point::new(100.0, 40.0), 10.0);
        assert_eq!(d.center, Point::new(5.0, 2.0));
        assert_eq!(d.radius, 0.5);
    }
}
