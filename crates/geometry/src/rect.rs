//! Axis-aligned rectangles — deployment regions and grid squares.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub min_x: f64,
    /// Bottom edge.
    pub min_y: f64,
    /// Right edge.
    pub max_x: f64,
    /// Top edge.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extremes. Debug-asserts a non-degenerate
    /// ordering (`min ≤ max` on both axes).
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rect");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The square `[0, side] × [0, side]` — the paper's deployment region
    /// with `side = 100`.
    pub fn square(side: f64) -> Self {
        Rect::new(0.0, 0.0, side, side)
    }

    /// Rectangle spanning two corner points (any orientation).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Horizontal extent.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Vertical extent.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area `width × height`.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Closed containment of a point.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// `true` iff the closed rectangles overlap (sharing a boundary counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// `true` iff `other` lies entirely inside `self` (closed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Squared distance from `p` to the closest point of the rectangle
    /// (zero when `p` is inside). Used for disk–rect intersection tests.
    pub fn dist_sq_to_point(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// `true` iff a closed disk of `radius` around `center` intersects the
    /// rectangle.
    pub fn intersects_disk(&self, center: Point, radius: f64) -> bool {
        self.dist_sq_to_point(center) <= radius * radius
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect::new(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
    }

    /// Splits into four equal quadrants `[SW, SE, NW, NE]` (used by the
    /// quadtree).
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min_x, self.min_y, c.x, c.y),
            Rect::new(c.x, self.min_y, self.max_x, c.y),
            Rect::new(self.min_x, c.y, c.x, self.max_y),
            Rect::new(c.x, c.y, self.max_x, self.max_y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_metrics() {
        let r = Rect::new(1.0, 2.0, 4.0, 8.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 18.0);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
    }

    #[test]
    fn containment_includes_boundary() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.0 + 1e-9, 5.0)));
    }

    #[test]
    fn rect_rect_intersection() {
        let a = Rect::new(0.0, 0.0, 5.0, 5.0);
        let b = Rect::new(5.0, 5.0, 9.0, 9.0); // corner touch
        assert!(a.intersects(&b));
        let c = Rect::new(5.1, 5.1, 9.0, 9.0);
        assert!(!a.intersects(&c));
        assert!(a.contains_rect(&Rect::new(1.0, 1.0, 4.0, 4.0)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn point_distance() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.dist_sq_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.dist_sq_to_point(Point::new(5.0, 2.0)), 9.0);
        assert_eq!(r.dist_sq_to_point(Point::new(5.0, 6.0)), 25.0);
    }

    #[test]
    fn disk_intersection() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.intersects_disk(Point::new(3.0, 1.0), 1.0)); // touches edge
        assert!(!r.intersects_disk(Point::new(3.0, 1.0), 0.5));
        assert!(r.intersects_disk(Point::new(1.0, 1.0), 0.1)); // inside
    }

    #[test]
    fn quadrants_tile_the_rect() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let qs = r.quadrants();
        let total: f64 = qs.iter().map(|q| q.area()).sum();
        assert_eq!(total, r.area());
        for q in &qs {
            assert!(r.contains_rect(q));
        }
    }

    #[test]
    fn from_corners_any_orientation() {
        let r = Rect::from_corners(Point::new(4.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(r, Rect::new(1.0, 1.0, 4.0, 5.0));
    }

    #[test]
    fn inflate_grows_all_sides() {
        let r = Rect::square(2.0).inflate(1.0);
        assert_eq!(r, Rect::new(-1.0, -1.0, 3.0, 3.0));
    }
}
