//! Planar vectors (displacements between [`Point`](crate::Point)s).

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A displacement in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// Zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Squared length.
    #[inline]
    pub fn len_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.len_sq().sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product). Positive iff
    /// `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction; returns `None` for (near-)zero
    /// vectors where the direction is undefined.
    pub fn normalized(&self) -> Option<Vec2> {
        let l = self.len();
        if l <= crate::EPS {
            None
        } else {
            Some(Vec2::new(self.x / l, self.y / l))
        }
    }

    /// Rotates the vector by 90° counter-clockwise.
    #[inline]
    pub fn perp(&self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_dot() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.len_sq(), 25.0);
        assert_eq!(v.len(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let east = Vec2::new(1.0, 0.0);
        let north = Vec2::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
        assert_eq!(east.cross(east), 0.0);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(0.0, 10.0);
        assert_eq!(v.normalized(), Some(Vec2::new(0.0, 1.0)));
        assert_eq!(Vec2::ZERO.normalized(), None);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vec2::new(1.0, 0.0);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
        assert_eq!(v.perp().perp(), -v);
    }

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
    }
}
