//! Point-region quadtree.
//!
//! The uniform grid in [`crate::grid`] is the workhorse index; the quadtree
//! complements it for *non-uniform* deployments (the clustered warehouse
//! scenarios in `rfid-model::scenario`) where bucket occupancy would be
//! badly skewed. Both indices answer the same closed-ball queries and are
//! cross-checked against each other in property tests.

use crate::point::Point;
use crate::rect::Rect;

const LEAF_CAPACITY: usize = 16;
const MAX_DEPTH: usize = 24;

#[derive(Debug, Clone)]
enum Node {
    /// Point indices stored directly.
    Leaf(Vec<u32>),
    /// Children in quadrant order `[SW, SE, NW, NE]`.
    Internal(Box<[Node; 4]>),
}

/// A quadtree over an immutable point set. Returned indices refer to the
/// slice passed to [`QuadTree::build`].
#[derive(Debug, Clone)]
pub struct QuadTree {
    points: Vec<Point>,
    bounds: Rect,
    root: Node,
}

impl QuadTree {
    /// Builds a quadtree over `points`. `bounds` is a hint for the root
    /// region; it is expanded as needed so every point lies inside the root
    /// (out-of-bounds points are thus fully supported).
    pub fn build(points: &[Point], bounds: Rect) -> Self {
        let mut eff = bounds;
        for p in points {
            assert!(p.is_finite(), "non-finite point in QuadTree::build");
            eff.min_x = eff.min_x.min(p.x);
            eff.min_y = eff.min_y.min(p.y);
            eff.max_x = eff.max_x.max(p.x);
            eff.max_y = eff.max_y.max(p.y);
        }
        let all: Vec<u32> = (0..points.len() as u32).collect();
        let root = Self::build_node(points, all, eff, 0);
        QuadTree {
            points: points.to_vec(),
            bounds: eff,
            root,
        }
    }

    fn build_node(points: &[Point], idxs: Vec<u32>, bounds: Rect, depth: usize) -> Node {
        if idxs.len() <= LEAF_CAPACITY || depth >= MAX_DEPTH {
            return Node::Leaf(idxs);
        }
        let qs = bounds.quadrants();
        let c = bounds.center();
        let mut parts: [Vec<u32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for i in idxs {
            let p = points[i as usize];
            // Classify by the centre split. Ties go to the east/north
            // child, matching Rect::quadrants boundaries.
            let qi = match (p.x >= c.x, p.y >= c.y) {
                (false, false) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (true, true) => 3,
            };
            parts[qi].push(i);
        }
        // All points in one quadrant at max refinement of identical points:
        // splitting further cannot help, keep as leaf to guarantee progress.
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 && depth + 1 >= MAX_DEPTH {
            let merged: Vec<u32> = parts.into_iter().flatten().collect();
            return Node::Leaf(merged);
        }
        let [p0, p1, p2, p3] = parts;
        Node::Internal(Box::new([
            Self::build_node(points, p0, qs[0], depth + 1),
            Self::build_node(points, p1, qs[1], depth + 1),
            Self::build_node(points, p2, qs[2], depth + 1),
            Self::build_node(points, p3, qs[3], depth + 1),
        ]))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding region the tree was built over.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Calls `f(i, p)` for every point with `‖p − center‖ ≤ radius`.
    pub fn for_each_within<F: FnMut(usize, Point)>(&self, center: Point, radius: f64, mut f: F) {
        if radius < 0.0 || self.points.is_empty() {
            return;
        }
        self.visit(&self.root, self.bounds, center, radius, &mut f);
    }

    fn visit<F: FnMut(usize, Point)>(
        &self,
        node: &Node,
        bounds: Rect,
        center: Point,
        radius: f64,
        f: &mut F,
    ) {
        // Points may lie slightly outside their node's bounds only at the
        // root (clamped placement), so inflate by 0 is fine below the root;
        // the root always passes this test anyway when any point matches.
        if !bounds.intersects_disk(center, radius) {
            return;
        }
        match node {
            Node::Leaf(idxs) => {
                let r_sq = radius * radius;
                for &i in idxs {
                    let p = self.points[i as usize];
                    if center.dist_sq(p) <= r_sq {
                        f(i as usize, p);
                    }
                }
            }
            Node::Internal(children) => {
                let qs = bounds.quadrants();
                for (child, qb) in children.iter().zip(qs.iter()) {
                    self.visit(child, *qb, center, radius, f);
                }
            }
        }
    }

    /// Indices of all points within the closed ball, sorted ascending.
    pub fn query_within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i, _| out.push(i));
        out.sort_unstable();
        out
    }

    /// Maximum depth actually realised (for diagnostics/tests).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Internal(c) => 1 + c.iter().map(d).max().unwrap_or(0),
            }
        }
        d(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn empty_tree() {
        let t = QuadTree::build(&[], Rect::square(10.0));
        assert!(t.is_empty());
        assert!(t.query_within(Point::new(5.0, 5.0), 100.0).is_empty());
    }

    #[test]
    fn small_tree_is_single_leaf() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let t = QuadTree::build(&pts, Rect::square(10.0));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.query_within(Point::ORIGIN, 2.0), vec![0, 1, 2]);
    }

    #[test]
    fn matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> = (0..800)
            .map(|_| Point::new(rng.random::<f64>() * 100.0, rng.random::<f64>() * 100.0))
            .collect();
        let t = QuadTree::build(&pts, Rect::square(100.0));
        for _ in 0..60 {
            let c = Point::new(rng.random::<f64>() * 100.0, rng.random::<f64>() * 100.0);
            let r = rng.random::<f64>() * 30.0;
            let mut expect: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| c.dist_sq(**p) <= r * r)
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            assert_eq!(t.query_within(c, r), expect);
        }
    }

    #[test]
    fn clustered_points_split_deeply_but_terminate() {
        // 200 identical points must not recurse forever.
        let pts = vec![Point::new(1.0, 1.0); 200];
        let t = QuadTree::build(&pts, Rect::square(10.0));
        assert!(t.depth() <= MAX_DEPTH);
        assert_eq!(t.query_within(Point::new(1.0, 1.0), 0.0).len(), 200);
    }

    #[test]
    fn points_outside_bounds_still_found() {
        let pts = vec![Point::new(-5.0, -5.0), Point::new(15.0, 15.0)];
        let t = QuadTree::build(&pts, Rect::square(10.0));
        assert_eq!(t.query_within(Point::new(-5.0, -5.0), 1.0), vec![0]);
        assert_eq!(t.query_within(Point::new(15.0, 15.0), 1.0), vec![1]);
    }
}
