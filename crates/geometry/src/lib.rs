#![warn(missing_docs)]
//! # rfid-geometry
//!
//! Two-dimensional geometry substrate for the multi-reader RFID scheduling
//! library.
//!
//! The crate provides the planar primitives the paper's model is phrased in
//! (points, disks, axis-aligned rectangles), deterministic random sampling of
//! deployments, spatial indices (uniform grid and quadtree) used to build
//! interference graphs and coverage tables in near-linear time, and the
//! *hierarchical shifted grid* subdivision that Algorithm 1's PTAS dynamic
//! program runs on.
//!
//! Everything here is dependency-light and purely computational; no RFID
//! semantics leak into this crate.
//!
//! ## Conventions
//!
//! * All coordinates are `f64` in an arbitrary planar unit (the paper uses a
//!   `100 × 100` square region).
//! * "Independence" and "coverage" predicates in the upper crates are defined
//!   with *strict* inequalities (`‖v_i − v_j‖ > max(R_i, R_j)`), so the
//!   comparison helpers here expose both strict and inclusive forms.

pub mod disk;
pub mod grid;
pub mod point;
pub mod quadtree;
pub mod rect;
pub mod sampling;
pub mod shifted_grid;
pub mod vec2;

pub use disk::Disk;
pub use grid::GridIndex;
pub use point::Point;
pub use quadtree::QuadTree;
pub use rect::Rect;
pub use shifted_grid::{HierarchicalGrid, LevelAssignment, Shifting, SquareId};
pub use vec2::Vec2;

/// Tolerance used by approximate floating-point comparisons in tests and
/// degenerate-case handling. Geometry predicates themselves are exact `f64`
/// comparisons; this epsilon is only for *constructive* routines (e.g. grid
/// cell snapping) where accumulated rounding could flip a classification.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` differ by at most [`EPS`] in absolute value.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }
}
