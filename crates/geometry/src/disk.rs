//! Disks — interference and interrogation regions.
//!
//! The paper associates every reader `v_i` with an interference disk
//! `O(v_i)` of radius `R_i` and an interrogation disk of radius `γ_i ≤ R_i`.
//! This module provides the containment / intersection / line-hit predicates
//! those definitions rest on, including the exact "hit" predicate used by the
//! PTAS survive-disk test (Section IV).

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A closed disk `{p : ‖p − center‖ ≤ radius}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    /// Centre of the disk.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Disk {
    /// Creates a disk. `radius` must be non-negative and finite; this is
    /// enforced with a debug assertion (upper layers validate user input).
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(
            radius >= 0.0 && radius.is_finite(),
            "invalid radius {radius}"
        );
        Disk { center, radius }
    }

    /// `true` iff `p` lies inside the closed disk.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.within(p, self.radius)
    }

    /// `true` iff `p` lies strictly inside the open disk.
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        self.center.within_strict(p, self.radius)
    }

    /// `true` iff the two closed disks share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Disk) -> bool {
        let r = self.radius + other.radius;
        self.center.dist_sq(other.center) <= r * r
    }

    /// `true` iff `other` is entirely inside `self` (closed containment).
    pub fn contains_disk(&self, other: &Disk) -> bool {
        if other.radius > self.radius {
            return false;
        }
        let slack = self.radius - other.radius;
        self.center.dist_sq(other.center) <= slack * slack
    }

    /// Paper Section IV: a disk `O(v_i)` *hits* the vertical line `x = a`
    /// iff `a − R_i < x_i ≤ a + R_i`. Note the half-open interval — this
    /// makes "hits" a partition-friendly predicate when lines are iterated
    /// left-to-right (a disk centred exactly `R_i` left of the line does not
    /// hit it, one centred exactly `R_i` right of it does).
    #[inline]
    pub fn hits_vertical(&self, a: f64) -> bool {
        a - self.radius < self.center.x && self.center.x <= a + self.radius
    }

    /// Horizontal counterpart of [`hits_vertical`](Self::hits_vertical):
    /// `b − R_i < y_i ≤ b + R_i`.
    #[inline]
    pub fn hits_horizontal(&self, b: f64) -> bool {
        b - self.radius < self.center.y && self.center.y <= b + self.radius
    }

    /// Tight axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        Rect::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// `true` iff the disk lies entirely inside `rect` **without touching its
    /// boundary** — the "does not intersect the boundary of any j-square"
    /// condition of the survive-disk test. Strict inequalities on all four
    /// sides.
    pub fn strictly_inside(&self, rect: &Rect) -> bool {
        self.center.x - self.radius > rect.min_x
            && self.center.x + self.radius < rect.max_x
            && self.center.y - self.radius > rect.min_y
            && self.center.y + self.radius < rect.max_y
    }

    /// Area `πR²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Area of the intersection of two disks (standard lens formula).
    ///
    /// Used by density heuristics and by tests that check RRc-overlap
    /// reasoning; returns `0.0` for disjoint disks and the smaller disk's
    /// area under containment.
    pub fn intersection_area(&self, other: &Disk) -> f64 {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d >= r1 + r2 {
            return 0.0;
        }
        if d <= (r1 - r2).abs() {
            let r = r1.min(r2);
            return std::f64::consts::PI * r * r;
        }
        let alpha = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
        let beta = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
        let a1 = r1 * r1 * alpha.acos();
        let a2 = r2 * r2 * beta.acos();
        let tri = 0.5
            * ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
                .max(0.0)
                .sqrt();
        a1 + a2 - tri
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn disk(x: f64, y: f64, r: f64) -> Disk {
        Disk::new(Point::new(x, y), r)
    }

    #[test]
    fn containment_is_closed() {
        let d = disk(0.0, 0.0, 2.0);
        assert!(d.contains(Point::new(2.0, 0.0)));
        assert!(!d.contains_strict(Point::new(2.0, 0.0)));
        assert!(!d.contains(Point::new(2.0 + 1e-9, 0.0)));
    }

    #[test]
    fn intersection_touching_counts() {
        let a = disk(0.0, 0.0, 1.0);
        let b = disk(2.0, 0.0, 1.0);
        assert!(a.intersects(&b));
        let c = disk(2.0 + 1e-9, 0.0, 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn disk_in_disk() {
        let big = disk(0.0, 0.0, 5.0);
        let small = disk(1.0, 1.0, 1.0);
        assert!(big.contains_disk(&small));
        assert!(!small.contains_disk(&big));
        let edge = disk(4.0, 0.0, 1.0);
        assert!(big.contains_disk(&edge)); // touches boundary from inside
        let out = disk(4.0 + 1e-9, 0.0, 1.0);
        assert!(!big.contains_disk(&out));
    }

    #[test]
    fn hit_predicate_is_half_open() {
        // Definition: O(v) hits x = a iff a − R < x_i ≤ a + R.
        let d = disk(0.0, 0.0, 1.0);
        // a = 1 ⇒ a − R = 0, and 0 < x_i = 0 fails: right tangent line not hit.
        assert!(!d.hits_vertical(1.0));
        // a = −1 ⇒ x_i = a + R boundary is included: left tangent line hit.
        assert!(d.hits_vertical(-1.0));
        assert!(d.hits_vertical(0.0));
    }

    #[test]
    fn hit_predicate_matches_definition() {
        let d = disk(5.0, 0.0, 2.0);
        // hits lines a with a−2 < 5 ≤ a+2, i.e. 3 ≤ a < 7
        assert!(d.hits_vertical(3.0));
        assert!(d.hits_vertical(6.999));
        assert!(!d.hits_vertical(7.0));
        assert!(!d.hits_vertical(2.999));
        let e = disk(0.0, 5.0, 2.0);
        assert!(e.hits_horizontal(3.0));
        assert!(!e.hits_horizontal(7.0));
    }

    #[test]
    fn strictly_inside_rejects_boundary_touch() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(disk(5.0, 5.0, 2.0).strictly_inside(&r));
        assert!(!disk(2.0, 5.0, 2.0).strictly_inside(&r)); // touches x=0
        assert!(!disk(5.0, 9.0, 2.0).strictly_inside(&r)); // crosses y=10
    }

    #[test]
    fn intersection_area_limits() {
        let a = disk(0.0, 0.0, 1.0);
        assert!(approx_eq(a.intersection_area(&disk(3.0, 0.0, 1.0)), 0.0));
        // full containment → area of small disk
        let small = disk(0.1, 0.0, 0.2);
        assert!(approx_eq(
            a.intersection_area(&small),
            std::f64::consts::PI * 0.04
        ));
        // coincident equal disks → own area
        assert!(approx_eq(a.intersection_area(&a), a.area()));
        // symmetric
        let b = disk(1.0, 0.5, 0.8);
        assert!(approx_eq(a.intersection_area(&b), b.intersection_area(&a)));
    }

    #[test]
    fn bounding_box_is_tight() {
        let d = disk(3.0, -1.0, 2.0);
        let bb = d.bounding_box();
        assert_eq!(bb, Rect::new(1.0, -3.0, 5.0, 1.0));
    }
}
