//! Deterministic random sampling of deployments.
//!
//! The paper's evaluation "uniformly and randomly distribute\[s\] 50 readers
//! and 1200 tags in a square region of side-length 100 units" and draws the
//! interference/interrogation radii from Poisson distributions with means
//! `λ_R` and `λ_r`. This module provides those samplers, generic over any
//! [`rand::Rng`], so every experiment is reproducible from a single seed.

use crate::point::Point;
use crate::rect::Rect;
use rand::Rng;

/// Samples `n` points uniformly at random in `rect`.
pub fn uniform_points<R: Rng + ?Sized>(rng: &mut R, n: usize, rect: Rect) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rect.min_x + rng.random::<f64>() * rect.width(),
                rect.min_y + rng.random::<f64>() * rect.height(),
            )
        })
        .collect()
}

/// Samples `n` points from a mixture of `centers.len()` isotropic Gaussian
/// clusters (standard deviation `sigma`), clamped into `rect`.
///
/// Used by the warehouse/dock scenarios where tags pile up on pallets
/// rather than spreading uniformly.
pub fn clustered_points<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    rect: Rect,
    centers: &[Point],
    sigma: f64,
) -> Vec<Point> {
    assert!(
        !centers.is_empty(),
        "clustered_points needs at least one cluster center"
    );
    assert!(sigma >= 0.0, "sigma must be non-negative");
    (0..n)
        .map(|_| {
            let c = centers[rng.random_range(0..centers.len())];
            let (gx, gy) = gaussian_pair(rng);
            Point::new(
                (c.x + gx * sigma).clamp(rect.min_x, rect.max_x),
                (c.y + gy * sigma).clamp(rect.min_y, rect.max_y),
            )
        })
        .collect()
}

/// Box–Muller transform: two independent standard normal variates.
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    // Guard against log(0).
    let u1: f64 = loop {
        let u = rng.random::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Samples a Poisson(λ) variate.
///
/// Knuth's product method for small `λ`; for `λ > 30` the normal
/// approximation `⌊N(λ, λ) + 0.5⌋` (clamped at 0) is used — the paper's
/// sweeps stay well below that, so the exact method dominates in practice.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "invalid Poisson mean {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let (g, _) = gaussian_pair(rng);
        let v = lambda + g * lambda.sqrt();
        return if v < 0.0 { 0 } else { (v + 0.5).floor() as u64 };
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Numerical safety: with f64 this cannot loop forever, but cap
        // anyway so a pathological RNG cannot wedge a sweep.
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples a Poisson(λ) variate truncated below at `min` (resampling is the
/// natural reading of "we may need to modify some assignments": a radius of
/// zero would make a reader useless, so the evaluation draws radii with a
/// floor of one unit).
pub fn poisson_at_least<R: Rng + ?Sized>(rng: &mut R, lambda: f64, min: u64) -> u64 {
    // For tiny λ relative to `min`, rejection could spin; fall back to a
    // simple max() after a bounded number of attempts.
    for _ in 0..64 {
        let v = poisson(rng, lambda);
        if v >= min {
            return v;
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn uniform_points_stay_in_rect() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = Rect::new(-5.0, 10.0, 5.0, 20.0);
        for p in uniform_points(&mut rng, 1000, r) {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn uniform_points_fill_all_quadrants() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Rect::square(100.0);
        let pts = uniform_points(&mut rng, 2000, r);
        let mut counts = [0usize; 4];
        for p in pts {
            let qi = (p.x >= 50.0) as usize + 2 * ((p.y >= 50.0) as usize);
            counts[qi] += 1;
        }
        for c in counts {
            // Each quadrant expects 500; allow wide tolerance.
            assert!(c > 350 && c < 650, "skewed quadrant counts {counts:?}");
        }
    }

    #[test]
    fn clustered_points_concentrate_near_centers() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = Rect::square(100.0);
        let centers = [Point::new(20.0, 20.0), Point::new(80.0, 80.0)];
        let pts = clustered_points(&mut rng, 1000, r, &centers, 3.0);
        let near = pts
            .iter()
            .filter(|p| centers.iter().any(|c| c.dist(**p) < 12.0))
            .count();
        assert!(near > 950, "only {near}/1000 points near clusters");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(4);
        for &lambda in &[0.5, 3.0, 8.0, 14.0, 50.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda.max(1.0),
                "λ={lambda} empirical mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_variance_is_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let lambda = 6.0;
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - lambda).abs() < 0.6, "variance {var} vs λ={lambda}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn truncated_poisson_respects_floor() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            assert!(poisson_at_least(&mut rng, 2.0, 1) >= 1);
            assert!(poisson_at_least(&mut rng, 0.1, 3) >= 3);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let r = Rect::square(50.0);
        let a = uniform_points(&mut StdRng::seed_from_u64(99), 20, r);
        let b = uniform_points(&mut StdRng::seed_from_u64(99), 20, r);
        assert_eq!(a, b);
    }
}
