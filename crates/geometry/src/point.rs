//! Planar points and exact distance predicates.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the two-dimensional deployment plane.
///
/// The paper denotes reader coordinates as `(x_i, y_i)`; tags are points as
/// well. `Point` is `Copy` and 16 bytes, so slices of points are cache-dense
/// — deployments are stored as structure-of-arrays in the upper crates and
/// only materialise `Point`s at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred in all predicates: comparing `dist_sq` against `r²` avoids
    /// the `sqrt` and is exact for the strict/inclusive threshold tests the
    /// model needs (squaring is monotone on non-negative reals).
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance `‖self − other‖`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// `true` iff `other` lies strictly within distance `r` of `self`.
    #[inline]
    pub fn within_strict(&self, other: Point, r: f64) -> bool {
        self.dist_sq(other) < r * r
    }

    /// `true` iff `other` lies within distance `r` of `self`, boundary
    /// included.
    #[inline]
    pub fn within(&self, other: Point, r: f64) -> bool {
        self.dist_sq(other) <= r * r
    }

    /// Component-wise midpoint of two points.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// `true` iff both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vec2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Point) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vec2) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.25);
        let b = Point::new(4.0, -7.0);
        assert_eq!(a.dist_sq(b), b.dist_sq(a));
    }

    #[test]
    fn strict_vs_inclusive_threshold() {
        let a = Point::ORIGIN;
        let b = Point::new(5.0, 0.0);
        assert!(a.within(b, 5.0));
        assert!(!a.within_strict(b, 5.0));
        assert!(a.within_strict(b, 5.0 + 1e-9));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point::new(5.0, -2.0));
        assert!(crate::approx_eq(a.dist(m), b.dist(m)));
    }

    #[test]
    fn point_vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        let v = b - a;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
    }

    #[test]
    fn non_finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
