//! Uniform-grid spatial index over a fixed point set.
//!
//! Interference-graph construction and tag-coverage tables need many
//! "all points within distance `d` of `p`" queries. For the paper's
//! deployments (uniform points, bounded radii) a uniform bucket grid gives
//! expected O(1 + output) per query, which keeps deployment preprocessing
//! linear — important when the benchmark harness sweeps hundreds of seeded
//! instances.

use crate::point::Point;

/// A bucket-grid index over an immutable slice of points.
///
/// Indices returned by queries refer to positions in the original slice
/// passed to [`GridIndex::build`].
///
/// ```
/// use rfid_geometry::{GridIndex, Point};
/// let points = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0), Point::new(9.0, 9.0)];
/// let index = GridIndex::build(&points, 5.0);
/// assert_eq!(index.query_within(Point::new(0.0, 0.0), 5.0), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    cell: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    /// CSR-style bucket layout: `starts[c]..starts[c+1]` indexes `items`.
    starts: Vec<u32>,
    items: Vec<u32>,
}

impl GridIndex {
    /// Builds an index with the given bucket side length.
    ///
    /// `cell_size` should be on the order of the typical query radius; any
    /// positive finite value is correct (only performance changes). Empty
    /// point sets are supported.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite, got {cell_size}"
        );
        if points.is_empty() {
            return GridIndex {
                points: Vec::new(),
                cell: cell_size,
                min_x: 0.0,
                min_y: 0.0,
                nx: 1,
                ny: 1,
                starts: vec![0, 0],
                items: Vec::new(),
            };
        }
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            assert!(p.is_finite(), "non-finite point in GridIndex::build");
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let nx = (((max_x - min_x) / cell_size).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell_size).floor() as usize + 1).max(1);

        // Counting sort into CSR buckets: two passes, no per-bucket Vecs.
        let ncells = nx * ny;
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - min_x) / cell_size).floor() as usize).min(nx - 1);
            let cy = (((p.y - min_y) / cell_size).floor() as usize).min(ny - 1);
            cy * nx + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        GridIndex {
            points: points.to_vec(),
            cell: cell_size,
            min_x,
            min_y,
            nx,
            ny,
            starts,
            items,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `f(i, p)` for every indexed point `p` with `‖p − center‖ ≤
    /// radius` (closed ball). Order is unspecified but deterministic.
    pub fn for_each_within<F: FnMut(usize, Point)>(&self, center: Point, radius: f64, mut f: F) {
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let cx0 = (((center.x - radius - self.min_x) / self.cell).floor()).max(0.0) as usize;
        let cy0 = (((center.y - radius - self.min_y) / self.cell).floor()).max(0.0) as usize;
        let cx1 = ((((center.x + radius - self.min_x) / self.cell).floor()) as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let cy1 = ((((center.y + radius - self.min_y) / self.cell).floor()) as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        if cx0 > cx1 || cy0 > cy1 {
            return;
        }
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &i in &self.items[lo..hi] {
                    let p = self.points[i as usize];
                    if center.dist_sq(p) <= r_sq {
                        f(i as usize, p);
                    }
                }
            }
        }
    }

    /// Indices of all points within the closed ball of `radius` around
    /// `center`, sorted ascending for determinism.
    pub fn query_within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i, _| out.push(i));
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn brute_force(points: &[Point], c: Point, r: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| c.dist_sq(**p) <= r * r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index_answers_nothing() {
        let g = GridIndex::build(&[], 1.0);
        assert!(g.is_empty());
        assert_eq!(
            g.query_within(Point::new(0.0, 0.0), 100.0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn single_point() {
        let g = GridIndex::build(&[Point::new(3.0, 3.0)], 1.0);
        assert_eq!(g.query_within(Point::new(0.0, 0.0), 5.0), vec![0]);
        assert_eq!(
            g.query_within(Point::new(0.0, 0.0), 4.0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn boundary_is_inclusive() {
        let g = GridIndex::build(&[Point::new(2.0, 0.0)], 1.0);
        assert_eq!(g.query_within(Point::ORIGIN, 2.0), vec![0]);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.random::<f64>() * 100.0, rng.random::<f64>() * 100.0))
            .collect();
        for cell in [0.5, 3.0, 17.0] {
            let g = GridIndex::build(&points, cell);
            for _ in 0..50 {
                let c = Point::new(
                    rng.random::<f64>() * 120.0 - 10.0,
                    rng.random::<f64>() * 120.0 - 10.0,
                );
                let r = rng.random::<f64>() * 25.0;
                let mut expect = brute_force(&points, c, r);
                expect.sort_unstable();
                assert_eq!(g.query_within(c, r), expect, "cell={cell} c={c} r={r}");
            }
        }
    }

    #[test]
    fn coincident_points_all_reported() {
        let p = Point::new(1.0, 1.0);
        let g = GridIndex::build(&[p, p, p], 2.0);
        assert_eq!(g.query_within(p, 0.0), vec![0, 1, 2]);
    }

    #[test]
    fn negative_radius_is_empty() {
        let g = GridIndex::build(&[Point::ORIGIN], 1.0);
        assert!(g.query_within(Point::ORIGIN, -1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell_size")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::build(&[Point::ORIGIN], 0.0);
    }
}
