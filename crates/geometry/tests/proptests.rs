//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rfid_geometry::{
    Disk, GridIndex, HierarchicalGrid, LevelAssignment, Point, QuadTree, Rect, Shifting,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (-500.0..500.0f64, -500.0..500.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- metric space -----------------------------------

    #[test]
    fn distance_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.dist_sq(b).to_bits(), b.dist_sq(a).to_bits());
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
    }

    #[test]
    fn dist_sq_consistent_with_dist(a in arb_point(), b in arb_point()) {
        let d = a.dist(b);
        prop_assert!((d * d - a.dist_sq(b)).abs() <= 1e-6 * (1.0 + a.dist_sq(b)));
    }

    // ---------------- disks ------------------------------------------

    #[test]
    fn disk_contains_center_and_boundary(c in arb_point(), r in 0.0..100.0f64) {
        let d = Disk::new(c, r);
        prop_assert!(d.contains(c));
        // Catastrophic cancellation at |c| ≫ r makes the exact boundary
        // fuzzy in f64; test strictly-inside / clearly-outside points.
        prop_assert!(d.contains(Point::new(c.x + r * 0.999999, c.y)));
        prop_assert!(!d.contains(Point::new(c.x + r + 1e-4 * (1.0 + r + c.x.abs()), c.y)));
    }

    #[test]
    fn disk_intersection_symmetric(a in arb_point(), b in arb_point(), r1 in 0.0..50.0f64, r2 in 0.0..50.0f64) {
        let d1 = Disk::new(a, r1);
        let d2 = Disk::new(b, r2);
        prop_assert_eq!(d1.intersects(&d2), d2.intersects(&d1));
        // area symmetric too
        let i12 = d1.intersection_area(&d2);
        let i21 = d2.intersection_area(&d1);
        prop_assert!((i12 - i21).abs() <= 1e-6 * (1.0 + i12.abs()));
        // intersection area bounded by smaller disk's area
        prop_assert!(i12 <= d1.area().min(d2.area()) + 1e-6);
        // positive intersection implies geometric intersection
        if i12 > 1e-9 {
            prop_assert!(d1.intersects(&d2));
        }
    }

    #[test]
    fn containment_implies_intersection(a in arb_point(), b in arb_point(), r1 in 1.0..50.0f64, r2 in 0.0..50.0f64) {
        let d1 = Disk::new(a, r1);
        let d2 = Disk::new(b, r2);
        if d1.contains_disk(&d2) {
            prop_assert!(d1.intersects(&d2));
            prop_assert!(d2.radius <= d1.radius);
            // every sampled boundary point of d2 inside d1
            for i in 0..8 {
                let t = i as f64 * std::f64::consts::TAU / 8.0;
                let p = Point::new(b.x + r2 * t.cos(), b.y + r2 * t.sin());
                prop_assert!(d1.center.within(p, d1.radius + 1e-9));
            }
        }
    }

    #[test]
    fn bounding_box_contains_disk_boundary(c in arb_point(), r in 0.0..50.0f64) {
        let d = Disk::new(c, r);
        let bb = d.bounding_box();
        for i in 0..12 {
            let t = i as f64 * std::f64::consts::TAU / 12.0;
            let p = Point::new(c.x + r * t.cos(), c.y + r * t.sin());
            prop_assert!(bb.contains(p) || bb.inflate(1e-9).contains(p));
        }
    }

    // ---------------- rectangles --------------------------------------

    #[test]
    fn rect_distance_zero_iff_contained(p in arb_point(), q in arb_point(), x in arb_point()) {
        let r = Rect::from_corners(p, q);
        let d = r.dist_sq_to_point(x);
        prop_assert_eq!(d == 0.0, r.contains(x));
    }

    #[test]
    fn rect_disk_intersection_matches_distance(p in arb_point(), q in arb_point(), c in arb_point(), radius in 0.0..100.0f64) {
        let r = Rect::from_corners(p, q);
        prop_assert_eq!(
            r.intersects_disk(c, radius),
            r.dist_sq_to_point(c) <= radius * radius
        );
    }

    // ---------------- spatial indices ---------------------------------

    #[test]
    fn grid_and_quadtree_agree_with_bruteforce(
        points in arb_points(120),
        center in arb_point(),
        radius in 0.0..200.0f64,
        cell in 0.5..40.0f64,
    ) {
        let grid = GridIndex::build(&points, cell);
        let tree = QuadTree::build(&points, Rect::new(-500.0, -500.0, 500.0, 500.0));
        let mut brute: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| center.dist_sq(**p) <= radius * radius)
            .map(|(i, _)| i)
            .collect();
        brute.sort_unstable();
        prop_assert_eq!(grid.query_within(center, radius), brute.clone());
        prop_assert_eq!(tree.query_within(center, radius), brute);
    }

    // ---------------- hierarchical shifted grid -----------------------

    #[test]
    fn squares_tile_without_overlap(
        k in 2usize..6,
        r in 0usize..5,
        s in 0usize..5,
        level in 0u32..4,
        p in arb_point(),
    ) {
        let r = r % k;
        let s = s % k;
        let g = HierarchicalGrid::new(k, Shifting { r, s });
        let sq = g.square_of(p, level);
        let b = g.square_bounds(sq);
        prop_assert!(b.contains(p));
        // neighbours don't claim the interior point
        for dx in [-1i64, 1] {
            let other = rfid_geometry::SquareId { level, ix: sq.ix + dx, iy: sq.iy };
            let ob = g.square_bounds(other);
            let interior = b.center();
            prop_assert!(!ob.contains(interior));
        }
    }

    #[test]
    fn parent_chain_reaches_level_zero(
        k in 2usize..5,
        shift in 0usize..16,
        p in arb_point(),
        level in 0u32..6,
    ) {
        let g = HierarchicalGrid::new(k, Shifting { r: shift % k, s: (shift / k) % k });
        let mut sq = g.square_of(p, level);
        let mut steps = 0;
        while let Some(parent) = g.parent(sq) {
            prop_assert_eq!(parent.level, sq.level - 1);
            // fp slack: nesting is exact in ℚ but bounds are computed by
            // floating multiplication at each level independently.
            prop_assert!(g.square_bounds(parent).inflate(1e-9).contains_rect(&g.square_bounds(sq)));
            sq = parent;
            steps += 1;
            prop_assert!(steps <= 10, "runaway parent chain");
        }
        prop_assert_eq!(sq.level, 0);
        prop_assert_eq!(steps, level);
    }

    #[test]
    fn surviving_disks_never_cross_kept_lines(
        k in 2usize..5,
        cx in -3.0..3.0f64,
        cy in -3.0..3.0f64,
        radius_frac in 0.05..0.5f64,
        level in 0u32..3,
    ) {
        let g = HierarchicalGrid::new(k, Shifting { r: 0, s: 0 });
        // a disk sized within its level: diameter ≤ spacing(level)
        let radius = radius_frac * g.spacing(level) / 2.0 * 2.0 / 2.0; // ≤ spacing/2
        let d = Disk::new(Point::new(cx, cy), radius);
        if g.survives(&d, level) {
            let b = g.square_bounds(g.home_square(&d, level));
            prop_assert!(d.center.x - d.radius >= b.min_x - 1e-9);
            prop_assert!(d.center.x + d.radius <= b.max_x + 1e-9);
            prop_assert!(d.center.y - d.radius >= b.min_y - 1e-9);
            prop_assert!(d.center.y + d.radius <= b.max_y + 1e-9);
        }
    }

    #[test]
    fn level_assignment_partitions_by_radius(
        radii in proptest::collection::vec(0.01..100.0f64, 1..40),
        k in 2usize..5,
    ) {
        let la = LevelAssignment::new(&radii, k);
        let base = (k + 1) as f64;
        for (i, &r) in radii.iter().enumerate() {
            let scaled = 2.0 * r * la.scale;
            let j = la.levels[i];
            // 1/(k+1)^{j+1} < 2R ≤ 1/(k+1)^j  (allowing fp slack)
            prop_assert!(scaled <= base.powi(-(j as i32)) * (1.0 + 1e-9), "disk {i}");
            if (j as usize) < rfid_geometry::shifted_grid::MAX_LEVELS - 1 {
                prop_assert!(scaled > base.powi(-(j as i32 + 1)) * (1.0 - 1e-9), "disk {i}");
            }
        }
        // scale sends the max radius to 1/2
        let r_max = radii.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((r_max * la.scale - 0.5).abs() < 1e-12);
    }
}
