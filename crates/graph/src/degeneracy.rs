//! Degeneracy ordering (Matula–Beck smallest-last).
//!
//! Interference graphs of disks are O(1)-degenerate per radius class, which
//! is why the paper's growth-bounded arguments work. A smallest-last order
//! gives strong pruning for the exact independent-set solvers and compact
//! greedy colourings.

use crate::csr::Csr;

/// Returns `(order, degeneracy)` where `order` is a smallest-last
/// elimination order: repeatedly remove a minimum-degree node (ties by id).
/// `degeneracy` is the maximum degree seen at removal time — every node has
/// at most `degeneracy` neighbours *later* in `order`.
pub fn degeneracy_order(g: &Csr) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    // Bucket queue over degrees.
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[deg[v]].push(v);
    }
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    let mut floor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket with a live node. `floor` only
        // decreases by 1 per removal, so total scanning is O(n + m).
        let v = loop {
            while floor <= max_deg && buckets[floor].is_empty() {
                floor += 1;
            }
            let cand = buckets[floor].pop().expect("non-empty bucket");
            if !removed[cand] && deg[cand] == floor {
                break cand;
            }
            // Stale entry (node was re-bucketed at a lower degree or already
            // removed) — discard and keep scanning.
        };
        removed[v] = true;
        degeneracy = degeneracy.max(deg[v]);
        order.push(v);
        for &t in g.neighbors(v) {
            let t = t as usize;
            if !removed[t] {
                deg[t] -= 1;
                buckets[deg[t]].push(t);
                floor = floor.min(deg[t]);
            }
        }
    }
    (order, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_degeneracy_one() {
        let g = Csr::from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 1);
        assert_eq!(order.len(), 6);
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 2);
    }

    #[test]
    fn clique_has_degeneracy_n_minus_one() {
        let g = Csr::from_predicate(5, |_, _| true);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 4);
    }

    #[test]
    fn order_property_holds() {
        // Every node has ≤ degeneracy neighbours appearing later in order.
        let edges: Vec<(usize, usize)> = (0..15)
            .flat_map(|a| {
                ((a + 1)..15)
                    .filter(move |b| (a * 3 + b) % 4 == 0)
                    .map(move |b| (a, b))
            })
            .collect();
        let g = Csr::from_edges(15, &edges);
        let (order, d) = degeneracy_order(&g);
        let pos: Vec<usize> = {
            let mut p = vec![0; 15];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for v in 0..15 {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&t| pos[t as usize] > pos[v])
                .count();
            assert!(
                later <= d,
                "node {v} has {later} later neighbours > degeneracy {d}"
            );
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(degeneracy_order(&g), (vec![], 0));
        let g = Csr::from_edges(3, &[]);
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 0);
        assert_eq!(order.len(), 3);
    }
}
