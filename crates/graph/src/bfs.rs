//! Breadth-first search and `r`-hop neighbourhoods.
//!
//! The paper's notation `N(v)^r` — "readers with hop distance at most `r`
//! from `v` in the interference graph" — is [`k_hop_ball`]. Algorithm 2
//! grows these balls (`Γ_r` lives inside `N(v)^r`), removes `N(v)^{r̄+1}`,
//! and Algorithm 3's coordinators collect `(2c+2)`-hop neighbourhood
//! information; all of those reduce to the routines here.

use crate::csr::Csr;

/// Reusable BFS state: the `O(n)` visited/distance arrays are allocated
/// once and invalidated by a stamp bump instead of a clear, so each ball
/// query costs only its output size. Schedulers that issue hundreds of
/// ball queries per slot hold one of these per thread (DESIGN.md §11).
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    /// Valid where `stamp_of[v] == stamp`.
    dist: Vec<u32>,
    stamp_of: Vec<u64>,
    stamp: u64,
    queue: std::collections::VecDeque<usize>,
    /// Fresh heap allocations (buffer growth events) since the last
    /// [`take_allocs`](Self::take_allocs).
    allocs: u64,
}

impl BfsScratch {
    /// Scratch sized for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        let mut s = BfsScratch::default();
        s.ensure(n);
        s
    }

    /// Resizes for a different node count (no-op when unchanged).
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist = vec![0; n];
            self.stamp_of = vec![0; n];
            self.stamp = 0;
            self.allocs += 1;
        }
    }

    /// Fresh heap allocations since the last call.
    pub fn take_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// [`k_hop_ball`] into a caller-owned buffer (cleared first), sorted
    /// ascending. Identical output to the allocating form.
    pub fn ball_into(&mut self, g: &Csr, src: usize, r: u32, out: &mut Vec<usize>) {
        self.multi_ball_into(g, std::slice::from_ref(&src), r, out);
    }

    /// [`multi_source_ball`] into a caller-owned buffer (cleared first),
    /// sorted ascending. Identical output to the allocating form.
    pub fn multi_ball_into(&mut self, g: &Csr, sources: &[usize], r: u32, out: &mut Vec<usize>) {
        self.ensure(g.n());
        self.stamp += 1;
        out.clear();
        self.queue.clear();
        for &s in sources {
            if self.stamp_of[s] != self.stamp {
                self.stamp_of[s] = self.stamp;
                self.dist[s] = 0;
                out.push(s);
                self.queue.push_back(s);
            }
        }
        while let Some(v) = self.queue.pop_front() {
            let d = self.dist[v];
            if d == r {
                continue;
            }
            for &t in g.neighbors(v) {
                let t = t as usize;
                if self.stamp_of[t] != self.stamp {
                    self.stamp_of[t] = self.stamp;
                    self.dist[t] = d + 1;
                    out.push(t);
                    self.queue.push_back(t);
                }
            }
        }
        out.sort_unstable();
    }
}

/// Hop distances from `src` to every node; `u32::MAX` marks unreachable
/// nodes.
pub fn hop_distances(g: &Csr, src: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v];
        for &t in g.neighbors(v) {
            let t = t as usize;
            if dist[t] == u32::MAX {
                dist[t] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// `N(v)^r`: all nodes within hop distance `r` of `src`, **including** `src`
/// itself (`N(v)^0 = {v}`). Sorted ascending.
pub fn k_hop_ball(g: &Csr, src: usize, r: u32) -> Vec<usize> {
    let mut scratch = BfsScratch::new(g.n());
    let mut out = Vec::new();
    scratch.ball_into(g, src, r, &mut out);
    out
}

/// The *ring* `N(v)^r ∖ N(v)^{r−1}`: nodes at hop distance exactly `r`.
/// Sorted ascending. `r = 0` yields `{src}`.
pub fn k_hop_ring(g: &Csr, src: usize, r: u32) -> Vec<usize> {
    let dist = hop_distances(g, src);
    let mut out: Vec<usize> = (0..g.n()).filter(|&v| dist[v] == r).collect();
    out.sort_unstable();
    out
}

/// Multi-source ball: nodes within hop distance `r` of *any* source.
/// Sorted ascending. Used when Algorithm 2 removes `N(Γ)^1`-style unions.
pub fn multi_source_ball(g: &Csr, sources: &[usize], r: u32) -> Vec<usize> {
    let mut scratch = BfsScratch::new(g.n());
    let mut out = Vec::new();
    scratch.multi_ball_into(g, sources, r, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0—1—2—3—4 path plus isolated node 5.
    fn path_plus_isolate() -> Csr {
        Csr::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn distances_on_path() {
        let g = path_plus_isolate();
        let d = hop_distances(&g, 0);
        assert_eq!(d[..5], [0, 1, 2, 3, 4]);
        assert_eq!(d[5], u32::MAX);
    }

    #[test]
    fn ball_includes_center() {
        let g = path_plus_isolate();
        assert_eq!(k_hop_ball(&g, 2, 0), vec![2]);
        assert_eq!(k_hop_ball(&g, 2, 1), vec![1, 2, 3]);
        assert_eq!(k_hop_ball(&g, 2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(k_hop_ball(&g, 2, 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_is_exact_distance() {
        let g = path_plus_isolate();
        assert_eq!(k_hop_ring(&g, 0, 0), vec![0]);
        assert_eq!(k_hop_ring(&g, 0, 2), vec![2]);
        assert_eq!(k_hop_ring(&g, 0, 5), Vec::<usize>::new());
    }

    #[test]
    fn ball_on_isolated_node() {
        let g = path_plus_isolate();
        assert_eq!(k_hop_ball(&g, 5, 3), vec![5]);
    }

    #[test]
    fn multi_source_union() {
        let g = path_plus_isolate();
        assert_eq!(multi_source_ball(&g, &[0, 4], 1), vec![0, 1, 3, 4]);
        assert_eq!(multi_source_ball(&g, &[0, 5], 1), vec![0, 1, 5]);
        // duplicated sources are fine
        assert_eq!(multi_source_ball(&g, &[2, 2], 0), vec![2]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let g = Csr::from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let mut scratch = BfsScratch::new(g.n());
        scratch.take_allocs();
        let mut out = Vec::new();
        for src in 0..g.n() {
            for r in 0..4u32 {
                scratch.ball_into(&g, src, r, &mut out);
                assert_eq!(out, k_hop_ball(&g, src, r), "src {src} r {r}");
            }
        }
        scratch.multi_ball_into(&g, &[0, 6, 6], 1, &mut out);
        assert_eq!(out, multi_source_ball(&g, &[0, 6, 6], 1));
        assert_eq!(scratch.take_allocs(), 0, "warm scratch must not allocate");
    }

    #[test]
    fn ball_matches_ring_union() {
        let g = Csr::from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)]);
        for r in 0..5u32 {
            let mut union: Vec<usize> = (0..=r).flat_map(|i| k_hop_ring(&g, 0, i)).collect();
            union.sort_unstable();
            assert_eq!(k_hop_ball(&g, 0, r), union, "r={r}");
        }
    }
}

/// Eccentricity of `src`: the greatest hop distance to any node reachable
/// from it (`0` for an isolated node).
pub fn eccentricity(g: &Csr, src: usize) -> u32 {
    hop_distances(g, src)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// `(diameter, radius)` over the *largest distances within components*:
/// the maximum and minimum eccentricity across all nodes. Disconnected
/// pairs are ignored (their distance is infinite); the empty graph yields
/// `(0, 0)`.
///
/// Used to sanity-check Algorithm 3's TTL choice: a result flood with TTL
/// `r̄+1+2c+2` reaches everything it must as long as the relevant
/// distances stay below it, and `diameter` bounds them all.
pub fn diameter_radius(g: &Csr) -> (u32, u32) {
    let mut diameter = 0;
    let mut radius = u32::MAX;
    for v in 0..g.n() {
        let e = eccentricity(g, v);
        diameter = diameter.max(e);
        radius = radius.min(e);
    }
    if g.n() == 0 {
        (0, 0)
    } else {
        (diameter, radius)
    }
}

#[cfg(test)]
mod eccentricity_tests {
    use super::*;

    #[test]
    fn path_diameter_and_radius() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(diameter_radius(&g), (4, 2));
    }

    #[test]
    fn star_has_radius_one() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(diameter_radius(&g), (2, 1));
    }

    #[test]
    fn disconnected_components_measured_separately() {
        let g = Csr::from_edges(5, &[(0, 1), (2, 3)]);
        // isolated node 4 has eccentricity 0 → radius 0
        assert_eq!(diameter_radius(&g), (1, 0));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(diameter_radius(&g), (0, 0));
    }
}
