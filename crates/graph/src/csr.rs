//! Compressed-sparse-row adjacency for undirected graphs.

use serde::{Deserialize, Serialize};

/// An immutable undirected graph in CSR form.
///
/// Node ids are `usize` in `0..n`. Neighbour lists are sorted ascending and
/// deduplicated; self-loops are rejected at construction. The structure is
/// `Send + Sync` and cheap to share across the sweep worker threads.
///
/// ```
/// use rfid_graph::Csr;
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.is_independent_set(&[0, 2]));
/// assert!(!g.is_independent_set(&[1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a graph from an edge list over `n` nodes. Edges may appear in
    /// any order and direction; duplicates are merged.
    ///
    /// # Panics
    /// On self-loops or endpoints `≥ n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut deg = vec![0u32; n + 1];
        for &(a, b) in edges {
            assert!(a != b, "self-loop at node {a}");
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for n={n}");
            deg[a + 1] += 1;
            deg[b + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let mut targets = vec![0u32; edges.len() * 2];
        for &(a, b) in edges {
            targets[cursor[a] as usize] = b as u32;
            cursor[a] += 1;
            targets[cursor[b] as usize] = a as u32;
            cursor[b] += 1;
        }
        // Sort + dedup each row, then rebuild compactly.
        let mut clean_offsets = Vec::with_capacity(n + 1);
        let mut clean_targets = Vec::with_capacity(targets.len());
        clean_offsets.push(0u32);
        for v in 0..n {
            let row = &mut targets[offsets[v] as usize..offsets[v + 1] as usize];
            row.sort_unstable();
            let mut prev = u32::MAX;
            for &t in row.iter() {
                if t != prev {
                    clean_targets.push(t);
                    prev = t;
                }
            }
            clean_offsets.push(clean_targets.len() as u32);
        }
        Csr {
            offsets: clean_offsets,
            targets: clean_targets,
        }
    }

    /// Builds a graph by testing every unordered pair with `adjacent`.
    /// Quadratic — intended for model-construction fallbacks and tests;
    /// the model crate uses spatial indices to avoid the O(n²) scan.
    pub fn from_predicate<F: FnMut(usize, usize) -> bool>(n: usize, mut adjacent: F) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if adjacent(a, b) {
                    edges.push((a, b));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// `true` iff `{a, b}` is an edge (binary search).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The subgraph induced by `nodes` (which need not be sorted), together
    /// with the mapping `local → global` (`nodes`, deduplicated + sorted).
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Csr, Vec<usize>) {
        let mut sorted: Vec<usize> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut local_of = std::collections::HashMap::with_capacity(sorted.len());
        for (i, &g) in sorted.iter().enumerate() {
            local_of.insert(g, i);
        }
        let mut edges = Vec::new();
        for (i, &g) in sorted.iter().enumerate() {
            for &t in self.neighbors(g) {
                if let Some(&j) = local_of.get(&(t as usize)) {
                    if i < j {
                        edges.push((i, j));
                    }
                }
            }
        }
        (Csr::from_edges(sorted.len(), &edges), sorted)
    }

    /// All edges as ordered pairs `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.m());
        for a in 0..self.n() {
            for &b in self.neighbors(a) {
                if a < b as usize {
                    out.push((a, b as usize));
                }
            }
        }
        out
    }

    /// `true` iff no two nodes of `set` are adjacent.
    pub fn is_independent_set(&self, set: &[usize]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Csr {
        Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_structure() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let _ = Csr::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Csr::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = Csr::from_edges(5, &[]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn from_predicate_builds_expected_graph() {
        // adjacency: |a − b| == 1 → path
        let g = Csr::from_predicate(4, |a, b| a.abs_diff(b) == 1);
        assert_eq!(g, path4());
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (sub, map) = g.induced_subgraph(&[4, 0, 1]);
        assert_eq!(map, vec![0, 1, 4]);
        assert_eq!(sub.n(), 3);
        // edges among {0,1,4}: (0,1), (0,4) → local (0,1), (0,2)
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(0, 2));
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = path4();
        let (sub, map) = g.induced_subgraph(&[2, 2, 1]);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.m(), 1);
    }

    #[test]
    fn edges_roundtrip() {
        let edges = vec![(0, 2), (1, 3), (2, 3)];
        let g = Csr::from_edges(4, &edges);
        assert_eq!(g.edges(), edges);
    }

    #[test]
    fn independent_set_check() {
        let g = path4();
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[0, 3]));
        assert!(!g.is_independent_set(&[1, 2]));
        assert!(g.is_independent_set(&[]));
        assert!(g.is_independent_set(&[1]));
    }
}
