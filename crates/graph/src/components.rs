//! Connected components.

use crate::csr::Csr;

/// Labels each node with a component id in `0..count`; ids are assigned in
/// order of the smallest node in each component, so the labelling is
/// deterministic. Returns `(labels, count)`.
pub fn connected_components(g: &Csr) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &t in g.neighbors(v) {
                let t = t as usize;
                if label[t] == usize::MAX {
                    label[t] = next;
                    stack.push(t);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// The nodes of each component, sorted, indexed by component id.
pub fn component_members(g: &Csr) -> Vec<Vec<usize>> {
    let (labels, count) = connected_components(g);
    let mut out = vec![Vec::new(); count];
    for (v, &c) in labels.iter().enumerate() {
        out[c].push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        let g = Csr::from_edges(0, &[]);
        let (labels, count) = connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }

    #[test]
    fn edgeless_graph_is_all_singletons() {
        let g = Csr::from_edges(4, &[]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_components() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
        let members = component_members(&g);
        assert_eq!(members, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn labels_are_deterministic_by_smallest_node() {
        let g = Csr::from_edges(5, &[(3, 4), (0, 1)]);
        let (labels, _) = connected_components(&g);
        assert_eq!(labels[0], 0); // component containing node 0 gets id 0
        assert_eq!(labels[2], 1);
        assert_eq!(labels[3], 2);
    }
}
