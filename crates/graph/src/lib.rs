#![warn(missing_docs)]
//! # rfid-graph
//!
//! General-purpose undirected-graph substrate for the RFID scheduling
//! library.
//!
//! The paper's location-free algorithms (Algorithms 2 and 3) operate purely
//! on the *interference graph* `G = (V, E)` — readers are nodes, an edge
//! joins two readers iff one lies in the other's interference region. This
//! crate supplies the graph machinery those algorithms (and the Colorwave
//! baseline) need:
//!
//! * a compact CSR ([`Csr`]) adjacency representation,
//! * BFS `r`-hop neighbourhoods (`N(v)^r` in the paper's notation),
//! * connected components,
//! * greedy and DSATUR colouring (Colorwave's proper-colouring target),
//! * degeneracy orderings (used by branch-and-bound pruning),
//! * an exact maximum-weight independent-set solver for *additive* weights,
//!   used as a unit-test oracle for the schedulers' non-additive search.

pub mod bfs;
pub mod coloring;
pub mod components;
pub mod csr;
pub mod degeneracy;
pub mod growth;
pub mod mwis;

pub use bfs::{diameter_radius, eccentricity, hop_distances, k_hop_ball, k_hop_ring, BfsScratch};
pub use coloring::{dsatur, greedy_coloring, is_proper_coloring};
pub use components::connected_components;
pub use csr::Csr;
pub use degeneracy::degeneracy_order;
pub use growth::{ball_independence_number, clustering_coefficient, growth_function};
pub use mwis::max_weight_independent_set;
