//! Exact maximum-weight independent set for **additive** node weights.
//!
//! Branch-and-bound with degeneracy-guided branching. The schedulers in
//! `rfid-core` optimise the *non-additive* tag weight `w(X)`; this additive
//! solver exists as (a) an oracle upper bound in tests (`w(X) ≤ Σ singleton
//! weights` by sub-additivity) and (b) the reference algorithm from Sakai et
//! al. \[15\] that Algorithm 2's local step generalises.

use crate::csr::Csr;

/// Exact maximum-weight independent set of `g` under additive `weights`.
///
/// Returns the set sorted ascending. Suitable for the small local
/// neighbourhoods the paper's algorithms enumerate (tens of nodes); the
/// worst case is exponential.
///
/// # Panics
/// If `weights.len() != g.n()` or any weight is negative (negative-weight
/// nodes can simply be dropped by the caller: they never help).
pub fn max_weight_independent_set(g: &Csr, weights: &[f64]) -> Vec<usize> {
    assert_eq!(weights.len(), g.n(), "one weight per node required");
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be non-negative and finite"
    );
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Branch on nodes in reverse degeneracy order (high-degree cores first)
    // for tighter early bounds.
    let (mut order, _) = crate::degeneracy::degeneracy_order(g);
    order.reverse();

    let mut best: Vec<usize> = Vec::new();
    let mut best_w = f64::NEG_INFINITY;
    let mut chosen: Vec<usize> = Vec::new();
    let mut alive = vec![true; n];

    // Suffix weight bound: sum of weights of nodes not yet decided.
    struct Ctx<'a> {
        g: &'a Csr,
        weights: &'a [f64],
        order: &'a [usize],
        /// Position of each node in `order`.
        pos: Vec<usize>,
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        ctx: &Ctx,
        idx: usize,
        cur_w: f64,
        remaining_w: f64,
        chosen: &mut Vec<usize>,
        alive: &mut Vec<bool>,
        best: &mut Vec<usize>,
        best_w: &mut f64,
    ) {
        if cur_w > *best_w {
            *best_w = cur_w;
            *best = chosen.clone();
            best.sort_unstable();
        }
        if idx >= ctx.order.len() || cur_w + remaining_w <= *best_w {
            return;
        }
        let v = ctx.order[idx];
        if !alive[v] {
            recurse(
                ctx,
                idx + 1,
                cur_w,
                remaining_w,
                chosen,
                alive,
                best,
                best_w,
            );
            return;
        }
        let wv = ctx.weights[v];
        // Branch 1: include v — kill its alive neighbours.
        let mut killed = Vec::new();
        for &t in ctx.g.neighbors(v) {
            let t = t as usize;
            if alive[t] {
                alive[t] = false;
                killed.push(t);
            }
        }
        alive[v] = false;
        chosen.push(v);
        // Only neighbours still ahead of us contribute to `remaining_w`;
        // already-passed (excluded) neighbours were subtracted when passed.
        let killed_w: f64 = killed
            .iter()
            .filter(|&&t| ctx.pos[t] > idx)
            .map(|&t| ctx.weights[t])
            .sum();
        recurse(
            ctx,
            idx + 1,
            cur_w + wv,
            remaining_w - wv - killed_w,
            chosen,
            alive,
            best,
            best_w,
        );
        chosen.pop();
        alive[v] = true;
        for t in killed {
            alive[t] = true;
        }
        // Branch 2: exclude v.
        recurse(
            ctx,
            idx + 1,
            cur_w,
            remaining_w - wv,
            chosen,
            alive,
            best,
            best_w,
        );
    }

    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    let ctx = Ctx {
        g,
        weights,
        order: &order,
        pos,
    };
    let total: f64 = (0..n).map(|v| weights[v]).sum();
    recurse(
        &ctx,
        0,
        0.0,
        total,
        &mut chosen,
        &mut alive,
        &mut best,
        &mut best_w,
    );
    best
}

/// Total weight of a node set under additive weights.
pub fn set_weight(set: &[usize], weights: &[f64]) -> f64 {
    set.iter().map(|&v| weights[v]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(g: &Csr, w: &[f64]) -> f64 {
        let n = g.n();
        assert!(n <= 20);
        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if g.is_independent_set(&set) {
                best = best.max(set_weight(&set, w));
            }
        }
        best
    }

    #[test]
    fn path_graph_alternates() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = vec![1.0, 1.0, 1.0, 1.0];
        let s = max_weight_independent_set(&g, &w);
        assert_eq!(s.len(), 2); // {0,2}, {0,3} or {1,3}
        assert_eq!(set_weight(&s, &w), 2.0);
        assert!(g.is_independent_set(&s));
    }

    #[test]
    fn heavy_middle_wins() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let w = vec![1.0, 5.0, 1.0];
        let s = max_weight_independent_set(&g, &w);
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn clique_picks_heaviest() {
        let g = Csr::from_predicate(5, |_, _| true);
        let w = vec![1.0, 2.0, 9.0, 4.0, 3.0];
        assert_eq!(max_weight_independent_set(&g, &w), vec![2]);
    }

    #[test]
    fn zero_weights_allowed() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let s = max_weight_independent_set(&g, &[0.0, 0.0]);
        assert!(g.is_independent_set(&s));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert!(max_weight_independent_set(&g, &[]).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8u64 {
            let n = 12;
            let edges: Vec<(usize, usize)> = (0..n)
                .flat_map(|a| {
                    ((a + 1)..n)
                        .filter(move |b| (a * 31 + b * 17 + seed as usize * 7).is_multiple_of(3))
                        .map(move |b| (a, b))
                })
                .collect();
            let g = Csr::from_edges(n, &edges);
            let w: Vec<f64> = (0..n)
                .map(|i| ((i * 13 + seed as usize * 5) % 7) as f64 + 0.5)
                .collect();
            let s = max_weight_independent_set(&g, &w);
            assert!(g.is_independent_set(&s), "seed {seed}");
            let bw = brute_force(&g, &w);
            assert_eq!(set_weight(&s, &w), bw, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let g = Csr::from_edges(1, &[]);
        let _ = max_weight_independent_set(&g, &[-1.0]);
    }
}
