//! Graph colouring.
//!
//! Colorwave (Waldrop–Engels–Sarma, the paper's CA baseline) seeks a proper
//! colouring of the interference graph — each colour class is an
//! independent set usable as one time slot. The distributed, randomised
//! Colorwave protocol itself lives in `rfid-core::colorwave`; this module
//! provides the deterministic colouring primitives it is measured against
//! and the validity check both share.

use crate::csr::Csr;

/// First-fit greedy colouring in the given node `order`. Returns one colour
/// per node, colours dense in `0..max+1`.
///
/// Uses at most `Δ + 1` colours for any order (Δ = max degree).
pub fn greedy_coloring(g: &Csr, order: &[usize]) -> Vec<usize> {
    assert_eq!(order.len(), g.n(), "order must permute all nodes");
    let n = g.n();
    let mut color = vec![usize::MAX; n];
    let mut forbidden = vec![usize::MAX; n.max(1)]; // stamp per colour
    for (stamp, &v) in order.iter().enumerate() {
        for &t in g.neighbors(v) {
            let c = color[t as usize];
            if c != usize::MAX {
                forbidden[c] = stamp;
            }
        }
        let mut c = 0;
        while forbidden[c] == stamp {
            c += 1;
        }
        color[v] = c;
    }
    color
}

/// DSATUR colouring (Brélaz): always colour the node with the highest
/// *saturation* (number of distinct neighbour colours), breaking ties by
/// degree then id. Typically uses noticeably fewer colours than first-fit
/// on geometric graphs.
#[allow(clippy::needless_range_loop)] // `v` indexes `color` and `neighbor_colors` in parallel
pub fn dsatur(g: &Csr) -> Vec<usize> {
    let n = g.n();
    let mut color = vec![usize::MAX; n];
    let mut neighbor_colors: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n];
    for _ in 0..n {
        // Select uncoloured node maximising (saturation, degree, -id).
        let mut best: Option<usize> = None;
        for v in 0..n {
            if color[v] != usize::MAX {
                continue;
            }
            best = match best {
                None => Some(v),
                Some(b) => {
                    let key = |x: usize| (neighbor_colors[x].len(), g.degree(x));
                    if key(v) > key(b) {
                        Some(v)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let v = best.expect("loop runs exactly n times");
        let mut c = 0;
        while neighbor_colors[v].contains(&c) {
            c += 1;
        }
        color[v] = c;
        for &t in g.neighbors(v) {
            neighbor_colors[t as usize].insert(c);
        }
    }
    color
}

/// `true` iff no edge is monochromatic and every node is coloured.
pub fn is_proper_coloring(g: &Csr, color: &[usize]) -> bool {
    if color.len() != g.n() {
        return false;
    }
    if color.contains(&usize::MAX) {
        return false;
    }
    for (a, b) in g.edges() {
        if color[a] == color[b] {
            return false;
        }
    }
    true
}

/// Number of colours used by a colouring (max + 1; 0 for the empty graph).
pub fn num_colors(color: &[usize]) -> usize {
    color.iter().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle5() -> Csr {
        Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn greedy_is_proper_on_cycle() {
        let g = cycle5();
        let order: Vec<usize> = (0..5).collect();
        let c = greedy_coloring(&g, &order);
        assert!(is_proper_coloring(&g, &c));
        // Odd cycle needs 3 colours; greedy uses at most Δ+1 = 3.
        assert_eq!(num_colors(&c), 3);
    }

    #[test]
    fn dsatur_is_proper_and_compact() {
        let g = cycle5();
        let c = dsatur(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 3);
        // Bipartite graph: DSATUR is exact (2 colours).
        let b = Csr::from_edges(6, &[(0, 3), (0, 4), (1, 4), (1, 5), (2, 5)]);
        let c = dsatur(&b);
        assert!(is_proper_coloring(&b, &c));
        assert_eq!(num_colors(&c), 2);
    }

    #[test]
    fn greedy_bounded_by_max_degree_plus_one() {
        // Random-ish dense graph.
        let edges: Vec<(usize, usize)> = (0..12)
            .flat_map(|a| {
                ((a + 1)..12)
                    .filter(move |b| (a * 7 + b * 5) % 3 == 0)
                    .map(move |b| (a, b))
            })
            .collect();
        let g = Csr::from_edges(12, &edges);
        let order: Vec<usize> = (0..12).rev().collect();
        let c = greedy_coloring(&g, &order);
        assert!(is_proper_coloring(&g, &c));
        assert!(num_colors(&c) <= g.max_degree() + 1);
    }

    #[test]
    fn proper_coloring_rejects_bad_inputs() {
        let g = cycle5();
        assert!(!is_proper_coloring(&g, &[0, 0, 1, 0, 1])); // edge (0,1) clash
        assert!(!is_proper_coloring(&g, &[0, 1])); // wrong length
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 1, usize::MAX])); // uncoloured
    }

    #[test]
    fn empty_graph_coloring() {
        let g = Csr::from_edges(0, &[]);
        assert!(is_proper_coloring(&g, &[]));
        assert_eq!(num_colors(&[]), 0);
        let c = dsatur(&g);
        assert!(c.is_empty());
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = Csr::from_edges(4, &[]);
        let c = dsatur(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 1);
    }
}
