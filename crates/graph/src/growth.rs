//! Growth-bound diagnostics.
//!
//! Algorithms 2 and 3 rest on the interference graph being *(polynomially)
//! growth-bounded*: the size of a maximum independent set inside any
//! `r`-hop ball is bounded by a function `f(r)` independent of `n`
//! (Theorem 3's constant `c(ρ)` comes from exactly this). For unit-disk
//! graphs `f(r) = O(r²)`; for the paper's general disks the bound holds
//! per radius class. These routines measure the property empirically so
//! the experiment harness can *verify* the assumption on every generated
//! deployment instead of trusting it.

use crate::bfs::k_hop_ball;
use crate::csr::Csr;

/// Size of a maximum independent set within `N(v)^r`, computed exactly
/// (the balls the paper's algorithms explore are small by assumption —
/// that is the point being measured).
pub fn ball_independence_number(g: &Csr, v: usize, r: u32) -> usize {
    let ball = k_hop_ball(g, v, r);
    let (sub, _) = g.induced_subgraph(&ball);
    // Unweighted MWIS via the exact solver with unit weights.
    crate::mwis::max_weight_independent_set(&sub, &vec![1.0; sub.n()]).len()
}

/// The empirical growth function: `f(r) = max_v α(N(v)^r)` for
/// `r = 0..=max_r`. `f(0) = 1` whenever the graph is non-empty.
///
/// A graph family is growth-bounded when these values stay bounded by a
/// polynomial in `r` as `n` grows; the ablation harness checks
/// `f(r) ≤ c·(r+1)²` on the paper's deployments.
pub fn growth_function(g: &Csr, max_r: u32) -> Vec<usize> {
    let mut out = Vec::with_capacity(max_r as usize + 1);
    for r in 0..=max_r {
        let mut worst = 0;
        for v in 0..g.n() {
            worst = worst.max(ball_independence_number(g, v, r));
        }
        out.push(worst);
    }
    out
}

/// Global clustering coefficient (3 × triangles / wedges) — a cheap
/// density fingerprint of interference graphs used in `mrrfid inspect`;
/// disk graphs cluster heavily (≈ 0.5+), random graphs do not.
pub fn clustering_coefficient(g: &Csr) -> f64 {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in 0..g.n() {
        let nb = g.neighbors(v);
        let d = nb.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
        for (i, &a) in nb.iter().enumerate() {
            for &b in &nb[i + 1..] {
                if g.has_edge(a as usize, b as usize) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        // every triangle is counted once per corner = 3 times
        triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_growth_is_linear() {
        // Path of 9 nodes: α(N(v)^r) grows like r+1 around the middle.
        let edges: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 1)).collect();
        let g = Csr::from_edges(9, &edges);
        let f = growth_function(&g, 4);
        assert_eq!(f[0], 1);
        assert_eq!(f[1], 2); // {v−1, v+1}
        assert_eq!(f[2], 3);
        assert!(f[4] <= 5);
        // monotone
        assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clique_growth_is_constant() {
        let g = Csr::from_predicate(8, |_, _| true);
        let f = growth_function(&g, 3);
        assert_eq!(f, vec![1, 1, 1, 1]);
    }

    #[test]
    fn star_ball_independence() {
        // Star with 6 leaves: α(N(center)^1) = 6 (all leaves).
        let edges: Vec<(usize, usize)> = (1..7).map(|l| (0, l)).collect();
        let g = Csr::from_edges(7, &edges);
        assert_eq!(ball_independence_number(&g, 0, 0), 1);
        assert_eq!(ball_independence_number(&g, 0, 1), 6);
        assert_eq!(ball_independence_number(&g, 1, 1), 1); // leaf + center: α = 1? {leaf} or {center} → 1… plus nothing else
    }

    #[test]
    fn empty_and_edgeless() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(growth_function(&g, 2), vec![0, 0, 0]);
        let g = Csr::from_edges(4, &[]);
        assert_eq!(growth_function(&g, 1), vec![1, 1]);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn triangle_clustering_is_one() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }
}
