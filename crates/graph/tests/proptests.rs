//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rfid_graph::{
    connected_components, degeneracy_order, dsatur, greedy_coloring, hop_distances,
    is_proper_coloring, k_hop_ball, k_hop_ring, max_weight_independent_set, Csr,
};

/// Arbitrary graph as (n, edge list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Csr> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..3 * n).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
            Csr::from_edges(n, &edges)
        })
    })
}

/// Reference all-pairs shortest hop distances (BFS from each node).
#[allow(clippy::needless_range_loop)] // node ids index the distance matrix
fn floyd_warshall(g: &Csr) -> Vec<Vec<u64>> {
    let n = g.n();
    const INF: u64 = u64::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for v in 0..n {
        d[v][v] = 0;
        for &t in g.neighbors(v) {
            d[v][t as usize] = 1;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_roundtrips_edges(g in arb_graph(20)) {
        let rebuilt = Csr::from_edges(g.n(), &g.edges());
        prop_assert_eq!(&g, &rebuilt);
        // neighbour lists sorted + deduped
        for v in 0..g.n() {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "row {v} not strictly sorted");
        }
        // handshake lemma
        let deg_sum: usize = (0..g.n()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.m());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // node ids index the distance matrix
    fn bfs_matches_floyd_warshall(g in arb_graph(16)) {
        let fw = floyd_warshall(&g);
        for src in 0..g.n() {
            let d = hop_distances(&g, src);
            for v in 0..g.n() {
                let expect = fw[src][v];
                if expect >= u64::MAX / 4 {
                    prop_assert_eq!(d[v], u32::MAX);
                } else {
                    prop_assert_eq!(d[v] as u64, expect);
                }
            }
        }
    }

    #[test]
    fn balls_are_monotone_and_union_of_rings(g in arb_graph(16), src_raw in 0usize..16, r in 0u32..6) {
        let src = src_raw % g.n();
        let ball = k_hop_ball(&g, src, r);
        let bigger = k_hop_ball(&g, src, r + 1);
        prop_assert!(ball.iter().all(|v| bigger.contains(v)), "balls must be monotone");
        let mut rings: Vec<usize> = (0..=r).flat_map(|i| k_hop_ring(&g, src, i)).collect();
        rings.sort_unstable();
        prop_assert_eq!(ball, rings);
    }

    #[test]
    fn components_partition_and_respect_edges(g in arb_graph(24)) {
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(labels.len(), g.n());
        prop_assert!(labels.iter().all(|&c| c < count));
        for (a, b) in g.edges() {
            prop_assert_eq!(labels[a], labels[b]);
        }
        // unreachable ⇒ different components (check via BFS from node 0)
        if g.n() > 0 {
            let d = hop_distances(&g, 0);
            for v in 0..g.n() {
                prop_assert_eq!(d[v] != u32::MAX, labels[v] == labels[0]);
            }
        }
    }

    #[test]
    fn colorings_are_proper_and_bounded(g in arb_graph(20)) {
        let order: Vec<usize> = (0..g.n()).collect();
        let greedy = greedy_coloring(&g, &order);
        prop_assert!(is_proper_coloring(&g, &greedy));
        prop_assert!(rfid_graph::coloring::num_colors(&greedy) <= g.max_degree() + 1);
        let ds = dsatur(&g);
        prop_assert!(is_proper_coloring(&g, &ds));
        prop_assert!(rfid_graph::coloring::num_colors(&ds) <= g.max_degree() + 1);
    }

    #[test]
    fn degeneracy_order_property(g in arb_graph(20)) {
        let (order, d) = degeneracy_order(&g);
        prop_assert_eq!(order.len(), g.n());
        let mut pos = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        let mut max_later = 0;
        for v in 0..g.n() {
            let later = g.neighbors(v).iter().filter(|&&t| pos[t as usize] > pos[v]).count();
            max_later = max_later.max(later);
        }
        prop_assert_eq!(max_later, d, "degeneracy must be tight for smallest-last");
        // degeneracy bounded by max degree
        prop_assert!(d <= g.max_degree());
    }

    #[test]
    fn mwis_is_independent_and_dominant(g in arb_graph(13), wseed in 0u64..1000) {
        let n = g.n();
        let weights: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 37 + wseed * 13) % 11) as f64 + 0.25)
            .collect();
        let best = max_weight_independent_set(&g, &weights);
        prop_assert!(g.is_independent_set(&best));
        let best_w: f64 = best.iter().map(|&v| weights[v]).sum();
        // dominates every independent set (exhaustive: n ≤ 13)
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if g.is_independent_set(&set) {
                let w: f64 = set.iter().map(|&v| weights[v]).sum();
                prop_assert!(w <= best_w + 1e-9);
            }
        }
    }

    #[test]
    fn induced_subgraph_is_faithful(g in arb_graph(20), pick in proptest::collection::vec(0usize..20, 0..12)) {
        let nodes: Vec<usize> = pick.into_iter().filter(|&v| v < g.n()).collect();
        let (sub, map) = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.n(), map.len());
        for i in 0..sub.n() {
            for j in (i + 1)..sub.n() {
                prop_assert_eq!(sub.has_edge(i, j), g.has_edge(map[i], map[j]));
            }
        }
    }
}
