//! Criterion bench: extension kernels — multi-channel greedy, local-search
//! improvement, Q-learning training, growth-function diagnostics and the
//! full end-to-end covering schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_core::OneShotScheduler;
use rfid_core::{
    covering_schedule_with, improve_schedule, make_scheduler, AlgorithmKind, McsOptions,
    MultiChannelGreedy, OneShotInput, QLearningScheduler,
};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet};
use std::hint::black_box;

fn paper_deployment(seed: u64) -> rfid_model::Deployment {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 50,
        n_tags: 1200,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    }
    .generate(seed)
}

fn bench_multichannel(c: &mut Criterion) {
    let d = paper_deployment(1);
    let cov = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let mut group = c.benchmark_group("multichannel");
    for &channels in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(channels), &channels, |b, &k| {
            b.iter(|| {
                let input = OneShotInput::new(&d, &cov, &g, &unread);
                black_box(MultiChannelGreedy::new(k).schedule(black_box(&input)))
            })
        });
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    let d = paper_deployment(2);
    let cov = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let input = OneShotInput::new(&d, &cov, &g, &unread);
    let start = make_scheduler(AlgorithmKind::Colorwave, 0).schedule(&input);
    c.bench_function("local_search_from_colorwave", |b| {
        b.iter(|| {
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            black_box(improve_schedule(black_box(&input), &start))
        })
    });
}

fn bench_qlearning(c: &mut Criterion) {
    let d = paper_deployment(3);
    let cov = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let mut group = c.benchmark_group("qlearning");
    group.sample_size(10);
    group.bench_function("train_300_episodes", |b| {
        b.iter(|| {
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            black_box(QLearningScheduler::seeded(7).schedule(black_box(&input)))
        })
    });
    group.finish();
}

fn bench_growth_diagnostics(c: &mut Criterion) {
    let d = paper_deployment(4);
    let g = interference_graph(&d);
    c.bench_function("growth_function_r3", |b| {
        b.iter(|| black_box(rfid_graph::growth_function(black_box(&g), 3)))
    });
}

fn bench_full_mcs(c: &mut Criterion) {
    let d = paper_deployment(5);
    let cov = Coverage::build(&d);
    let g = interference_graph(&d);
    let mut group = c.benchmark_group("covering_schedule");
    group.sample_size(10);
    for kind in [AlgorithmKind::LocalGreedy, AlgorithmKind::HillClimbing] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut s = make_scheduler(kind, 0);
                black_box(
                    covering_schedule_with(
                        &d,
                        &cov,
                        &g,
                        s.as_mut(),
                        &McsOptions::new().max_slots(100_000),
                    )
                    .expect("strict covering schedule diverged")
                    .schedule,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_multichannel,
    bench_local_search,
    bench_qlearning,
    bench_growth_diagnostics,
    bench_full_mcs
);
criterion_main!(benches);
