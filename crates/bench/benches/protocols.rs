//! Criterion bench: link-layer tag-arbitration throughput — the substrate
//! the paper's "slot long enough to read ≥ 1 tag" assumption delegates to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_protocols::{AntiCollisionProtocol, FramedAloha, QProtocol, TreeWalking};
use std::hint::black_box;

fn population(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect()
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory");
    for &n in &[20usize, 100, 500] {
        let tags = population(n);
        group.bench_with_input(BenchmarkId::new("aloha_adaptive", n), &n, |b, _| {
            let p = FramedAloha::default();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                black_box(p.inventory(black_box(&tags), &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("tree_walking", n), &n, |b, _| {
            let p = TreeWalking::default();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                black_box(p.inventory(black_box(&tags), &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("gen2_q", n), &n, |b, _| {
            let p = QProtocol::default();
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                black_box(p.inventory(black_box(&tags), &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
