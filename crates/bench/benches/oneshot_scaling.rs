//! Criterion bench: one-shot scheduler runtime vs deployment size.
//!
//! Complements the figures (which measure *quality*) with the wall-clock
//! story: the PTAS pays for its k² shiftings and per-square DP, the
//! graph-only algorithms run in near-linear time, Colorwave is the
//! cheapest, the exact solver is exponential (benchmarked only at n = 25).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_core::{make_scheduler, AlgorithmKind, OneShotInput};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet};
use std::hint::black_box;

fn scenario(n_readers: usize) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        // Keep tag density constant: 24 tags per reader (paper: 1200/50).
        n_tags: n_readers * 24,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    }
}

fn bench_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("oneshot");
    group.sample_size(10);
    for &n in &[25usize, 50, 100, 200] {
        let d = scenario(n).generate(1);
        let cov = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        for kind in AlgorithmKind::paper_lineup() {
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |b, _| {
                b.iter(|| {
                    let input = OneShotInput::new(&d, &cov, &g, &unread);
                    let mut s = make_scheduler(kind, 7);
                    black_box(s.schedule(black_box(&input)))
                })
            });
        }
    }
    // Exact solver only at the smallest size — it is the exponential
    // reference, not a contender.
    let d = scenario(25).generate(1);
    let cov = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    group.bench_function(BenchmarkId::new("exact", 25usize), |b| {
        b.iter(|| {
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            let mut s = make_scheduler(AlgorithmKind::Exact, 7);
            black_box(s.schedule(black_box(&input)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oneshot);
criterion_main!(benches);
