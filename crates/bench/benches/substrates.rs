//! Criterion bench: the substrate kernels every scheduler call sits on —
//! spatial indices, interference-graph construction, coverage tables,
//! weight evaluation, hop balls and the exact MWFS enumeration primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_core::exact::exact_mwfs_restricted;
use rfid_geometry::sampling::uniform_points;
use rfid_geometry::{GridIndex, Point, QuadTree, Rect};
use rfid_graph::k_hop_ball;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet, WeightEvaluator};
use std::hint::black_box;

fn paper_deployment(seed: u64) -> rfid_model::Deployment {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers: 50,
        n_tags: 1200,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    }
    .generate(seed)
}

fn bench_spatial_indices(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let points = uniform_points(&mut rng, 1200, Rect::square(100.0));
    let mut group = c.benchmark_group("spatial_index");
    group.bench_function("grid_build_1200", |b| {
        b.iter(|| black_box(GridIndex::build(black_box(&points), 6.0)))
    });
    group.bench_function("quadtree_build_1200", |b| {
        b.iter(|| black_box(QuadTree::build(black_box(&points), Rect::square(100.0))))
    });
    let grid = GridIndex::build(&points, 6.0);
    let tree = QuadTree::build(&points, Rect::square(100.0));
    let center = Point::new(50.0, 50.0);
    group.bench_function("grid_query_r6", |b| {
        b.iter(|| black_box(grid.query_within(black_box(center), 6.0)))
    });
    group.bench_function("quadtree_query_r6", |b| {
        b.iter(|| black_box(tree.query_within(black_box(center), 6.0)))
    });
    group.finish();
}

fn bench_model_construction(c: &mut Criterion) {
    let d = paper_deployment(1);
    let mut group = c.benchmark_group("model");
    group.bench_function("interference_graph_50", |b| {
        b.iter(|| black_box(interference_graph(black_box(&d))))
    });
    group.bench_function("coverage_50x1200", |b| {
        b.iter(|| black_box(Coverage::build(black_box(&d))))
    });
    let cov = Coverage::build(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let set: Vec<usize> = (0..50).step_by(3).collect();
    group.bench_function("weight_eval_17set", |b| {
        let mut w = WeightEvaluator::new(&cov);
        b.iter(|| black_box(w.weight(black_box(&set), &unread)))
    });
    let g = interference_graph(&d);
    group.bench_function("k_hop_ball_r3", |b| {
        b.iter(|| black_box(k_hop_ball(black_box(&g), 0, 3)))
    });
    group.finish();
}

fn bench_exact_mwfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mwfs");
    group.sample_size(10);
    for &n in &[10usize, 15, 20] {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: n,
            n_tags: n * 24,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(2);
        let cov = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let all: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(exact_mwfs_restricted(
                    &cov,
                    &g,
                    &unread,
                    black_box(&all),
                    &[],
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spatial_indices,
    bench_model_construction,
    bench_exact_mwfs
);
criterion_main!(benches);
