//! # rfid-bench
//!
//! Benchmark harness: one binary per evaluation figure of the paper plus an
//! ablation binary, and Criterion micro-benchmarks for the kernels.
//!
//! | Binary | Paper artefact | Metric | Sweep |
//! |---|---|---|---|
//! | `fig6` | Figure 6 | covering-schedule size | λ_R, λ_r fixed |
//! | `fig7` | Figure 7 | covering-schedule size | λ_r, λ_R fixed |
//! | `fig8` | Figure 8 | one-shot well-covered tags | λ_r, λ_R fixed |
//! | `fig9` | Figure 9 | one-shot well-covered tags | λ_R, λ_r fixed |
//! | `ablation` | — | design-choice studies (k, ρ, augmentation, exact ratio, message cost) | various |
//!
//! Every binary prints a Markdown table (quoted in EXPERIMENTS.md) and
//! writes `results/<name>.csv` + `results/<name>.json`.

use rfid_core::AlgorithmKind;
use rfid_model::{Scenario, ScenarioKind};
use rfid_sim::{aggregate_series, run_sweep, SweepAxis, SweepConfig};
use std::path::PathBuf;

/// Paper §VI defaults.
pub const PAPER_READERS: usize = 50;
pub const PAPER_TAGS: usize = 1200;
pub const PAPER_REGION: f64 = 100.0;
/// The fixed λ values used when the other axis sweeps.
pub const FIXED_LAMBDA_R: f64 = 14.0;
pub const FIXED_LAMBDA_SMALL_R: f64 = 6.0;

/// Sweep grids.
pub fn lambda_interference_grid() -> Vec<f64> {
    vec![8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
}

pub fn lambda_interrogation_grid() -> Vec<f64> {
    vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
}

/// CLI options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Seeded trials per sweep point (paper-quality default 20; `--quick`
    /// drops to 3 with a smaller deployment for smoke testing).
    pub trials: usize,
    pub quick: bool,
    pub threads: Option<usize>,
    pub out_dir: PathBuf,
}

impl Cli {
    /// Parses `--trials N`, `--threads N`, `--quick`, `--out-dir PATH`.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            trials: 20,
            quick: false,
            threads: None,
            out_dir: PathBuf::from("results"),
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => {
                    i += 1;
                    cli.trials = args[i].parse().expect("--trials takes a number");
                }
                "--threads" => {
                    i += 1;
                    cli.threads = Some(args[i].parse().expect("--threads takes a number"));
                }
                "--out-dir" => {
                    i += 1;
                    cli.out_dir = PathBuf::from(&args[i]);
                }
                "--quick" => cli.quick = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if cli.quick {
            cli.trials = cli.trials.min(3);
        }
        cli
    }

    /// The evaluation scenario (smaller under `--quick`).
    pub fn scenario(&self) -> Scenario {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: if self.quick { 20 } else { PAPER_READERS },
            n_tags: if self.quick { 300 } else { PAPER_TAGS },
            region_side: PAPER_REGION,
            radius_model: rfid_model::RadiusModel::paper_default(),
        }
    }
}

/// Runs one figure end to end: sweep, aggregate, print, persist.
pub fn run_figure(
    cli: &Cli,
    name: &str,
    title: &str,
    axis: SweepAxis,
    values: Vec<f64>,
    fixed_lambda: f64,
    measure_mcs: bool,
) {
    let config = SweepConfig {
        scenario: cli.scenario(),
        axis,
        values,
        fixed_lambda,
        algorithms: AlgorithmKind::paper_lineup().to_vec(),
        trials: cli.trials,
        base_seed: 42,
        measure_mcs,
        measure_oneshot: !measure_mcs,
        threads: cli.threads,
    };
    let started = std::time::Instant::now();
    let trials = run_sweep(&config);
    let x_of = |t: &rfid_sim::TrialRecord| match axis {
        SweepAxis::Interference => t.lambda_interference,
        SweepAxis::Interrogation => t.lambda_interrogation,
    };
    let metric = |t: &rfid_sim::TrialRecord| {
        if measure_mcs {
            t.mcs_size.map(|v| v as f64)
        } else {
            t.oneshot_weight.map(|v| v as f64)
        }
    };
    let series: Vec<(&str, Vec<rfid_sim::SeriesPoint>)> = AlgorithmKind::paper_lineup()
        .iter()
        .map(|k| {
            (
                k.label(),
                aggregate_series(&trials, k.label(), x_of, metric),
            )
        })
        .collect();
    let x_label = match axis {
        SweepAxis::Interference => "λ_R",
        SweepAxis::Interrogation => "λ_r",
    };
    let table = rfid_sim::table::markdown_figure(title, x_label, &series);
    println!("{table}");
    println!(
        "({} trials/point, {} readers, {} tags, {:.1}s)",
        cli.trials,
        config.scenario.n_readers,
        config.scenario.n_tags,
        started.elapsed().as_secs_f64()
    );
    rfid_sim::table::write_csv(&cli.out_dir.join(format!("{name}.csv")), &series)
        .expect("write csv");
    rfid_sim::table::write_json(&cli.out_dir.join(format!("{name}.json")), &series)
        .expect("write json");
    // Also persist scheduler runtimes for the scalability discussion.
    let runtime_series: Vec<(&str, Vec<rfid_sim::SeriesPoint>)> = AlgorithmKind::paper_lineup()
        .iter()
        .map(|k| {
            (
                k.label(),
                aggregate_series(&trials, k.label(), x_of, |t| Some(t.runtime_ms)),
            )
        })
        .collect();
    rfid_sim::table::write_csv(
        &cli.out_dir.join(format!("{name}_runtime_ms.csv")),
        &runtime_series,
    )
    .expect("write runtime csv");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper_bands() {
        assert!(lambda_interference_grid()
            .iter()
            .all(|&l| (8.0..=20.0).contains(&l)));
        assert!(lambda_interrogation_grid()
            .iter()
            .all(|&l| (3.0..=9.0).contains(&l)));
        // r ≤ R plausibility: the interrogation grid never exceeds the
        // fixed interference mean.
        assert!(lambda_interrogation_grid()
            .iter()
            .all(|&l| l < FIXED_LAMBDA_R));
    }
}
