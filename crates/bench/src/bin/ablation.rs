//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. PTAS grid parameter `k` and the greedy augmentation step —
//!    one-shot weight and runtime.
//! 2. Algorithm 2's growth threshold ρ — weight vs hops explored.
//! 3. Empirical approximation ratios of every scheduler against the exact
//!    optimum on small instances (backing Theorems 2/4/6).
//! 4. Algorithm 3's communication cost as a function of `c`.
//! 5. Multi-channel extension: one-shot weight vs number of channels.
//! 6. Q-learning (HiQ) comparator vs the guaranteed algorithms.
//! 7. Algorithm 3 robustness under message loss.

use rfid_core::{
    improve_schedule, make_scheduler, AlgorithmKind, DistributedScheduler, ExactScheduler,
    LocalGreedy, MultiChannelGreedy, OneShotInput, OneShotScheduler, PtasScheduler,
    QLearningScheduler,
};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet};
use std::time::Instant;

fn scenario(n_readers: usize, n_tags: usize) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    }
}

/// Mean one-shot weight and runtime of `scheduler` over seeds.
fn eval(
    s: Scenario,
    seeds: std::ops::Range<u64>,
    mut scheduler: impl OneShotScheduler,
) -> (f64, f64) {
    let mut total_w = 0.0;
    let mut total_ms = 0.0;
    let n = seeds.clone().count() as f64;
    for seed in seeds {
        let d = s.generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let t0 = Instant::now();
        let set = scheduler.schedule(&input);
        total_ms += t0.elapsed().as_secs_f64() * 1e3;
        assert!(d.is_feasible(&set));
        total_w += input.weight_of(&set) as f64;
    }
    (total_w / n, total_ms / n)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 0..3u64 } else { 0..10u64 };
    let s = scenario(if quick { 20 } else { 50 }, if quick { 300 } else { 1200 });

    println!(
        "## Ablation 1 — PTAS k and augmentation (one-shot weight, mean over {} seeds)\n",
        seeds.clone().count()
    );
    println!("| variant | weight | runtime ms |");
    println!("|---|---|---|");
    for k in [2usize, 3, 4] {
        for augment in [true, false] {
            let (w, ms) = eval(
                s,
                seeds.clone(),
                PtasScheduler {
                    k,
                    lambda_cap: 4,
                    augment,
                    ..Default::default()
                },
            );
            println!("| k={k}, augment={augment} | {w:.1} | {ms:.1} |");
        }
    }

    println!("\n## Ablation 2 — Algorithm 2 growth threshold ρ\n");
    println!("| ρ | weight | runtime ms |");
    println!("|---|---|---|");
    for rho in [1.1, 1.25, 1.5, 2.0] {
        let (w, ms) = eval(s, seeds.clone(), LocalGreedy::new(rho, 4));
        println!("| {rho} | {w:.1} | {ms:.1} |");
    }

    println!("\n## Ablation 3 — empirical approximation ratios vs exact (n = 14 readers)\n");
    let small = scenario(14, 300);
    println!("| algorithm | mean w/OPT | worst w/OPT |");
    println!("|---|---|---|");
    let mut ratios: Vec<(&str, Vec<f64>)> = vec![
        ("alg1-ptas", vec![]),
        ("alg2-central", vec![]),
        ("alg3-distributed", vec![]),
        ("ghc", vec![]),
    ];
    for seed in seeds.clone() {
        let d = small.generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let opt = input.weight_of(&ExactScheduler::default().schedule(&input)) as f64;
        if opt == 0.0 {
            continue;
        }
        let mut record = |i: usize, set: Vec<usize>| {
            ratios[i].1.push(input.weight_of(&set) as f64 / opt);
        };
        record(0, PtasScheduler::default().schedule(&input));
        record(1, LocalGreedy::default().schedule(&input));
        record(2, DistributedScheduler::default().schedule(&input));
        record(3, rfid_core::HillClimbing::default().schedule(&input));
    }
    for (name, rs) in &ratios {
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let worst = rs.iter().copied().fold(f64::INFINITY, f64::min);
        println!("| {name} | {mean:.3} | {worst:.3} |");
    }

    println!("\n## Ablation 4 — Algorithm 3 communication cost vs c\n");
    println!("| c | weight | rounds | messages | bytes |");
    println!("|---|---|---|---|---|");
    for c in [1u32, 2, 3, 4] {
        let mut total = (0.0f64, 0u64, 0u64, 0u64);
        for seed in seeds.clone() {
            let d = s.generate(seed);
            let cov = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            let mut sched = DistributedScheduler::with_params(1.25, c);
            let set = sched.schedule(&input);
            let stats = sched.last_stats.unwrap();
            total.0 += input.weight_of(&set) as f64;
            total.1 += stats.rounds;
            total.2 += stats.messages;
            total.3 += stats.bytes;
        }
        let n = seeds.clone().count() as f64;
        println!(
            "| {c} | {:.1} | {:.1} | {:.0} | {:.0} |",
            total.0 / n,
            total.1 as f64 / n,
            total.2 as f64 / n,
            total.3 as f64 / n
        );
    }

    println!("\n## Ablation 5 — multi-channel extension (one-shot weight vs channels)\n");
    println!("| channels | weight | active readers |");
    println!("|---|---|---|");
    for channels in [1usize, 2, 3, 4, 6] {
        let mut total_w = 0.0;
        let mut total_active = 0.0;
        for seed in seeds.clone() {
            let d = s.generate(seed);
            let cov = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            let sched = MultiChannelGreedy::new(channels);
            let a = sched.schedule(&input);
            total_w += sched.weight_of(&input, &a) as f64;
            total_active += a.active_readers().len() as f64;
        }
        let n = seeds.clone().count() as f64;
        println!(
            "| {channels} | {:.1} | {:.1} |",
            total_w / n,
            total_active / n
        );
    }

    println!("\n## Ablation 6 — Q-learning (HiQ) comparator\n");
    println!("| algorithm | one-shot weight (mean) |");
    println!("|---|---|");
    let mut ql = 0.0;
    let mut alg2 = 0.0;
    for seed in seeds.clone() {
        let d = s.generate(seed);
        let cov = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &cov, &g, &unread);
        ql += input.weight_of(&QLearningScheduler::seeded(seed).schedule(&input)) as f64;
        alg2 += input.weight_of(&LocalGreedy::default().schedule(&input)) as f64;
    }
    let n = seeds.clone().count() as f64;
    println!("| qlearning-hiq | {:.1} |", ql / n);
    println!("| alg2-central | {:.1} |", alg2 / n);

    println!("\n## Ablation 7 — Algorithm 3 under message loss\n");
    println!("| loss p | weight | dropped/messages |");
    println!("|---|---|---|");
    for p in [0.0, 0.1, 0.25, 0.5] {
        let mut total_w = 0.0;
        let mut dropped = 0u64;
        let mut messages = 0u64;
        for seed in seeds.clone() {
            let d = s.generate(seed);
            let cov = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            let mut sched = DistributedScheduler::default().with_loss(p, seed);
            let set = sched.schedule(&input);
            assert!(d.is_feasible(&set));
            total_w += input.weight_of(&set) as f64;
            let stats = sched.last_stats.unwrap();
            dropped += stats.dropped;
            messages += stats.messages;
        }
        println!(
            "| {p} | {:.1} | {dropped}/{messages} |",
            total_w / seeds.clone().count() as f64
        );
    }

    println!(
        "\n## Ablation 8 — distance from local optimality (destroy-and-repair local search)\n"
    );
    println!("| algorithm | weight | after local search | gain % |");
    println!("|---|---|---|---|");
    for kind in AlgorithmKind::paper_lineup() {
        let mut base = 0.0;
        let mut improved = 0.0;
        for seed in seeds.clone() {
            let d = s.generate(seed);
            let cov = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &cov, &g, &unread);
            let set = make_scheduler(kind, seed).schedule(&input);
            let report = improve_schedule(&input, &set);
            base += report.initial_weight as f64;
            improved += report.final_weight as f64;
        }
        let gain = if base > 0.0 {
            100.0 * (improved - base) / base
        } else {
            0.0
        };
        let n = seeds.clone().count() as f64;
        println!(
            "| {} | {:.1} | {:.1} | {:.2}% |",
            kind.label(),
            base / n,
            improved / n,
            gain
        );
    }
}
