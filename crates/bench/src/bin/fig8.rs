//! Figure 8: one-shot well-covered tags vs λ_r (λ_R fixed at 14).

use rfid_bench::{lambda_interrogation_grid, run_figure, Cli, FIXED_LAMBDA_R};
use rfid_sim::SweepAxis;

fn main() {
    let cli = Cli::parse();
    run_figure(
        &cli,
        "fig8",
        "Figure 8 — one-shot well-covered tags vs λ_r, λ_R = 14",
        SweepAxis::Interrogation,
        lambda_interrogation_grid(),
        FIXED_LAMBDA_R,
        false,
    );
}
