//! Extension experiments beyond the paper's four figures:
//!
//! 1. **Dynamic arrivals** — steady-state throughput and service latency
//!    vs offered load (the static-tag assumption the paper flags in Zhou
//!    et al. removed).
//! 2. **Multi-channel MCS** — covering-schedule size vs channels.
//! 3. **Activation stability** — per-algorithm churn of the MCS schedules
//!    (the RASPberry \[9\] concern).

use rfid_core::{
    covering_schedule_with, make_scheduler, multichannel_covering_schedule, AlgorithmKind,
    McsOptions,
};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind};
use rfid_sim::metrics::activation_churn;
use rfid_sim::{run_dynamic, DynamicConfig};

fn scenario(n_readers: usize, n_tags: usize) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        (0..2).collect()
    } else {
        (0..8).collect()
    };
    let n_readers = if quick { 20 } else { 50 };

    println!("## Extension 1 — dynamic tag arrivals (steady state, 200 slots, 40 warm-up)\n");
    println!("| arrival rate | algorithm | throughput (tags/slot) | mean latency | p95 latency | backlog |");
    println!("|---|---|---|---|---|---|");
    let readers = scenario(n_readers, 0);
    for &rate in &[5.0, 15.0, 40.0] {
        for kind in [
            AlgorithmKind::LocalGreedy,
            AlgorithmKind::HillClimbing,
            AlgorithmKind::Colorwave,
        ] {
            let mut thr = 0.0;
            let mut lat = 0.0;
            let mut p95 = 0u64;
            let mut backlog = 0usize;
            for &seed in &seeds {
                let d = readers.generate(seed);
                let mut s = make_scheduler(kind, seed);
                let report = run_dynamic(
                    &d,
                    DynamicConfig {
                        arrival_rate: rate,
                        slots: if quick { 80 } else { 200 },
                        warmup: if quick { 20 } else { 40 },
                        seed,
                    },
                    s.as_mut(),
                );
                thr += report.throughput;
                lat += report.mean_latency;
                p95 = p95.max(report.p95_latency);
                backlog += report.backlog;
            }
            let n = seeds.len() as f64;
            println!(
                "| {rate} | {} | {:.1} | {:.2} | {p95} | {:.0} |",
                kind.label(),
                thr / n,
                lat / n,
                backlog as f64 / n
            );
        }
    }

    println!("\n## Extension 2 — multi-channel covering schedules\n");
    println!("| channels | slots (mean) |");
    println!("|---|---|");
    for channels in [1usize, 2, 3, 4] {
        let mut total = 0usize;
        for &seed in &seeds {
            let d = scenario(n_readers, if quick { 300 } else { 1200 }).generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            total += multichannel_covering_schedule(&d, &c, &g, channels, 100_000).size();
        }
        println!("| {channels} | {:.2} |", total as f64 / seeds.len() as f64);
    }

    println!("\n## Extension 3 — activation stability (mean churn of MCS slots)\n");
    println!("| algorithm | churn (0 = stable, 1 = full swap each slot) | slots |");
    println!("|---|---|---|");
    for kind in AlgorithmKind::paper_lineup() {
        let mut churn = 0.0;
        let mut slots = 0usize;
        for &seed in &seeds {
            let d = scenario(n_readers, if quick { 300 } else { 1200 }).generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let mut s = make_scheduler(kind, seed);
            let schedule = covering_schedule_with(
                &d,
                &c,
                &g,
                s.as_mut(),
                &McsOptions::new().max_slots(100_000),
            )
            .expect("strict covering schedule diverged")
            .schedule;
            let active: Vec<Vec<usize>> = schedule.slots.iter().map(|s| s.active.clone()).collect();
            churn += activation_churn(&active);
            slots += schedule.size();
        }
        let n = seeds.len() as f64;
        println!(
            "| {} | {:.3} | {:.1} |",
            kind.label(),
            churn / n,
            slots as f64 / n
        );
    }
}
