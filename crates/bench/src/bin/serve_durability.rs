//! Kill-restart durability benchmark for the `rfid-serve` daemon.
//!
//! Measures the cost and the payoff of the journal (DESIGN.md §10):
//!
//! 1. **Populate** — N distinct jobs solve cold against a durable
//!    service (every solve appends one journal record).
//! 2. **Kill** — the service handle is dropped without shutdown, the
//!    state `kill -9` leaves behind: no drain, no compaction, just the
//!    journal on disk.
//! 3. **Recover** — a fresh service over the same data directory
//!    replays the journal before accepting work; the replay wall time
//!    and the recovered-entry count are the recovery figures.
//! 4. **Warm** — the identical request sequence runs again; every
//!    request must hit the recovered cache, and the warm-over-cold
//!    speedup is the payoff figure.
//!
//! Usage:
//!   serve_durability [--quick] [--jobs N] [--workers N] [--out PATH]
//!   serve_durability --check PATH   # validate an existing report
//!
//! `--check` re-validates a committed `BENCH_serve_durability.json`
//! (full recovery, all-warm restart, speedup ≥ the floor) without
//! re-running.

use rfid_model::{RadiusModel, Scenario, ScenarioKind};
use rfid_serve::{JobSpec, ServeConfig, Service, Workload};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Acceptance floor for the warm-restart-over-cold speedup.
const SPEEDUP_FLOOR: f64 = 3.0;

#[derive(Debug, Serialize, Deserialize)]
struct Phase {
    wall_ms: f64,
    requests_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Recovery {
    /// Wall time of the restart itself (open + replay + warm insert).
    recovery_ms: f64,
    recovered_entries: u64,
    journal_appends: u64,
    journal_append_errors: u64,
    snapshots_written: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    jobs: usize,
    workers: usize,
    cold: Phase,
    recovery: Recovery,
    warm: Phase,
    /// Warm requests/s over cold requests/s on the identical sequence.
    warm_speedup: f64,
    /// Cache hits during the warm phase (must equal `jobs`).
    warm_hits: u64,
}

fn job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 48,
            n_tags: 576,
            region_side: 105.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        },
        seed,
    });
    spec.algorithm = "alg1".to_string();
    spec
}

fn config(workers: usize, data_dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap: 1024,
        cache_cap: 8192,
        cache_ttl: None,
        data_dir: Some(data_dir.to_path_buf()),
        // Never compact: the bench measures pure journal replay.
        snapshot_every: 0,
        peers: Vec::new(),
    }
}

fn run_phase(service: &Service, jobs: &[JobSpec]) -> (Phase, u64) {
    let start = Instant::now();
    let mut hits = 0u64;
    for spec in jobs {
        let reply = service.schedule(spec, None).expect("schedule");
        if reply.cached {
            hits += 1;
        }
    }
    let wall = start.elapsed();
    (
        Phase {
            wall_ms: wall.as_secs_f64() * 1e3,
            requests_per_sec: jobs.len() as f64 / wall.as_secs_f64(),
        },
        hits,
    )
}

fn check(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report: Report = serde_json::from_str(&body).map_err(|e| format!("parse {path}: {e}"))?;
    if report.bench != "serve_durability" {
        return Err(format!("unexpected bench name {:?}", report.bench));
    }
    if report.recovery.recovered_entries != report.jobs as u64 {
        return Err(format!(
            "recovery incomplete: {} of {} entries",
            report.recovery.recovered_entries, report.jobs
        ));
    }
    if report.recovery.journal_append_errors != 0 {
        return Err("journal append errors during populate".into());
    }
    if report.warm_hits != report.jobs as u64 {
        return Err(format!(
            "warm phase hit {} of {} requests — restart was not fully warm",
            report.warm_hits, report.jobs
        ));
    }
    if report.warm_speedup < SPEEDUP_FLOOR {
        return Err(format!(
            "warm speedup {:.2}× below the {SPEEDUP_FLOOR}× floor",
            report.warm_speedup
        ));
    }
    println!(
        "OK: {} jobs recovered in {:.1} ms, warm speedup {:.1}×",
        report.recovery.recovered_entries, report.recovery.recovery_ms, report.warm_speedup
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs_n: Option<usize> = None;
    let mut workers = 4usize;
    let mut out = "results/BENCH_serve_durability.json".to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => jobs_n = Some(iter.next().and_then(|v| v.parse().ok()).expect("--jobs N")),
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N")
            }
            "--out" => out = iter.next().expect("--out PATH").clone(),
            "--check" => {
                let path = iter.next().expect("--check PATH");
                if let Err(e) = check(path) {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let total = jobs_n.unwrap_or(if quick { 24 } else { 96 });
    let jobs: Vec<JobSpec> = (0..total as u64).map(job).collect();

    let data_dir =
        std::env::temp_dir().join(format!("rfid-serve-durability-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();
    std::fs::create_dir_all(&data_dir).expect("create data dir");

    eprintln!(
        "serve_durability: {total} jobs, {workers} workers, data dir {}",
        data_dir.display()
    );
    eprintln!("phase 1/3: populate (cold solves, journal on)");
    let service = Service::start(config(workers, &data_dir)).expect("start durable service");
    let (cold, cold_hits) = run_phase(&service, &jobs);
    assert_eq!(cold_hits, 0, "populate must be all misses");
    let populated = service.stats();
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} journal appends)",
        cold.requests_per_sec, cold.wall_ms, populated.journal_appends
    );
    // kill -9 semantics: drop the handle, no shutdown, no drain.
    drop(service);

    eprintln!("phase 2/3: restart + journal replay");
    let restart = Instant::now();
    let service = Service::start(config(workers, &data_dir)).expect("restart durable service");
    let recovery_ms = restart.elapsed().as_secs_f64() * 1e3;
    let recovered = service.stats();
    eprintln!(
        "  recovered {} entries in {recovery_ms:.1} ms",
        recovered.recovered_entries
    );

    eprintln!("phase 3/3: identical sequence against the warm restart");
    let (warm, warm_hits) = run_phase(&service, &jobs);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {warm_hits} hits)",
        warm.requests_per_sec, warm.wall_ms
    );
    service.shutdown(true);
    std::fs::remove_dir_all(&data_dir).ok();

    let report = Report {
        bench: "serve_durability".to_string(),
        schema_version: 1,
        jobs: total,
        workers,
        warm_speedup: warm.requests_per_sec / cold.requests_per_sec,
        cold,
        recovery: Recovery {
            recovery_ms,
            recovered_entries: recovered.recovered_entries,
            journal_appends: populated.journal_appends,
            journal_append_errors: populated.journal_append_errors,
            snapshots_written: populated.snapshots_written,
        },
        warm,
        warm_hits,
    };
    println!(
        "recovery: {} entries in {:.1} ms; warm speedup {:.1}×",
        report.recovery.recovered_entries, report.recovery.recovery_ms, report.warm_speedup
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    eprintln!("wrote {out}");
    if report.warm_speedup < SPEEDUP_FLOOR && !quick {
        eprintln!(
            "WARNING: warm speedup {:.2}× below the {SPEEDUP_FLOOR}× acceptance floor",
            report.warm_speedup
        );
        std::process::exit(1);
    }
}
