//! Incremental repair vs cold re-solve — the delta subsystem's perf claim.
//!
//! A serve node that already holds a solved base scenario can answer a
//! delta request two ways: patch the previous run with
//! `rfid_delta::repair_schedule` (coverage rows carried over, base slots
//! replayed, greedy suffix over the dirty tail) or rebuild everything
//! and solve cold. This bench measures both paths on the paper-density
//! scenario across dirty fractions and emits `results/BENCH_delta.json`.
//!
//! The op streams are pure tag churn (AddTag/RemoveTag, 50/50, seeded)
//! so the requested dirty fraction maps one-to-one onto the engine's
//! dirty-tag count; reader moves dirty whole interrogation disks at
//! once and would make the x-axis lumpy.
//!
//! Usage:
//!   delta_repair [--quick] [--sizes 833] [--fractions 0.001,0.01]
//!                [--trials N] [--out PATH]
//!   delta_repair --check PATH                  # validate a report
//!   delta_repair --check PATH --min-speedup X --max-dirty F
//!       # additionally require repair ≥ X× faster than cold on every
//!       # leg with dirty_fraction ≤ F — the CI floor for the committed
//!       # report (ISSUE 9: ≥ 5× at n ≈ 20k tags, ≤ 1% dirty).
//!
//! `--quick` restricts to n_readers = 100 (the CI smoke configuration).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rfid_core::{covering_schedule, McsOptions};
use rfid_delta::{apply_ops, repair_schedule, RepairOptions, ScenarioDelta};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Paper density, matching `mcs_scaling`: 50 readers per 100×100 region,
/// 24 tags per reader. 833 readers ≈ 20k tags — the acceptance size.
const BASE_READERS: f64 = 50.0;
const BASE_REGION: f64 = 100.0;
const TAGS_PER_READER: usize = 24;

/// One (size, dirty fraction) measurement.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    n_readers: usize,
    n_tags: usize,
    /// Requested fraction of the tag population churned by the ops.
    dirty_fraction: f64,
    /// Ops in the delta (adds + removes).
    ops: usize,
    /// Dirty tags as counted by the repair engine's invalidation pass.
    dirty_tags: usize,
    trials: usize,
    /// Best-of-trials wall time of `apply_ops` + `repair_schedule`
    /// (includes the patched coverage/graph builds the repair path
    /// performs). Minimum, not mean: the workload is deterministic, so
    /// the fastest trial is the least noise-contaminated one.
    repair_ms: f64,
    /// Best-of-trials wall time of the cold path: `apply_ops` (a cold
    /// answer to a delta request must materialise the patched
    /// deployment too) + full `Coverage::build` + `interference_graph`
    /// + `covering_schedule`.
    cold_ms: f64,
    /// `cold_ms / repair_ms`.
    speedup: f64,
    /// Base slots the replay kept / slots the greedy suffix appended.
    kept_slots: usize,
    appended_slots: usize,
    /// Whether a guard tripped and the repair degenerated to cold.
    cold_fallback: bool,
    repair_slots: usize,
    cold_slots: usize,
    /// Process peak RSS (`VmHWM`, kB) when this entry finished.
    peak_rss_kb: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    tags_per_reader: usize,
    entries: Vec<Entry>,
}

fn scenario(n_readers: usize) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags: n_readers * TAGS_PER_READER,
        region_side: BASE_REGION * (n_readers as f64 / BASE_READERS).sqrt(),
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        },
    }
}

/// Seeded tag churn totalling `ceil(fraction × m)` ops, half arrivals
/// half departures (arrival-biased on odd counts).
fn churn_ops(d: &rfid_model::Deployment, fraction: f64, seed: u64) -> Vec<ScenarioDelta> {
    let region = d.region();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = ((fraction * d.n_tags() as f64).ceil() as usize).max(1);
    let mut m = d.n_tags() as u32;
    let mut ops = Vec::with_capacity(k);
    for i in 0..k {
        if i % 2 == 0 || m == 0 {
            m += 1;
            ops.push(ScenarioDelta::AddTag {
                x: region.min_x + rng.random::<f64>() * region.width(),
                y: region.min_y + rng.random::<f64>() * region.height(),
            });
        } else {
            m -= 1;
            ops.push(ScenarioDelta::RemoveTag {
                tag: rng.random_range(0..m + 1),
            });
        }
    }
    ops
}

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

fn measure(n_readers: usize, fraction: f64, trials: usize) -> Entry {
    // The base solve is amortised across every delta a real node serves;
    // it is set up once, outside both timed paths.
    let base = scenario(n_readers).generate(42);
    let base_coverage = Coverage::build(&base);
    let base_graph = interference_graph(&base);
    let base_run = covering_schedule(&base, &base_coverage, &base_graph, &McsOptions::new())
        .expect("base scenario solves");

    let mut repair_ms = f64::INFINITY;
    let mut cold_ms = f64::INFINITY;
    let mut last = None;
    for trial in 0..trials {
        let ops = churn_ops(&base, fraction, 0xde17a + trial as u64);

        // Both paths answer the same delta request, so both pay for
        // materialising the patched deployment.
        let start = Instant::now();
        let patch = apply_ops(&base, &ops).expect("churn ops are in range");
        let apply = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let report = repair_schedule(
            &base,
            &base_coverage,
            &base_graph,
            &base_run,
            &patch,
            &RepairOptions::default(),
        )
        .expect("repair completes");
        repair_ms = repair_ms.min(apply + start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let coverage = Coverage::build(&patch.deployment);
        let graph = interference_graph(&patch.deployment);
        let cold = covering_schedule(&patch.deployment, &coverage, &graph, &McsOptions::new())
            .expect("patched scenario solves");
        cold_ms = cold_ms.min(apply + start.elapsed().as_secs_f64() * 1e3);

        assert_eq!(
            report.run.schedule.tags_served(),
            cold.schedule.tags_served(),
            "repair and cold must serve the same tag set"
        );
        last = Some((ops.len(), report, cold));
    }
    let (ops, report, cold) = last.expect("at least one trial");
    Entry {
        n_readers,
        n_tags: base.n_tags(),
        dirty_fraction: fraction,
        ops,
        dirty_tags: report.dirty_tags,
        trials,
        repair_ms,
        cold_ms,
        speedup: cold_ms / repair_ms,
        kept_slots: report.kept_slots,
        appended_slots: report.appended_slots,
        cold_fallback: report.cold_fallback,
        repair_slots: report.run.schedule.size(),
        cold_slots: cold.schedule.size(),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Validates a BENCH_delta.json; with `min_speedup`, every entry at
/// `dirty_fraction ≤ max_dirty` must clear the floor.
fn check(path: &PathBuf, min_speedup: Option<f64>, max_dirty: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let report: Report =
        serde_json::from_str(&text).map_err(|e| format!("malformed {path:?}: {e}"))?;
    if report.bench != "delta_repair" {
        return Err(format!("wrong bench name {:?}", report.bench));
    }
    if report.schema_version != 1 {
        return Err(format!("unknown schema_version {}", report.schema_version));
    }
    if report.entries.is_empty() {
        return Err("no entries".into());
    }
    let positive = |x: f64| x.is_finite() && x > 0.0;
    for e in &report.entries {
        if !positive(e.repair_ms) || !positive(e.cold_ms) || !positive(e.speedup) {
            return Err(format!(
                "degenerate timings for n={} f={}: {e:?}",
                e.n_readers, e.dirty_fraction
            ));
        }
        if e.ops == 0 || e.dirty_tags == 0 || e.repair_slots == 0 || e.cold_slots == 0 {
            return Err(format!(
                "empty measurement for n={} f={}: {e:?}",
                e.n_readers, e.dirty_fraction
            ));
        }
        if e.cold_fallback {
            return Err(format!(
                "n={} f={}: repair fell back to cold — the fractions under \
                 test must exercise the incremental path",
                e.n_readers, e.dirty_fraction
            ));
        }
    }
    if let Some(floor) = min_speedup {
        let mut gated = 0usize;
        for e in &report.entries {
            if e.dirty_fraction > max_dirty {
                continue;
            }
            gated += 1;
            if e.speedup < floor {
                return Err(format!(
                    "n={} f={}: repair {:.2} ms vs cold {:.2} ms is only \
                     {:.2}× (floor {floor}×)",
                    e.n_readers, e.dirty_fraction, e.repair_ms, e.cold_ms, e.speedup
                ));
            }
        }
        if gated == 0 {
            return Err(format!(
                "no entry of {path:?} has dirty_fraction ≤ {max_dirty}"
            ));
        }
        println!("{gated} legs at or above the {floor}× repair-speedup floor");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes = vec![833usize]; // ≈ 20k tags at paper density
    let mut fractions = vec![0.001f64, 0.01, 0.05, 0.10];
    let mut trials = 8usize;
    let mut out = PathBuf::from("results/BENCH_delta.json");
    let mut check_path: Option<PathBuf> = None;
    let mut min_speedup: Option<f64> = None;
    let mut max_dirty = 0.01f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                sizes = vec![100];
                fractions = vec![0.01, 0.10];
                trials = 1;
            }
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes comma-separated integers"))
                    .collect();
            }
            "--fractions" => {
                i += 1;
                fractions = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--fractions takes comma-separated floats"))
                    .collect();
            }
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials takes a number");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--check" => {
                i += 1;
                check_path = Some(PathBuf::from(&args[i]));
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(args[i].parse().expect("--min-speedup takes a number"));
            }
            "--max-dirty" => {
                i += 1;
                max_dirty = args[i].parse().expect("--max-dirty takes a number");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if let Some(path) = check_path {
        match check(&path, min_speedup, max_dirty) {
            Ok(()) => {
                println!("{path:?} ok");
                return;
            }
            Err(e) => {
                eprintln!("BENCH check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    assert!(trials > 0, "need at least one trial");

    let mut entries = Vec::new();
    println!("| n_tags | dirty | ops | repair ms | cold ms | speedup | kept/appended |");
    println!("|---|---|---|---|---|---|---|");
    for &n in &sizes {
        for &f in &fractions {
            let e = measure(n, f, trials);
            println!(
                "| {} | {:.3} | {} | {:.2} | {:.2} | {:.1}× | {}/{} |",
                e.n_tags,
                e.dirty_fraction,
                e.ops,
                e.repair_ms,
                e.cold_ms,
                e.speedup,
                e.kept_slots,
                e.appended_slots
            );
            entries.push(e);
        }
    }
    let report = Report {
        bench: "delta_repair".into(),
        schema_version: 1,
        tags_per_reader: TAGS_PER_READER,
        entries,
    };
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_delta.json");
    check(&out, None, max_dirty).expect("self-check of the just-written report");
    println!("wrote {out:?}");
}
