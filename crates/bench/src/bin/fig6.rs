//! Figure 6: covering-schedule size vs λ_R (λ_r fixed at 6).
//!
//! Paper expectation: Algorithm 1 needs the fewest slots, then Algorithm 2,
//! then Algorithm 3; all three beat Colorwave and GHC across the range.

use rfid_bench::{lambda_interference_grid, run_figure, Cli, FIXED_LAMBDA_SMALL_R};
use rfid_sim::SweepAxis;

fn main() {
    let cli = Cli::parse();
    run_figure(
        &cli,
        "fig6",
        "Figure 6 — covering-schedule size (slots) vs λ_R, λ_r = 6",
        SweepAxis::Interference,
        lambda_interference_grid(),
        FIXED_LAMBDA_SMALL_R,
        true,
    );
}
