//! Closed-loop and pipelined TCP throughput benchmark for the
//! `rfid-serve` daemon, plus a multi-process consistent-hash router leg.
//!
//! Four legs, all over loopback TCP:
//!
//! 1. **Uncached closed-loop** — `--clients` threads, one request in
//!    flight each, cache disabled: every request solves.
//! 2. **Cached closed-loop** — identical sequence, cache enabled. The
//!    workload is production-ish skewed: 90% of requests cycle a small
//!    hot pool, 10% long tail with modest reuse (`TAIL_REUSE`).
//! 3. **Cached pipelined** — one connection, cache prewarmed, requests
//!    written in batches of [`PIPELINE_BATCH`] before any response is
//!    read. This is the reactor's headline number: no per-request RTT
//!    stall, throughput bounded by codec + cache lookup alone.
//! 4. **Router scaling** — shard daemons spawned as *separate
//!    processes* (`--shard-daemon`, a hidden self-exec flag), fronted
//!    by an in-process consistent-hash [`Router`]. The same cold
//!    workload runs through 1 shard and then 2; the report records the
//!    throughput ratio and the fleet-wide counter invariant
//!    (`hits + misses + coalesced == requests`) aggregated at the
//!    router.
//!
//! Usage:
//!   serve_throughput [--quick] [--requests N] [--clients N] [--workers N]
//!                    [--out PATH]
//!   serve_throughput --check PATH   # validate an existing report
//!
//! `--check` re-validates a committed `BENCH_serve.json` (schema fields,
//! counter invariants, the pipelined floor, router scaling) without
//! re-running. The scaling floor is host-aware: near-linear (≥
//! [`SCALING_FLOOR_MULTICORE`]) is demanded only of reports generated
//! on ≥ 4 CPUs — on a 1-core box two CPU-bound shard processes time-slice
//! one core and the honest ratio is ~1.0, so the floor there is "adding
//! a shard must not collapse throughput" (≥ [`SCALING_FLOOR_1CORE`]).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rfid_model::{RadiusModel, Scenario, ScenarioKind};
use rfid_serve::{JobSpec, Router, RouterConfig, ServeConfig, Server, TcpClient, Workload};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hot-pool size: 90% of requests cycle over this many distinct jobs.
const POPULAR_POOL: usize = 8;
/// Each long-tail job is requested this many times in total.
const TAIL_REUSE: usize = 4;
/// Acceptance floor for the cached-vs-uncached speedup. The MCS hot-path
/// rework cut cold-solve latency by an order of magnitude, which
/// compresses this ratio (the cache saves ~3 ms/solve now, not ~30) —
/// the floor guards against the cache *stopping to matter*, not against
/// the solver getting faster.
const SPEEDUP_FLOOR: f64 = 3.0;
/// Acceptance floor for the cached pipelined leg (req/s).
const PIPELINED_FLOOR: f64 = 10_000.0;
/// Requests written per pipelined batch (under the reactor's
/// per-connection backpressure cap).
const PIPELINE_BATCH: usize = 256;
/// Router scaling floor on hosts with ≥ 4 CPUs: near-linear (2 shards
/// of [`SHARD_WORKERS`] workers each vs 1).
const SCALING_FLOOR_MULTICORE: f64 = 1.3;
/// Router scaling floor on smaller hosts: no collapse.
const SCALING_FLOOR_1CORE: f64 = 0.6;
/// Workers per shard *process* in the router legs — deliberately below
/// a multicore host's CPU count so each shard is capacity-limited and
/// adding a second shard has headroom to scale into.
const SHARD_WORKERS: usize = 2;

#[derive(Debug, Serialize, Deserialize)]
struct Leg {
    cache_cap: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Client-observed per-request latency percentiles (ms).
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    /// Server-side counters after the leg.
    cache_hits: u64,
    cache_misses: u64,
    /// Requests coalesced onto an identical in-flight solve.
    coalesced: u64,
    solved: u64,
    errors: u64,
}

/// The single-connection pipelined leg (cache prewarmed outside the
/// timed window).
#[derive(Debug, Serialize, Deserialize)]
struct PipelinedLeg {
    requests: usize,
    batch: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Admitted requests per the server (timed window + prewarm).
    admitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    errors: u64,
}

/// One router leg: `shards` daemon *processes* behind one router.
#[derive(Debug, Serialize, Deserialize)]
struct RouterLeg {
    shards: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Fleet-wide counters aggregated by the router after the leg.
    fleet_requests: u64,
    fleet_hits: u64,
    fleet_misses: u64,
    fleet_coalesced: u64,
    fleet_solved: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct RouterScaling {
    /// Distinct cold jobs pushed through each leg.
    jobs: usize,
    one_shard: RouterLeg,
    two_shards: RouterLeg,
    /// `two_shards.requests_per_sec / one_shard.requests_per_sec`.
    scaling: f64,
}

/// Nearest-rank percentile over an already-sorted sample (ms).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    /// CPUs available where the report was generated — the router
    /// scaling floor is judged against this.
    host_cpus: usize,
    requests: usize,
    clients: usize,
    workers: usize,
    distinct_jobs: usize,
    nominal_popular_pct: f64,
    measured_hit_rate: f64,
    cached: Leg,
    uncached: Leg,
    speedup: f64,
    pipelined: PipelinedLeg,
    router: RouterScaling,
}

fn job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 48,
            n_tags: 576,
            region_side: 105.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        },
        seed,
    });
    spec.algorithm = "alg1".to_string();
    spec
}

/// The pipelined leg's hot job: a compact deployment so the measurement
/// is transport-and-cache-bound rather than payload-size-bound (the
/// closed-loop legs keep the full-size [`job`]). Interactive planners
/// polling a dashboard look like this: small scenario, high repeat rate.
fn compact_job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 12,
            n_tags: 72,
            region_side: 52.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        },
        seed,
    });
    spec.algorithm = "alg1".to_string();
    spec
}

/// The 90/10 request sequence: popular seeds are `0..POPULAR_POOL`, the
/// long tail starts at 1000 with every tail seed repeated `TAIL_REUSE`
/// times; the merged sequence is shuffled deterministically.
fn request_sequence(total: usize) -> (Vec<JobSpec>, usize) {
    let popular = total * 9 / 10;
    let tail = total - popular;
    let tail_distinct = tail.div_ceil(TAIL_REUSE);
    let mut seeds = Vec::with_capacity(total);
    for i in 0..popular {
        seeds.push((i % POPULAR_POOL) as u64);
    }
    for i in 0..tail {
        seeds.push(1000 + (i / TAIL_REUSE) as u64);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for i in (1..seeds.len()).rev() {
        let j = rng.random_range(0..=i);
        seeds.swap(i, j);
    }
    let distinct = POPULAR_POOL.min(popular.max(1)) + tail_distinct;
    (seeds.into_iter().map(job).collect(), distinct)
}

/// Closed-loop hammer: `clients` threads pull from the shared sequence
/// and send one request at a time to `addr`. Returns wall time and the
/// per-request latencies.
fn hammer(addr: &str, sequence: &Arc<Vec<JobSpec>>, clients: usize) -> (Duration, Vec<f64>) {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let sequence = Arc::clone(sequence);
            let next = Arc::clone(&next);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(&addr).expect("connect");
                let mut latencies_ms = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = sequence.get(i) else {
                        break latencies_ms;
                    };
                    let sent = Instant::now();
                    client.schedule(spec, None).expect("schedule");
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                }
            })
        })
        .collect();
    let mut latencies_ms = Vec::with_capacity(sequence.len());
    for t in threads {
        latencies_ms.extend(t.join().expect("client thread"));
    }
    (start.elapsed(), latencies_ms)
}

/// One closed-loop leg against a fresh in-process daemon.
fn run_leg(sequence: &Arc<Vec<JobSpec>>, clients: usize, workers: usize, cache_cap: usize) -> Leg {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let (wall, mut latencies_ms) = hammer(&server.addr().to_string(), sequence, clients);
    let stats = server.service().stats();
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Leg {
        cache_cap,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: sequence.len() as f64 / wall.as_secs_f64(),
        latency_p50_ms: percentile(&latencies_ms, 50.0),
        latency_p95_ms: percentile(&latencies_ms, 95.0),
        latency_p99_ms: percentile(&latencies_ms, 99.0),
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        coalesced: stats.coalesced,
        solved: stats.solved,
        errors: stats.errors,
    }
}

/// The pipelined leg: one connection, hot pool prewarmed, then `total`
/// requests written in batches before any response is read.
fn run_pipelined_leg(total: usize, workers: usize) -> PipelinedLeg {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap: 1024,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = TcpClient::connect(&server.addr().to_string()).expect("connect");
    let pool: Vec<JobSpec> = (0..POPULAR_POOL).map(|s| compact_job(s as u64)).collect();
    for spec in &pool {
        client.schedule(spec, None).expect("prewarm");
    }
    let start = Instant::now();
    let mut done = 0usize;
    while done < total {
        let n = PIPELINE_BATCH.min(total - done);
        let batch: Vec<JobSpec> = (0..n)
            .map(|i| pool[(done + i) % pool.len()].clone())
            .collect();
        let replies = client
            .schedule_batch(&batch, None)
            .expect("pipelined batch");
        for reply in replies {
            reply.expect("pipelined reply");
        }
        done += n;
    }
    let wall = start.elapsed();
    let stats = server.service().stats();
    server.shutdown();
    PipelinedLeg {
        requests: total,
        batch: PIPELINE_BATCH,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: total as f64 / wall.as_secs_f64(),
        admitted: stats.requests,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        coalesced: stats.coalesced,
        errors: stats.errors,
    }
}

/// Spawns one shard daemon as a child *process* (self-exec with the
/// hidden `--shard-daemon` flag) and returns its handle plus the bound
/// address it announced on stdout.
fn spawn_shard(workers: usize) -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["--shard-daemon", "--workers", &workers.to_string()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn shard daemon");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read shard address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .expect("shard announced its address")
        .to_string();
    (child, addr)
}

/// The hidden child entry point: run one daemon, announce the bound
/// address, block until a shutdown frame.
fn shard_daemon_main(workers: usize) -> ! {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap: 1024,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind shard");
    println!("listening {}", server.addr());
    std::io::stdout().flush().expect("flush address");
    server.run_until_shutdown();
    std::process::exit(0);
}

/// One router leg: `n_shards` daemon processes behind a fresh router,
/// the shared cold sequence pushed through closed-loop clients.
fn run_router_leg(n_shards: usize, jobs: &Arc<Vec<JobSpec>>, clients: usize) -> RouterLeg {
    let mut children = Vec::with_capacity(n_shards);
    let mut addrs = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let (child, addr) = spawn_shard(SHARD_WORKERS);
        children.push(child);
        addrs.push(addr);
    }
    let router = Router::start(
        "127.0.0.1:0",
        RouterConfig {
            shards: addrs.clone(),
            ..RouterConfig::default()
        },
    )
    .expect("start router");
    let (wall, _latencies) = hammer(&router.addr().to_string(), jobs, clients);
    let mut stats_client = TcpClient::connect(&router.addr().to_string()).expect("stats connect");
    let (fleet, _metrics) = stats_client.stats().expect("aggregated stats");
    drop(stats_client);
    router.shutdown();
    for addr in &addrs {
        let mut c = TcpClient::connect(addr).expect("connect shard for shutdown");
        c.shutdown_server().expect("shard shutdown");
    }
    for mut child in children {
        child.wait().expect("shard exit");
    }
    RouterLeg {
        shards: n_shards,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: jobs.len() as f64 / wall.as_secs_f64(),
        fleet_requests: fleet.requests,
        fleet_hits: fleet.cache_hits,
        fleet_misses: fleet.cache_misses,
        fleet_coalesced: fleet.coalesced,
        fleet_solved: fleet.solved,
    }
}

fn check(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report: Report = serde_json::from_str(&body).map_err(|e| format!("parse {path}: {e}"))?;
    if report.bench != "serve_throughput" {
        return Err(format!("unexpected bench name {:?}", report.bench));
    }
    if report.schema_version < 3 {
        return Err(format!(
            "schema version {} predates the pipelined/router legs",
            report.schema_version
        ));
    }
    if report.cached.errors != 0 || report.uncached.errors != 0 || report.pipelined.errors != 0 {
        return Err("request errors recorded in a leg".into());
    }
    let total = report.cached.cache_hits + report.cached.cache_misses + report.cached.coalesced;
    if total != report.requests as u64 {
        return Err(format!(
            "cached leg hits+misses+coalesced ({total}) disagree with requests ({})",
            report.requests
        ));
    }
    for leg in [&report.cached, &report.uncached] {
        if !(leg.latency_p50_ms <= leg.latency_p95_ms && leg.latency_p95_ms <= leg.latency_p99_ms) {
            return Err(format!(
                "latency percentiles out of order (p50 {} / p95 {} / p99 {})",
                leg.latency_p50_ms, leg.latency_p95_ms, leg.latency_p99_ms
            ));
        }
        if leg.latency_p99_ms <= 0.0 {
            return Err("non-positive p99 latency".into());
        }
    }
    if !(0.0..=1.0).contains(&report.measured_hit_rate) {
        return Err(format!(
            "hit rate {} out of range",
            report.measured_hit_rate
        ));
    }
    if report.speedup < SPEEDUP_FLOOR {
        return Err(format!(
            "speedup {:.2}× below the {SPEEDUP_FLOOR}× floor",
            report.speedup
        ));
    }
    // Pipelined leg: the counter invariant must hold and the floor is
    // unconditional — this is the single-daemon acceptance number.
    let p = &report.pipelined;
    if p.cache_hits + p.cache_misses + p.coalesced != p.admitted {
        return Err(format!(
            "pipelined leg hits+misses+coalesced ({}) disagree with admitted ({})",
            p.cache_hits + p.cache_misses + p.coalesced,
            p.admitted
        ));
    }
    if p.requests_per_sec < PIPELINED_FLOOR {
        return Err(format!(
            "pipelined cached leg {:.0} req/s below the {PIPELINED_FLOOR:.0} req/s floor",
            p.requests_per_sec
        ));
    }
    // Router legs: the fleet-wide invariant must survive aggregation.
    for leg in [&report.router.one_shard, &report.router.two_shards] {
        if leg.fleet_hits + leg.fleet_misses + leg.fleet_coalesced != leg.fleet_requests {
            return Err(format!(
                "router leg ({} shards): fleet hits+misses+coalesced ({}) disagree with requests ({})",
                leg.shards,
                leg.fleet_hits + leg.fleet_misses + leg.fleet_coalesced,
                leg.fleet_requests
            ));
        }
        if leg.fleet_requests != report.router.jobs as u64 {
            return Err(format!(
                "router leg ({} shards) admitted {} of {} jobs",
                leg.shards, leg.fleet_requests, report.router.jobs
            ));
        }
    }
    let scaling_floor = if report.host_cpus >= 4 {
        SCALING_FLOOR_MULTICORE
    } else {
        SCALING_FLOOR_1CORE
    };
    if report.router.scaling < scaling_floor {
        return Err(format!(
            "router scaling {:.2}× below the {scaling_floor:.2}× floor for a {}-CPU host",
            report.router.scaling, report.host_cpus
        ));
    }
    println!(
        "OK: {} requests, hit rate {:.1}%, speedup {:.1}×, pipelined {:.0} req/s, router scaling {:.2}× ({} CPUs)",
        report.requests,
        report.measured_hit_rate * 100.0,
        report.speedup,
        report.pipelined.requests_per_sec,
        report.router.scaling,
        report.host_cpus
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut requests: Option<usize> = None;
    let mut clients = 8usize;
    let mut workers = 4usize;
    let mut out = "results/BENCH_serve.json".to_string();
    let mut shard_daemon = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--shard-daemon" => shard_daemon = true,
            "--requests" => {
                requests = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--requests N"),
                )
            }
            "--clients" => {
                clients = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N")
            }
            "--out" => out = iter.next().expect("--out PATH").clone(),
            "--check" => {
                let path = iter.next().expect("--check PATH");
                if let Err(e) = check(path) {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if shard_daemon {
        shard_daemon_main(workers);
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total = requests.unwrap_or(if quick { 120 } else { 400 });
    let (sequence, distinct) = request_sequence(total);
    let sequence = Arc::new(sequence);
    eprintln!(
        "serve_throughput: {total} requests ({distinct} distinct), {clients} clients, {workers} workers, {host_cpus} CPUs"
    );

    eprintln!("leg 1/4: cache disabled (every request solves)");
    let uncached = run_leg(&sequence, clients, workers, 0);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} solved, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        uncached.requests_per_sec,
        uncached.wall_ms,
        uncached.solved,
        uncached.latency_p50_ms,
        uncached.latency_p95_ms,
        uncached.latency_p99_ms
    );
    eprintln!("leg 2/4: cache enabled");
    let cached = run_leg(&sequence, clients, workers, 1024);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} solved, {} hits, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        cached.requests_per_sec,
        cached.wall_ms,
        cached.solved,
        cached.cache_hits,
        cached.latency_p50_ms,
        cached.latency_p95_ms,
        cached.latency_p99_ms
    );

    let pipelined_total = if quick { 5_000 } else { 30_000 };
    eprintln!("leg 3/4: cached pipelined ({pipelined_total} requests, one connection)");
    let pipelined = run_pipelined_leg(pipelined_total, workers);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} hits)",
        pipelined.requests_per_sec, pipelined.wall_ms, pipelined.cache_hits
    );

    let router_jobs = if quick { 24 } else { 64 };
    // All-distinct cold jobs: the scaling regime is solver-bound, the
    // one the router exists to spread across machines.
    let jobs: Vec<JobSpec> = (0..router_jobs).map(|i| job(5000 + i as u64)).collect();
    let jobs = Arc::new(jobs);
    eprintln!(
        "leg 4/4: router scaling ({router_jobs} cold jobs, {SHARD_WORKERS}-worker shard processes)"
    );
    let one_shard = run_router_leg(1, &jobs, clients);
    eprintln!(
        "  1 shard:  {:.0} req/s ({:.0} ms)",
        one_shard.requests_per_sec, one_shard.wall_ms
    );
    let two_shards = run_router_leg(2, &jobs, clients);
    eprintln!(
        "  2 shards: {:.0} req/s ({:.0} ms)",
        two_shards.requests_per_sec, two_shards.wall_ms
    );
    let router = RouterScaling {
        jobs: router_jobs,
        scaling: two_shards.requests_per_sec / one_shard.requests_per_sec,
        one_shard,
        two_shards,
    };

    // Coalesced followers are served from the shared in-flight solve —
    // they count toward the reuse rate alongside true cache hits.
    let measured_hit_rate = (cached.cache_hits + cached.coalesced) as f64
        / (cached.cache_hits + cached.cache_misses + cached.coalesced).max(1) as f64;
    let report = Report {
        bench: "serve_throughput".to_string(),
        schema_version: 3,
        host_cpus,
        requests: total,
        clients,
        workers,
        distinct_jobs: distinct,
        nominal_popular_pct: 90.0,
        measured_hit_rate,
        speedup: cached.requests_per_sec / uncached.requests_per_sec,
        cached,
        uncached,
        pipelined,
        router,
    };
    println!(
        "speedup: {:.1}× (hit rate {:.1}%), pipelined {:.0} req/s, router scaling {:.2}×",
        report.speedup,
        report.measured_hit_rate * 100.0,
        report.pipelined.requests_per_sec,
        report.router.scaling
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    eprintln!("wrote {out}");
    if report.speedup < SPEEDUP_FLOOR && !quick {
        eprintln!(
            "WARNING: speedup {:.2}× below the {SPEEDUP_FLOOR}× acceptance floor",
            report.speedup
        );
        std::process::exit(1);
    }
}
