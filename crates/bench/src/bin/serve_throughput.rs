//! Closed-loop TCP throughput benchmark for the `rfid-serve` daemon.
//!
//! Measures requests/second of the full stack (codec → cache → queue →
//! workers → JSON-lines over loopback TCP) under a skewed production-ish
//! workload, with the content-addressed cache enabled vs disabled:
//!
//! * **90% popular** — requests drawn round-robin from a small pool of
//!   hot jobs (same scenario, same seed → same content key).
//! * **10% long tail** — colder jobs, each still re-requested a few
//!   times (`TAIL_REUSE`), as repeated dashboard/planner queries would.
//!
//! The *nominal* repeat rate therefore understates cacheability; the
//! report records the **measured** hit rate from the server's own
//! counters next to the nominal split, and the speedup of the cached run
//! over the cache-disabled run on the identical request sequence.
//!
//! Usage:
//!   serve_throughput [--quick] [--requests N] [--clients N] [--workers N]
//!                    [--out PATH]
//!   serve_throughput --check PATH   # validate an existing report
//!
//! `--check` re-validates a committed `BENCH_serve.json` (schema fields,
//! sane counters, speedup ≥ the acceptance floor) without re-running.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rfid_model::{RadiusModel, Scenario, ScenarioKind};
use rfid_serve::{JobSpec, ServeConfig, Server, TcpClient, Workload};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hot-pool size: 90% of requests cycle over this many distinct jobs.
const POPULAR_POOL: usize = 8;
/// Each long-tail job is requested this many times in total.
const TAIL_REUSE: usize = 4;
/// Acceptance floor for the cached-vs-uncached speedup.
const SPEEDUP_FLOOR: f64 = 10.0;

#[derive(Debug, Serialize, Deserialize)]
struct Leg {
    cache_cap: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Client-observed per-request latency percentiles (ms).
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    /// Server-side counters after the leg.
    cache_hits: u64,
    cache_misses: u64,
    /// Requests coalesced onto an identical in-flight solve.
    coalesced: u64,
    solved: u64,
    errors: u64,
}

/// Nearest-rank percentile over an already-sorted sample (ms).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    requests: usize,
    clients: usize,
    workers: usize,
    distinct_jobs: usize,
    nominal_popular_pct: f64,
    measured_hit_rate: f64,
    cached: Leg,
    uncached: Leg,
    speedup: f64,
}

fn job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 48,
            n_tags: 576,
            region_side: 105.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        },
        seed,
    });
    spec.algorithm = "alg1".to_string();
    spec
}

/// The 90/10 request sequence: popular seeds are `0..POPULAR_POOL`, the
/// long tail starts at 1000 with every tail seed repeated `TAIL_REUSE`
/// times; the merged sequence is shuffled deterministically.
fn request_sequence(total: usize) -> (Vec<JobSpec>, usize) {
    let popular = total * 9 / 10;
    let tail = total - popular;
    let tail_distinct = tail.div_ceil(TAIL_REUSE);
    let mut seeds = Vec::with_capacity(total);
    for i in 0..popular {
        seeds.push((i % POPULAR_POOL) as u64);
    }
    for i in 0..tail {
        seeds.push(1000 + (i / TAIL_REUSE) as u64);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for i in (1..seeds.len()).rev() {
        let j = rng.random_range(0..=i);
        seeds.swap(i, j);
    }
    let distinct = POPULAR_POOL.min(popular.max(1)) + tail_distinct;
    (seeds.into_iter().map(job).collect(), distinct)
}

/// One closed-loop leg: `clients` threads hammer a fresh daemon until
/// the shared sequence is exhausted.
fn run_leg(sequence: &Arc<Vec<JobSpec>>, clients: usize, workers: usize, cache_cap: usize) -> Leg {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let sequence = Arc::clone(sequence);
            let next = Arc::clone(&next);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(&addr).expect("connect");
                let mut latencies_ms = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = sequence.get(i) else {
                        break latencies_ms;
                    };
                    let sent = Instant::now();
                    client.schedule(spec, None).expect("schedule");
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                }
            })
        })
        .collect();
    let mut latencies_ms = Vec::with_capacity(sequence.len());
    for t in threads {
        latencies_ms.extend(t.join().expect("client thread"));
    }
    let wall = start.elapsed();
    let stats = server.service().stats();
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let wall_ms = wall.as_secs_f64() * 1e3;
    Leg {
        cache_cap,
        wall_ms,
        requests_per_sec: sequence.len() as f64 / wall.as_secs_f64(),
        latency_p50_ms: percentile(&latencies_ms, 50.0),
        latency_p95_ms: percentile(&latencies_ms, 95.0),
        latency_p99_ms: percentile(&latencies_ms, 99.0),
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        coalesced: stats.coalesced,
        solved: stats.solved,
        errors: stats.errors,
    }
}

fn check(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report: Report = serde_json::from_str(&body).map_err(|e| format!("parse {path}: {e}"))?;
    if report.bench != "serve_throughput" {
        return Err(format!("unexpected bench name {:?}", report.bench));
    }
    if report.cached.errors != 0 || report.uncached.errors != 0 {
        return Err("request errors recorded in a leg".into());
    }
    let total = report.cached.cache_hits + report.cached.cache_misses + report.cached.coalesced;
    if total != report.requests as u64 {
        return Err(format!(
            "cached leg hits+misses+coalesced ({total}) disagree with requests ({})",
            report.requests
        ));
    }
    for leg in [&report.cached, &report.uncached] {
        if !(leg.latency_p50_ms <= leg.latency_p95_ms && leg.latency_p95_ms <= leg.latency_p99_ms) {
            return Err(format!(
                "latency percentiles out of order (p50 {} / p95 {} / p99 {})",
                leg.latency_p50_ms, leg.latency_p95_ms, leg.latency_p99_ms
            ));
        }
        if leg.latency_p99_ms <= 0.0 {
            return Err("non-positive p99 latency".into());
        }
    }
    if !(0.0..=1.0).contains(&report.measured_hit_rate) {
        return Err(format!(
            "hit rate {} out of range",
            report.measured_hit_rate
        ));
    }
    if report.speedup < SPEEDUP_FLOOR {
        return Err(format!(
            "speedup {:.2}× below the {SPEEDUP_FLOOR}× floor",
            report.speedup
        ));
    }
    println!(
        "OK: {} requests, measured hit rate {:.1}%, speedup {:.1}×",
        report.requests,
        report.measured_hit_rate * 100.0,
        report.speedup
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut requests: Option<usize> = None;
    let mut clients = 8usize;
    let mut workers = 4usize;
    let mut out = "results/BENCH_serve.json".to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--requests" => {
                requests = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--requests N"),
                )
            }
            "--clients" => {
                clients = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N")
            }
            "--out" => out = iter.next().expect("--out PATH").clone(),
            "--check" => {
                let path = iter.next().expect("--check PATH");
                if let Err(e) = check(path) {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let total = requests.unwrap_or(if quick { 120 } else { 400 });
    let (sequence, distinct) = request_sequence(total);
    let sequence = Arc::new(sequence);
    eprintln!(
        "serve_throughput: {total} requests ({distinct} distinct), {clients} clients, {workers} workers"
    );

    eprintln!("leg 1/2: cache disabled (every request solves)");
    let uncached = run_leg(&sequence, clients, workers, 0);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} solved, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        uncached.requests_per_sec,
        uncached.wall_ms,
        uncached.solved,
        uncached.latency_p50_ms,
        uncached.latency_p95_ms,
        uncached.latency_p99_ms
    );
    eprintln!("leg 2/2: cache enabled");
    let cached = run_leg(&sequence, clients, workers, 1024);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} solved, {} hits, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        cached.requests_per_sec,
        cached.wall_ms,
        cached.solved,
        cached.cache_hits,
        cached.latency_p50_ms,
        cached.latency_p95_ms,
        cached.latency_p99_ms
    );

    // Coalesced followers are served from the shared in-flight solve —
    // they count toward the reuse rate alongside true cache hits.
    let measured_hit_rate = (cached.cache_hits + cached.coalesced) as f64
        / (cached.cache_hits + cached.cache_misses + cached.coalesced).max(1) as f64;
    let report = Report {
        bench: "serve_throughput".to_string(),
        schema_version: 2,
        requests: total,
        clients,
        workers,
        distinct_jobs: distinct,
        nominal_popular_pct: 90.0,
        measured_hit_rate,
        speedup: cached.requests_per_sec / uncached.requests_per_sec,
        cached,
        uncached,
    };
    println!(
        "speedup: {:.1}× (measured hit rate {:.1}%)",
        report.speedup,
        report.measured_hit_rate * 100.0
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    eprintln!("wrote {out}");
    if report.speedup < SPEEDUP_FLOOR && !quick {
        eprintln!(
            "WARNING: speedup {:.2}× below the {SPEEDUP_FLOOR}× acceptance floor",
            report.speedup
        );
        std::process::exit(1);
    }
}
